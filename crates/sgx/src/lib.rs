//! An SGX-style enclave substrate.
//!
//! §II-B: SGX is "a more refined implementation of the late-launch
//! approach, where independent trusted components can run concurrently in
//! their own fully isolated enclaves". This backend models:
//!
//! * **Enclaves** backed by [`FrameOwner::Epc`] frames: the OS schedules
//!   them but cannot read or write their memory; the memory encryption
//!   engine shows a bus probe only ciphertext and detects its writes
//!   (integrity MAC) — hence the profile defends `PhysicalBus`.
//! * **Measurement**: an enclave's identity (MRENCLAVE analogue) is the
//!   digest of its initial image, recorded by hardware at launch.
//! * **EGETKEY / sealing**: keys derived inside the hardware from the
//!   fused root secret and the enclave measurement; the raw fuse is never
//!   readable by any software ([`lateral_hw::fuse::FuseAccess::SgxHardwareOnly`]).
//! * **Quoting enclave**: attestation evidence signed with a platform key
//!   derived from the same fuse (Intel's quoting enclave stand-in).
//! * **Host domains**: untrusted normal-world processes; the substrate
//!   provides them no trusted isolation — the paper's data-center story
//!   is that the *enclave* distrusts everything else.
//! * **No temporal isolation**: enclaves share the cache with everyone;
//!   experiment E6 shows the resulting covert channel, matching §II-C's
//!   "SGX suffers from … cache side-channel attacks".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use lateral_crypto::aead::Aead;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_hw::bus::AccessKind;
use lateral_hw::fuse::FuseAccess;
use lateral_hw::machine::Machine;
use lateral_hw::mem::{Frame, FrameOwner};
use lateral_hw::mmu::{AddressSpace, Rights};
use lateral_hw::{EnclaveId, Initiator, VirtAddr, World, PAGE_SIZE};
use lateral_substrate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};

/// Name of the fused SGX root secret.
pub const SGX_ROOT_FUSE: &str = "sgx-root";

struct SgxDomain {
    aspace: AddressSpace,
    frames: Vec<Frame>,
    /// `Some` for enclaves; `None` for untrusted host domains.
    enclave: Option<EnclaveId>,
}

/// The SGX-style substrate.
pub struct Sgx {
    machine: Machine,
    fabric: Fabric,
    kstate: BTreeMap<DomainId, SgxDomain>,
    next_enclave: u32,
    quoting_key: SigningKey,
    rng: Drbg,
    profile: SubstrateProfile,
}

impl std::fmt::Debug for Sgx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sgx({} domains on '{}')",
            self.fabric.table().len(),
            self.machine.name
        )
    }
}

impl Sgx {
    /// Initializes the SGX model on `machine`, burning the root fuse on
    /// fresh machines (the factory provisioning step).
    pub fn new(mut machine: Machine, seed: &str) -> Sgx {
        let mut rng = Drbg::from_seed(&[b"lateral.sgx.", seed.as_bytes()].concat());
        if !machine.fuses.is_locked() {
            let key = rng.gen_key();
            machine
                .fuses
                .burn(SGX_ROOT_FUSE, key, FuseAccess::SgxHardwareOnly)
                .expect("burning on an unlocked bank succeeds");
            machine.fuses.lock();
        }
        // The quoting enclave's key: derived inside the hardware from the
        // fused root; software never sees the fuse itself.
        let qk_seed = machine
            .fuses
            .derive(SGX_ROOT_FUSE, b"quoting-enclave")
            .expect("root fuse present");
        let quoting_key = SigningKey::from_seed(&qk_seed);
        Sgx {
            machine,
            fabric: Fabric::new(),
            kstate: BTreeMap::new(),
            next_enclave: 1,
            quoting_key,
            rng,
            profile: SubstrateProfile {
                name: "sgx".to_string(),
                defends: models(&[
                    AttackerModel::RemoteSoftware,
                    AttackerModel::CompromisedOs,
                    AttackerModel::MaliciousDevice,
                    AttackerModel::PhysicalBus,
                    AttackerModel::PhysicalBoot,
                ]),
                features: Features {
                    spatial_isolation: true,
                    // §II-C: starvation issues and cache side channels.
                    temporal_isolation: false,
                    memory_encryption: true,
                    trust_anchor: true,
                    attestation: true,
                    sealed_storage: true,
                    max_trusted_domains: None,
                    hosts_legacy_os: true,
                },
                // "The equivalent of likely many thousands of lines of
                // code" of microcode plus the architectural enclaves.
                tcb_loc: 100_000,
            },
        }
    }

    /// Access to the underlying machine (attack injection).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Immutable machine access.
    pub fn machine_ref(&self) -> &Machine {
        &self.machine
    }

    /// Spawns an *untrusted host* domain (normal memory, no enclave
    /// protection) — the legacy OS / process the enclave serves.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::OutOfResources`] on memory exhaustion.
    pub fn spawn_host(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Untrusted)
    }

    /// The enclave id of a domain, if it is an enclave.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn enclave_of(&self, domain: DomainId) -> Result<Option<EnclaveId>, SubstrateError> {
        Ok(self.kdomain(domain)?.enclave)
    }

    /// Physical frames backing a domain (for probe experiments).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn domain_frames(&self, domain: DomainId) -> Result<Vec<Frame>, SubstrateError> {
        Ok(self.kdomain(domain)?.frames.clone())
    }

    /// Performs one cache access attributed to `domain` — enclaves and
    /// host code share the CPU caches with no partitioning or flushing,
    /// which is precisely the §II-C side-channel surface experiment E6
    /// measures against the microkernel's time partitioning.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn cache_touch(
        &mut self,
        domain: DomainId,
        addr: u64,
    ) -> Result<lateral_hw::cache::CacheOutcome, SubstrateError> {
        self.fabric.table().get(domain)?;
        // Every domain has a distinct cache identity, but they all
        // contend in the one shared cache.
        let cd = lateral_hw::cache::CacheDomain(domain.0);
        Ok(self.machine.cache_access(cd, addr))
    }

    /// A compromised-OS read of arbitrary physical memory — what a
    /// malicious kernel can do on this substrate. Succeeds on normal
    /// frames, fails on EPC.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::AccessDenied`] when the bus blocks the access.
    pub fn os_probe_read(
        &mut self,
        addr: lateral_hw::PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        self.machine
            .bus_read(Initiator::cpu(World::Normal), addr, len)
            .map_err(|e| SubstrateError::AccessDenied(e.to_string()))
    }

    const MEM_BASE: u64 = 0x10_0000;

    fn kdomain(&self, id: DomainId) -> Result<&SgxDomain, SubstrateError> {
        self.kstate.get(&id).ok_or(SubstrateError::NoSuchDomain(id))
    }

    fn initiator_for(&self, id: DomainId) -> Result<Initiator, SubstrateError> {
        Ok(match self.kdomain(id)?.enclave {
            Some(e) => Initiator::enclave(e),
            None => Initiator::cpu(World::Normal),
        })
    }

    /// EGETKEY: per-measurement sealing key derived in hardware.
    fn seal_key(&self, measurement: &Digest) -> [u8; 32] {
        self.machine
            .fuses
            .derive(
                SGX_ROOT_FUSE,
                &[b"seal".as_slice(), measurement.as_bytes()].concat(),
            )
            .expect("root fuse present")
    }
}

impl BackendPolicy for Sgx {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, kind: DomainKind) -> Result<(), SubstrateError> {
        let enclave_id = match kind {
            DomainKind::Trusted => {
                let e = EnclaveId(self.next_enclave);
                self.next_enclave += 1;
                Some(e)
            }
            DomainKind::Untrusted => None,
        };
        let owner = match enclave_id {
            Some(e) => FrameOwner::Epc(e),
            None => FrameOwner::Normal,
        };
        let pages = self.fabric.table().get(id)?.spec.mem_pages.max(1);
        let frames = self
            .machine
            .mem
            .alloc_n(owner, pages)
            .map_err(|e| SubstrateError::OutOfResources(e.to_string()))?;
        let mut aspace = AddressSpace::new();
        for (i, frame) in frames.iter().enumerate() {
            aspace.map(
                VirtAddr(Self::MEM_BASE + (i * PAGE_SIZE) as u64),
                *frame,
                Rights::RW,
            );
        }
        self.kstate.insert(
            id,
            SgxDomain {
                aspace,
                frames,
                enclave: enclave_id,
            },
        );
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(k) = self.kstate.remove(&id) {
            for frame in k.frames {
                self.machine.mem.free(frame);
            }
        }
    }

    fn charge_spawn(&mut self, _id: DomainId) -> Result<(), SubstrateError> {
        // ECREATE/EINIT work: measuring the image costs time.
        self.machine
            .clock
            .advance(self.machine.costs.enclave_transition);
        Ok(())
    }

    fn crossing(&self, caller: DomainId, target: DomainId) -> Result<CrossingKind, SubstrateError> {
        // Crossing an enclave boundary (either direction) costs an
        // EENTER+EEXIT pair; host→host is an ordinary call.
        let caller_enclave = self.kdomain(caller)?.enclave.is_some();
        let target_enclave = self.kdomain(target)?.enclave.is_some();
        if caller_enclave || target_enclave {
            Ok(CrossingKind::EnclaveTransition)
        } else {
            Ok(CrossingKind::Local)
        }
    }

    fn crossing_cost(&self, kind: CrossingKind, bytes: usize) -> u64 {
        let base = match kind {
            CrossingKind::EnclaveTransition => 2 * self.machine.costs.enclave_transition,
            _ => self.machine.costs.function_call,
        };
        base + self.machine.costs.copy_cost(bytes)
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Touching an enclave on either side costs an EENTER/EEXIT
        // pair; host→host is an ordinary call.
        let c = &self.machine.costs;
        let mut m = fabric::CrossingCostModel::uniform(
            &self.profile.name,
            c.function_call,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
            fabric::InvokeKindRule::AnyTrusted {
                trusted: CrossingKind::EnclaveTransition,
                none: CrossingKind::Local,
            },
        );
        m.set(
            CrossingKind::EnclaveTransition,
            2 * c.enclave_transition,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
        );
        m
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.machine.clock.advance(cycles);
    }

    fn seal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        // Sealing is enclave-exclusive: host domains have no EGETKEY.
        if self.kdomain(domain)?.enclave.is_none() {
            return Err(SubstrateError::Unsupported(
                "sealing requires an enclave (EGETKEY)".into(),
            ));
        }
        Ok(Aead::new(&self.seal_key(measurement)).seal(0, b"sgx.seal", data))
    }

    fn unseal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        if self.kdomain(domain)?.enclave.is_none() {
            return Err(SubstrateError::Unsupported(
                "unsealing requires an enclave (EGETKEY)".into(),
            ));
        }
        Aead::new(&self.seal_key(measurement))
            .open(0, b"sgx.seal", sealed)
            .map_err(|_| {
                SubstrateError::CryptoFailure(
                    "unseal failed: wrong enclave identity or tampered blob".into(),
                )
            })
    }

    fn attest_evidence(
        &mut self,
        domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        if self.kdomain(domain)?.enclave.is_none() {
            return Err(SubstrateError::Unsupported(
                "only enclaves can be attested (EREPORT)".into(),
            ));
        }
        // The quoting enclave converts the local report into a signed
        // quote; one extra enclave round trip.
        self.machine
            .clock
            .advance(2 * self.machine.costs.enclave_transition);
        Ok(AttestationEvidence::sign(
            "sgx",
            &self.quoting_key,
            measurement,
            Digest::ZERO,
            report_data,
        ))
    }
}

impl Substrate for Sgx {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    /// Spawns a component inside a fresh enclave.
    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        Ok(self.quoting_key.verifying_key())
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        let initiator = self.initiator_for(domain)?;
        let spans = self
            .kdomain(domain)?
            .aspace
            .translate_range(
                VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                len,
                AccessKind::Read,
            )
            .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
        let mut out = Vec::with_capacity(len);
        for (pa, span_len) in spans {
            let bytes = self
                .machine
                .bus_read(initiator, pa, span_len)
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let initiator = self.initiator_for(domain)?;
        let spans = self
            .kdomain(domain)?
            .aspace
            .translate_range(
                VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                data.len(),
                AccessKind::Write,
            )
            .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
        let mut cursor = 0usize;
        for (pa, span_len) in spans {
            self.machine
                .bus_write(initiator, pa, &data[cursor..cursor + span_len])
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            cursor += span_len;
        }
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("domain-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.machine.clock.now()
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::machine::MachineBuilder;
    use lateral_hw::HwError;
    use lateral_substrate::attest::TrustPolicy;
    use lateral_substrate::conformance;
    use lateral_substrate::testkit::Echo;

    fn sgx() -> Sgx {
        let machine = MachineBuilder::new().name("sgx-test").frames(128).build();
        Sgx::new(machine, "test")
    }

    #[test]
    fn conformance_suite_passes() {
        let mut s = sgx();
        let report = conformance::run(&mut s);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
        assert_eq!(
            report.outcome("attestation"),
            Some(&conformance::Outcome::Pass)
        );
    }

    #[test]
    fn os_cannot_read_enclave_memory() {
        // The data-center property: "the cloud operator has no visibility
        // into the execution state."
        let mut s = sgx();
        let enclave = s
            .spawn(DomainSpec::named("customer-code"), Box::new(Echo))
            .unwrap();
        s.mem_write(enclave, 0, b"customer secret").unwrap();
        let frame = s.domain_frames(enclave).unwrap()[0];
        assert!(s.os_probe_read(frame.base(), 15).is_err());
        // But the OS reads host memory freely.
        let host = s
            .spawn_host(DomainSpec::named("host-proc"), Box::new(Echo))
            .unwrap();
        s.mem_write(host, 0, b"host data").unwrap();
        let host_frame = s.domain_frames(host).unwrap()[0];
        assert_eq!(s.os_probe_read(host_frame.base(), 9).unwrap(), b"host data");
    }

    #[test]
    fn bus_probe_sees_only_ciphertext_and_writes_are_detected() {
        let mut s = sgx();
        let enclave = s.spawn(DomainSpec::named("e"), Box::new(Echo)).unwrap();
        s.mem_write(enclave, 0, b"enclave secret").unwrap();
        let frame = s.domain_frames(enclave).unwrap()[0];
        let eid = s.enclave_of(enclave).unwrap().unwrap();
        let view = s
            .machine()
            .bus_read(Initiator::Probe, frame.base(), 14)
            .unwrap();
        assert_ne!(view, b"enclave secret");
        // A probe write corrupts; the enclave detects on next read.
        s.machine()
            .bus_write(Initiator::Probe, frame.base(), b"xx")
            .unwrap();
        let err = s
            .machine()
            .bus_read(Initiator::enclave(eid), frame.base(), 2)
            .unwrap_err();
        assert!(matches!(err, HwError::IntegrityViolation(_)));
    }

    #[test]
    fn enclaves_are_mutually_isolated() {
        let mut s = sgx();
        let e1 = s.spawn(DomainSpec::named("e1"), Box::new(Echo)).unwrap();
        let e2 = s.spawn(DomainSpec::named("e2"), Box::new(Echo)).unwrap();
        s.mem_write(e1, 0, b"e1 secret").unwrap();
        let f1 = s.domain_frames(e1).unwrap()[0];
        let id2 = s.enclave_of(e2).unwrap().unwrap();
        assert!(s
            .machine()
            .bus_read(Initiator::enclave(id2), f1.base(), 9)
            .is_err());
    }

    #[test]
    fn sealing_is_enclave_only_and_identity_bound() {
        let mut s = sgx();
        let e1 = s
            .spawn(DomainSpec::named("e1").with_image(b"img-1"), Box::new(Echo))
            .unwrap();
        let e2 = s
            .spawn(DomainSpec::named("e2").with_image(b"img-2"), Box::new(Echo))
            .unwrap();
        let host = s
            .spawn_host(DomainSpec::named("host"), Box::new(Echo))
            .unwrap();
        let sealed = s.seal(e1, b"persist me").unwrap();
        assert!(s.unseal(e2, &sealed).is_err());
        assert!(matches!(
            s.seal(host, b"x"),
            Err(SubstrateError::Unsupported(_))
        ));
        assert_eq!(s.unseal(e1, &sealed).unwrap(), b"persist me");
    }

    #[test]
    fn quote_verifies_and_host_cannot_attest() {
        let mut s = sgx();
        let enclave = s
            .spawn(
                DomainSpec::named("anonymizer").with_image(b"anonymizer v1"),
                Box::new(Echo),
            )
            .unwrap();
        let ev = s.attest(enclave, b"channel-binding").unwrap();
        let mut policy = TrustPolicy::new();
        policy.trust_platform(s.platform_verifying_key().unwrap());
        policy.expect_measurement(
            DomainSpec::named("anonymizer")
                .with_image(b"anonymizer v1")
                .measurement(),
        );
        assert!(policy.verify(&ev).is_ok());
        let host = s
            .spawn_host(DomainSpec::named("host"), Box::new(Echo))
            .unwrap();
        assert!(matches!(
            s.attest(host, b""),
            Err(SubstrateError::Unsupported(_))
        ));
    }

    #[test]
    fn enclave_transitions_cost_more_than_host_calls() {
        let mut s = sgx();
        let h1 = s
            .spawn_host(DomainSpec::named("h1"), Box::new(Echo))
            .unwrap();
        let h2 = s
            .spawn_host(DomainSpec::named("h2"), Box::new(Echo))
            .unwrap();
        let e = s.spawn(DomainSpec::named("e"), Box::new(Echo)).unwrap();
        let host_cap = s.grant_channel(h1, h2, Badge(0)).unwrap();
        let enclave_cap = s.grant_channel(h1, e, Badge(0)).unwrap();
        let t0 = s.now();
        s.invoke(h1, &host_cap, b"x").unwrap();
        let host_cost = s.now() - t0;
        let t1 = s.now();
        s.invoke(h1, &enclave_cap, b"x").unwrap();
        let enclave_cost = s.now() - t1;
        assert!(enclave_cost > host_cost, "{enclave_cost} vs {host_cost}");
    }

    #[test]
    fn sealed_data_survives_enclave_restart() {
        let mut s = sgx();
        let e1 = s
            .spawn(
                DomainSpec::named("svc").with_image(b"svc v1"),
                Box::new(Echo),
            )
            .unwrap();
        let sealed = s.seal(e1, b"state").unwrap();
        s.destroy(e1).unwrap();
        // Relaunch the same image → same measurement → unseals.
        let e2 = s
            .spawn(
                DomainSpec::named("svc").with_image(b"svc v1"),
                Box::new(Echo),
            )
            .unwrap();
        assert_eq!(s.unseal(e2, &sealed).unwrap(), b"state");
    }
}
