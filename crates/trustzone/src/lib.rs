//! ARM TrustZone as an isolation substrate.
//!
//! §II-B: TrustZone provides *two* execution contexts — a secure world
//! that "completely controls the software running in the normal world" —
//! with the hardware conveying an NS bit on every bus access. This
//! backend models:
//!
//! * **Two worlds, asymmetric**: trusted components spawn into the secure
//!   world (backed by [`FrameOwner::Secure`] frames the normal world
//!   cannot touch); exactly one legacy domain occupies the normal world,
//!   because "TrustZone itself does not support multiplexing" —
//!   [`TrustZone::spawn_normal`] enforces the limit.
//! * **Secondary isolation**: multiple secure-world components rely on
//!   the secure-world OS (this crate) to keep them apart — exactly the
//!   caveat the paper notes.
//! * **Secure monitor calls**: normal↔secure invocations cost an SMC
//!   world switch; secure-internal calls cost ordinary IPC.
//! * **Fused device key**: the per-device key of the smart-meter example,
//!   burned into [`lateral_hw::fuse::FuseBank`] with
//!   `SecureWorldOnly` access; attestation and sealing derive from it.
//! * **No memory encryption**: a physical bus probe reads secure-world
//!   DRAM in plaintext — the decisive difference from SGX/SEP in the E9
//!   attack matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use lateral_crypto::aead::Aead;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_hw::bus::AccessKind;
use lateral_hw::fuse::FuseAccess;
use lateral_hw::machine::Machine;
use lateral_hw::mem::{Frame, FrameOwner};
use lateral_hw::mmu::{AddressSpace, Rights};
use lateral_hw::{Initiator, VirtAddr, World, PAGE_SIZE};
use lateral_substrate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};

/// Name of the fused per-device key (smart-meter example, §III-C).
pub const DEVICE_KEY_FUSE: &str = "tz-device-key";

struct TzDomain {
    aspace: AddressSpace,
    frames: Vec<Frame>,
    world: World,
}

/// The TrustZone substrate: secure-world OS + secure monitor.
pub struct TrustZone {
    machine: Machine,
    fabric: Fabric,
    kstate: BTreeMap<DomainId, TzDomain>,
    normal_domain: Option<DomainId>,
    attest_key: SigningKey,
    seal_root: [u8; 32],
    platform_state: Digest,
    rng: Drbg,
    profile: SubstrateProfile,
}

impl std::fmt::Debug for TrustZone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TrustZone({} domains on '{}')",
            self.fabric.table().len(),
            self.machine.name
        )
    }
}

impl TrustZone {
    /// Initializes TrustZone on `machine`. If the device-key fuse is not
    /// yet burned (fresh machine), it is burned from `seed` and the bank
    /// locked — the factory step of the smart-meter scenario.
    pub fn new(mut machine: Machine, seed: &str) -> TrustZone {
        let mut rng = Drbg::from_seed(&[b"lateral.trustzone.", seed.as_bytes()].concat());
        if !machine.fuses.is_locked() {
            let key = rng.gen_key();
            machine
                .fuses
                .burn(DEVICE_KEY_FUSE, key, FuseAccess::SecureWorldOnly)
                .expect("burning on an unlocked bank succeeds");
            machine.fuses.lock();
        }
        // The secure world reads the fused key at boot and derives its
        // identities — the boot-ROM attestation component of Figure 3.
        let device_key = machine
            .fuses
            .read(Initiator::cpu(World::Secure), DEVICE_KEY_FUSE)
            .expect("secure world reads its fuse");
        let attest_key =
            SigningKey::from_seed(&[b"tz-attest".as_slice(), device_key.as_slice()].concat());
        let seal_root = lateral_crypto::hmac::hkdf(b"lateral.trustzone.sealroot", &device_key, b"");
        TrustZone {
            machine,
            fabric: Fabric::new(),
            kstate: BTreeMap::new(),
            normal_domain: None,
            attest_key,
            seal_root,
            platform_state: Digest::ZERO,
            rng,
            profile: SubstrateProfile {
                name: "trustzone".to_string(),
                defends: models(&[
                    AttackerModel::RemoteSoftware,
                    AttackerModel::CompromisedOs,
                    AttackerModel::MaliciousDevice,
                    AttackerModel::PhysicalBoot,
                ]),
                features: Features {
                    spatial_isolation: true,
                    temporal_isolation: false,
                    memory_encryption: false,
                    trust_anchor: true,
                    attestation: true,
                    sealed_storage: true,
                    // One secure world; components inside share it under
                    // secondary isolation. We report the architectural
                    // limit of one *hardware* trusted domain.
                    max_trusted_domains: Some(1),
                    hosts_legacy_os: true,
                },
                // Monitor + secure-world OS; QSEE-class systems are small.
                tcb_loc: 25_000,
            },
        }
    }

    /// Records the measured identity of the booted software stack,
    /// included in attestation evidence.
    #[must_use]
    pub fn with_platform_state(mut self, state: Digest) -> TrustZone {
        self.platform_state = state;
        self
    }

    /// Access to the underlying machine (experiments inject
    /// hardware-level attacks here).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Immutable machine access.
    pub fn machine_ref(&self) -> &Machine {
        &self.machine
    }

    /// Spawns the single normal-world legacy domain.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::OutOfResources`] when a normal-world domain
    /// already exists — "TrustZone itself does not support multiplexing"
    /// (§II-B). Combine with a hypervisor (the microkernel substrate) to
    /// host several.
    pub fn spawn_normal(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        if self.normal_domain.is_some() {
            return Err(SubstrateError::OutOfResources(
                "the normal world already hosts a legacy codebase (no multiplexing)".into(),
            ));
        }
        let id = fabric::spawn(self, spec, component, DomainKind::Untrusted)?;
        self.normal_domain = Some(id);
        Ok(id)
    }

    /// The world a domain executes in.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn world_of(&self, domain: DomainId) -> Result<World, SubstrateError> {
        Ok(self.kdomain(domain)?.world)
    }

    /// Physical frames backing a domain — used by the attack experiments
    /// to aim bus probes.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn domain_frames(&self, domain: DomainId) -> Result<Vec<Frame>, SubstrateError> {
        Ok(self.kdomain(domain)?.frames.clone())
    }

    const MEM_BASE: u64 = 0x10_0000;

    fn kdomain(&self, id: DomainId) -> Result<&TzDomain, SubstrateError> {
        self.kstate.get(&id).ok_or(SubstrateError::NoSuchDomain(id))
    }

    fn seal_key(&self, measurement: &Digest) -> [u8; 32] {
        lateral_crypto::hmac::hkdf(
            b"lateral.trustzone.seal",
            &self.seal_root,
            measurement.as_bytes(),
        )
    }
}

impl BackendPolicy for TrustZone {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, kind: DomainKind) -> Result<(), SubstrateError> {
        let world = match kind {
            DomainKind::Trusted => World::Secure,
            DomainKind::Untrusted => World::Normal,
        };
        let owner = match world {
            World::Secure => FrameOwner::Secure,
            World::Normal => FrameOwner::Normal,
        };
        let pages = self.fabric.table().get(id)?.spec.mem_pages.max(1);
        let frames = self
            .machine
            .mem
            .alloc_n(owner, pages)
            .map_err(|e| SubstrateError::OutOfResources(e.to_string()))?;
        let mut aspace = AddressSpace::new();
        for (i, frame) in frames.iter().enumerate() {
            aspace.map(
                VirtAddr(Self::MEM_BASE + (i * PAGE_SIZE) as u64),
                *frame,
                Rights::RW,
            );
        }
        self.kstate.insert(
            id,
            TzDomain {
                aspace,
                frames,
                world,
            },
        );
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(k) = self.kstate.remove(&id) {
            for frame in k.frames {
                self.machine.mem.free(frame);
            }
        }
        if self.normal_domain == Some(id) {
            self.normal_domain = None;
        }
    }

    fn crossing(&self, caller: DomainId, target: DomainId) -> Result<CrossingKind, SubstrateError> {
        // World crossings go through the secure monitor (SMC), costing a
        // full world switch each way; secure-internal calls are normal
        // IPC under the secure-world OS.
        if self.kdomain(caller)?.world == self.kdomain(target)?.world {
            Ok(CrossingKind::Ipc)
        } else {
            Ok(CrossingKind::WorldSwitch)
        }
    }

    fn crossing_cost(&self, kind: CrossingKind, bytes: usize) -> u64 {
        let base = match kind {
            CrossingKind::WorldSwitch => 2 * self.machine.costs.smc,
            _ => self.machine.costs.ipc_round_trip,
        };
        base + self.machine.costs.copy_cost(bytes)
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Same world → IPC through the secure-world OS; crossing the
        // NS boundary → an SMC pair.
        let c = &self.machine.costs;
        let mut m = fabric::CrossingCostModel::uniform(
            &self.profile.name,
            c.ipc_round_trip,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
            fabric::InvokeKindRule::SameSideElse {
                same: CrossingKind::Ipc,
                cross: CrossingKind::WorldSwitch,
            },
        );
        m.set(
            CrossingKind::WorldSwitch,
            2 * c.smc,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
        );
        m
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.machine.clock.advance(cycles);
    }

    fn seal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        // Sealing is a secure-world service rooted in the fused key.
        Ok(Aead::new(&self.seal_key(measurement)).seal(0, b"trustzone.seal", data))
    }

    fn unseal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        Aead::new(&self.seal_key(measurement))
            .open(0, b"trustzone.seal", sealed)
            .map_err(|_| {
                SubstrateError::CryptoFailure(
                    "unseal failed: wrong identity or tampered blob".into(),
                )
            })
    }

    fn attest_evidence(
        &mut self,
        domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        // Only secure-world components can be attested: the attestation
        // component has no basis for statements about normal-world state.
        if self.kdomain(domain)?.world != World::Secure {
            return Err(SubstrateError::Unsupported(
                "TrustZone attests secure-world components only".into(),
            ));
        }
        Ok(AttestationEvidence::sign(
            "trustzone",
            &self.attest_key,
            measurement,
            self.platform_state,
            report_data,
        ))
    }
}

impl Substrate for TrustZone {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    /// Spawns a *trusted component into the secure world*. Use
    /// [`TrustZone::spawn_normal`] for the legacy codebase.
    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        Ok(self.attest_key.verifying_key())
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        let (spans, world) = {
            let k = self.kdomain(domain)?;
            let spans = k
                .aspace
                .translate_range(
                    VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                    len,
                    AccessKind::Read,
                )
                .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
            (spans, k.world)
        };
        let mut out = Vec::with_capacity(len);
        for (pa, span_len) in spans {
            let bytes = self
                .machine
                .bus_read(Initiator::cpu(world), pa, span_len)
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let (spans, world) = {
            let k = self.kdomain(domain)?;
            let spans = k
                .aspace
                .translate_range(
                    VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                    data.len(),
                    AccessKind::Write,
                )
                .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
            (spans, k.world)
        };
        let mut cursor = 0usize;
        for (pa, span_len) in spans {
            self.machine
                .bus_write(Initiator::cpu(world), pa, &data[cursor..cursor + span_len])
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            cursor += span_len;
        }
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("domain-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.machine.clock.now()
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::machine::MachineBuilder;
    use lateral_substrate::attest::TrustPolicy;
    use lateral_substrate::conformance;
    use lateral_substrate::testkit::Echo;

    fn tz() -> TrustZone {
        let machine = MachineBuilder::new().name("tz-test").frames(128).build();
        TrustZone::new(machine, "test")
    }

    #[test]
    fn conformance_suite_passes() {
        let mut t = tz();
        let report = conformance::run(&mut t);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
        assert_eq!(
            report.outcome("attestation"),
            Some(&conformance::Outcome::Pass)
        );
    }

    #[test]
    fn only_one_normal_world_domain() {
        let mut t = tz();
        t.spawn_normal(DomainSpec::named("android"), Box::new(Echo))
            .unwrap();
        assert!(matches!(
            t.spawn_normal(DomainSpec::named("second-os"), Box::new(Echo)),
            Err(SubstrateError::OutOfResources(_))
        ));
    }

    #[test]
    fn normal_world_cpu_cannot_read_secure_component_memory() {
        let mut t = tz();
        let tc = t
            .spawn(DomainSpec::named("keystore"), Box::new(Echo))
            .unwrap();
        t.mem_write(tc, 0, b"DRM keys").unwrap();
        let frame = t.domain_frames(tc).unwrap()[0];
        // The compromised normal-world OS issues a raw read at the secure
        // frame — blocked by the NS-bit check.
        let err = t
            .machine()
            .bus_read(Initiator::cpu(World::Normal), frame.base(), 8)
            .unwrap_err();
        assert!(err.to_string().contains("normal world"));
    }

    #[test]
    fn physical_probe_reads_secure_world_plaintext() {
        // TrustZone does not encrypt DRAM: the bus probe leaks secrets —
        // why the profile excludes AttackerModel::PhysicalBus.
        let mut t = tz();
        let tc = t
            .spawn(DomainSpec::named("keystore"), Box::new(Echo))
            .unwrap();
        t.mem_write(tc, 0, b"DRM keys").unwrap();
        let frame = t.domain_frames(tc).unwrap()[0];
        let leaked = t
            .machine()
            .bus_read(Initiator::Probe, frame.base(), 8)
            .unwrap();
        assert_eq!(leaked, b"DRM keys");
        assert!(!t.profile().defends_against(AttackerModel::PhysicalBus));
    }

    #[test]
    fn smc_costs_more_than_secure_internal_ipc() {
        let mut t = tz();
        let s1 = t.spawn(DomainSpec::named("s1"), Box::new(Echo)).unwrap();
        let s2 = t.spawn(DomainSpec::named("s2"), Box::new(Echo)).unwrap();
        let legacy = t
            .spawn_normal(DomainSpec::named("android"), Box::new(Echo))
            .unwrap();
        let cap_internal = t.grant_channel(s1, s2, Badge(0)).unwrap();
        let cap_smc = t.grant_channel(legacy, s1, Badge(0)).unwrap();
        let t0 = t.now();
        t.invoke(s1, &cap_internal, b"x").unwrap();
        let internal = t.now() - t0;
        let t1 = t.now();
        t.invoke(legacy, &cap_smc, b"x").unwrap();
        let crossing = t.now() - t1;
        assert!(crossing > internal, "{crossing} vs {internal}");
    }

    #[test]
    fn attestation_verifies_and_binds_device_identity() {
        let mut t = tz().with_platform_state(Digest::of(b"meter stack v1"));
        let meter = t
            .spawn(
                DomainSpec::named("meter").with_image(b"meter v1"),
                Box::new(Echo),
            )
            .unwrap();
        let ev = t.attest(meter, b"reading batch 7").unwrap();
        let mut policy = TrustPolicy::new();
        policy.trust_platform(t.platform_verifying_key().unwrap());
        policy.expect_measurement(
            DomainSpec::named("meter")
                .with_image(b"meter v1")
                .measurement(),
        );
        policy.expect_platform_state(Digest::of(b"meter stack v1"));
        assert!(policy.verify(&ev).is_ok());
    }

    #[test]
    fn normal_world_cannot_be_attested() {
        let mut t = tz();
        let legacy = t
            .spawn_normal(DomainSpec::named("android"), Box::new(Echo))
            .unwrap();
        assert!(matches!(
            t.attest(legacy, b""),
            Err(SubstrateError::Unsupported(_))
        ));
    }

    #[test]
    fn same_device_same_identity_key() {
        // The fused key makes device identity stable across reboots.
        let m1 = MachineBuilder::new().name("meter-1").frames(64).build();
        let t1 = TrustZone::new(m1, "device-seed");
        let k1 = t1.platform_verifying_key().unwrap();
        // "Reboot": new TrustZone over a machine with the same fuse.
        let mut m2 = MachineBuilder::new().name("meter-1").frames(64).build();
        let mut rng = Drbg::from_seed(&[b"lateral.trustzone.", b"device-seed".as_slice()].concat());
        m2.fuses
            .burn(DEVICE_KEY_FUSE, rng.gen_key(), FuseAccess::SecureWorldOnly)
            .unwrap();
        m2.fuses.lock();
        let t2 = TrustZone::new(m2, "ignored-after-lock");
        assert_eq!(
            k1.to_bytes(),
            t2.platform_verifying_key().unwrap().to_bytes()
        );
    }

    #[test]
    fn normal_domain_slot_frees_on_destroy() {
        let mut t = tz();
        let legacy = t
            .spawn_normal(DomainSpec::named("android"), Box::new(Echo))
            .unwrap();
        t.destroy(legacy).unwrap();
        assert!(t
            .spawn_normal(DomainSpec::named("android2"), Box::new(Echo))
            .is_ok());
    }
}
