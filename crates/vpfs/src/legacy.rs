//! The untrusted legacy file system.
//!
//! A deliberately conventional design — superblock, inode table,
//! allocation bitmap, direct block pointers — standing in for the "tens
//! of thousands of lines" of real file system stacks the paper says are
//! "likely to contain exploitable weaknesses" (§III-D). VPFS treats this
//! whole layer as adversary-controlled: everything stored here is
//! ciphertext, and every byte read back is verified.

use crate::block::{BlockDevice, MemBlockDevice, BLOCK_SIZE};
use crate::FsError;

const MAGIC: &[u8; 4] = b"LFS1";
const INODE_BLOCKS: usize = 16;
const INODE_SIZE: usize = 128;
const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;
const MAX_INODES: usize = INODE_BLOCKS * INODES_PER_BLOCK;
const BITMAP_BLOCK: usize = 1 + INODE_BLOCKS;
const DATA_START: usize = BITMAP_BLOCK + 1;
const MAX_NAME: usize = 64;
const DIRECT_PTRS: usize = 12;

/// Largest file the legacy layout supports.
pub const MAX_FILE_SIZE: usize = DIRECT_PTRS * BLOCK_SIZE;

#[derive(Clone, Debug, Default)]
struct Inode {
    used: bool,
    name: String,
    size: u32,
    blocks: [u32; DIRECT_PTRS],
}

impl Inode {
    fn encode(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        out[0] = self.used as u8;
        let name = self.name.as_bytes();
        out[1] = name.len() as u8;
        out[2..2 + name.len()].copy_from_slice(name);
        out[66..70].copy_from_slice(&self.size.to_le_bytes());
        for (i, b) in self.blocks.iter().enumerate() {
            out[70 + i * 4..74 + i * 4].copy_from_slice(&b.to_le_bytes());
        }
        out
    }

    fn decode(raw: &[u8]) -> Result<Inode, FsError> {
        if raw.len() < INODE_SIZE {
            return Err(FsError::Corrupt("short inode".into()));
        }
        let used = raw[0] != 0;
        let name_len = raw[1] as usize;
        if name_len > MAX_NAME {
            return Err(FsError::Corrupt("inode name length out of range".into()));
        }
        let name = String::from_utf8(raw[2..2 + name_len].to_vec())
            .map_err(|_| FsError::Corrupt("inode name not UTF-8".into()))?;
        let size = u32::from_le_bytes(raw[66..70].try_into().expect("4 bytes"));
        let mut blocks = [0u32; DIRECT_PTRS];
        for (i, b) in blocks.iter_mut().enumerate() {
            *b = u32::from_le_bytes(raw[70 + i * 4..74 + i * 4].try_into().expect("4 bytes"));
        }
        Ok(Inode {
            used,
            name,
            size,
            blocks,
        })
    }
}

/// The legacy file system over an in-memory block device.
pub struct LegacyFs {
    device: MemBlockDevice,
}

impl std::fmt::Debug for LegacyFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LegacyFs({:?})", self.device)
    }
}

impl LegacyFs {
    /// Formats `device` with an empty file system.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when the device is too small for the layout.
    pub fn format(mut device: MemBlockDevice) -> Result<LegacyFs, FsError> {
        if device.block_count() <= DATA_START {
            return Err(FsError::NoSpace(format!(
                "device needs more than {DATA_START} blocks"
            )));
        }
        let mut sb = [0u8; BLOCK_SIZE];
        sb[..4].copy_from_slice(MAGIC);
        sb[4..8].copy_from_slice(&(device.block_count() as u32).to_le_bytes());
        device.write_counted(0, &sb)?;
        let zero = [0u8; BLOCK_SIZE];
        for b in 1..DATA_START {
            device.write_counted(b, &zero)?;
        }
        Ok(LegacyFs { device })
    }

    /// Mounts an already formatted device.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the superblock magic is wrong.
    pub fn mount(mut device: MemBlockDevice) -> Result<LegacyFs, FsError> {
        let sb = device.read_counted(0)?;
        if &sb[..4] != MAGIC {
            return Err(FsError::Corrupt("bad superblock magic".into()));
        }
        Ok(LegacyFs { device })
    }

    /// The underlying device — the attack surface for E5.
    pub fn device(&mut self) -> &mut MemBlockDevice {
        &mut self.device
    }

    /// Immutable device access.
    pub fn device_ref(&self) -> &MemBlockDevice {
        &self.device
    }

    fn load_inode(&mut self, idx: usize) -> Result<Inode, FsError> {
        let block = 1 + idx / INODES_PER_BLOCK;
        let off = (idx % INODES_PER_BLOCK) * INODE_SIZE;
        let raw = self.device.read_counted(block)?;
        Inode::decode(&raw[off..off + INODE_SIZE])
    }

    fn store_inode(&mut self, idx: usize, inode: &Inode) -> Result<(), FsError> {
        let block = 1 + idx / INODES_PER_BLOCK;
        let off = (idx % INODES_PER_BLOCK) * INODE_SIZE;
        let mut raw = self.device.read_counted(block)?;
        raw[off..off + INODE_SIZE].copy_from_slice(&inode.encode());
        self.device.write_counted(block, &raw)
    }

    fn find(&mut self, name: &str) -> Result<Option<(usize, Inode)>, FsError> {
        for idx in 0..MAX_INODES {
            let inode = self.load_inode(idx)?;
            if inode.used && inode.name == name {
                return Ok(Some((idx, inode)));
            }
        }
        Ok(None)
    }

    fn alloc_data_block(&mut self) -> Result<u32, FsError> {
        let mut bitmap = self.device.read_counted(BITMAP_BLOCK)?;
        let total = self.device.block_count();
        for b in DATA_START..total {
            let byte = b / 8;
            let bit = b % 8;
            if bitmap[byte] & (1 << bit) == 0 {
                bitmap[byte] |= 1 << bit;
                self.device.write_counted(BITMAP_BLOCK, &bitmap)?;
                return Ok(b as u32);
            }
        }
        Err(FsError::NoSpace("no free data blocks".into()))
    }

    fn free_data_block(&mut self, b: u32) -> Result<(), FsError> {
        let mut bitmap = self.device.read_counted(BITMAP_BLOCK)?;
        let byte = b as usize / 8;
        let bit = b as usize % 8;
        bitmap[byte] &= !(1 << bit);
        self.device.write_counted(BITMAP_BLOCK, &bitmap)
    }

    fn validate_name(name: &str) -> Result<(), FsError> {
        if name.is_empty() || name.len() > MAX_NAME {
            return Err(FsError::BadName(name.to_string()));
        }
        Ok(())
    }

    /// Writes (creates or replaces) `name` with `data`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadName`] for invalid names, [`FsError::NoSpace`] when
    /// the file is too large or the disk/namespace is full.
    pub fn write(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        Self::validate_name(name)?;
        if data.len() > MAX_FILE_SIZE {
            return Err(FsError::NoSpace(format!(
                "file exceeds {MAX_FILE_SIZE} bytes"
            )));
        }
        // Replace semantics: remove then recreate.
        if self.find(name)?.is_some() {
            self.remove(name)?;
        }
        let idx = (0..MAX_INODES)
            .find_map(|i| match self.load_inode(i) {
                Ok(inode) if !inode.used => Some(Ok(i)),
                Ok(_) => None,
                Err(e) => Some(Err(e)),
            })
            .transpose()?
            .ok_or_else(|| FsError::NoSpace("inode table full".into()))?;
        let mut inode = Inode {
            used: true,
            name: name.to_string(),
            size: data.len() as u32,
            blocks: [0u32; DIRECT_PTRS],
        };
        for (chunk_no, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
            let b = self.alloc_data_block()?;
            let mut raw = [0u8; BLOCK_SIZE];
            raw[..chunk.len()].copy_from_slice(chunk);
            self.device.write_counted(b as usize, &raw)?;
            inode.blocks[chunk_no] = b;
        }
        self.store_inode(idx, &inode)
    }

    /// Reads the contents of `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], or [`FsError::Corrupt`] if the on-disk
    /// structures are malformed.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let (_, inode) = self
            .find(name)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let mut out = Vec::with_capacity(inode.size as usize);
        let mut remaining = inode.size as usize;
        for &b in inode.blocks.iter() {
            if remaining == 0 {
                break;
            }
            if (b as usize) < DATA_START || (b as usize) >= self.device.block_count() {
                return Err(FsError::Corrupt(format!("inode points at block {b}")));
            }
            let raw = self.device.read_counted(b as usize)?;
            let take = remaining.min(BLOCK_SIZE);
            out.extend_from_slice(&raw[..take]);
            remaining -= take;
        }
        Ok(out)
    }

    /// Deletes `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        let (idx, inode) = self
            .find(name)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let block_count = inode.size as usize % BLOCK_SIZE;
        let used_blocks = inode.size as usize / BLOCK_SIZE + usize::from(block_count != 0);
        for &b in inode.blocks.iter().take(used_blocks) {
            self.free_data_block(b)?;
        }
        self.store_inode(idx, &Inode::default())
    }

    /// Whether `name` exists.
    ///
    /// # Errors
    ///
    /// Propagates [`FsError::Corrupt`] from malformed structures.
    pub fn exists(&mut self, name: &str) -> Result<bool, FsError> {
        Ok(self.find(name)?.is_some())
    }

    /// Lists all file names.
    ///
    /// # Errors
    ///
    /// Propagates [`FsError::Corrupt`].
    pub fn list(&mut self) -> Result<Vec<String>, FsError> {
        let mut out = Vec::new();
        for idx in 0..MAX_INODES {
            let inode = self.load_inode(idx)?;
            if inode.used {
                out.push(inode.name);
            }
        }
        Ok(out)
    }

    /// The data blocks a file occupies (used by targeted-attack tests).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn file_blocks(&mut self, name: &str) -> Result<Vec<usize>, FsError> {
        let (_, inode) = self
            .find(name)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let rem = inode.size as usize % BLOCK_SIZE;
        let used = inode.size as usize / BLOCK_SIZE + usize::from(rem != 0);
        Ok(inode
            .blocks
            .iter()
            .take(used)
            .map(|b| *b as usize)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> LegacyFs {
        LegacyFs::format(MemBlockDevice::new(256)).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = fs();
        f.write("hello.txt", b"hello world").unwrap();
        assert_eq!(f.read("hello.txt").unwrap(), b"hello world");
    }

    #[test]
    fn multi_block_files() {
        let mut f = fs();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE + 100).map(|i| i as u8).collect();
        f.write("big.bin", &data).unwrap();
        assert_eq!(f.read("big.bin").unwrap(), data);
    }

    #[test]
    fn replace_overwrites() {
        let mut f = fs();
        f.write("a", b"version 1").unwrap();
        f.write("a", b"v2").unwrap();
        assert_eq!(f.read("a").unwrap(), b"v2");
        assert_eq!(f.list().unwrap().len(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut f = fs();
        let data = vec![1u8; 2 * BLOCK_SIZE];
        f.write("a", &data).unwrap();
        f.remove("a").unwrap();
        assert!(matches!(f.read("a"), Err(FsError::NotFound(_))));
        // Space is reusable: fill the disk after removal.
        for i in 0..20 {
            f.write(&format!("f{i}"), &data).unwrap();
        }
    }

    #[test]
    fn list_and_exists() {
        let mut f = fs();
        f.write("x", b"1").unwrap();
        f.write("y", b"2").unwrap();
        let mut names = f.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["x".to_string(), "y".to_string()]);
        assert!(f.exists("x").unwrap());
        assert!(!f.exists("z").unwrap());
    }

    #[test]
    fn too_large_file_rejected() {
        let mut f = fs();
        assert!(matches!(
            f.write("huge", &vec![0u8; MAX_FILE_SIZE + 1]),
            Err(FsError::NoSpace(_))
        ));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut f = fs();
        assert!(matches!(f.write("", b"x"), Err(FsError::BadName(_))));
        let long = "n".repeat(65);
        assert!(matches!(f.write(&long, b"x"), Err(FsError::BadName(_))));
    }

    #[test]
    fn mount_rejects_unformatted_device() {
        assert!(matches!(
            LegacyFs::mount(MemBlockDevice::new(64)),
            Err(FsError::Corrupt(_))
        ));
    }

    #[test]
    fn mount_preserves_contents() {
        let mut f = fs();
        f.write("persist", b"across mounts").unwrap();
        let device = f.device().clone();
        let mut f2 = LegacyFs::mount(device).unwrap();
        assert_eq!(f2.read("persist").unwrap(), b"across mounts");
    }

    #[test]
    fn disk_exhaustion_reported() {
        // 256 blocks total, ~237 data blocks.
        let mut f = fs();
        let data = vec![0u8; BLOCK_SIZE];
        let mut wrote = 0;
        for i in 0..300 {
            match f.write(&format!("f{i}"), &data) {
                Ok(()) => wrote += 1,
                Err(FsError::NoSpace(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(wrote > 200 && wrote < 250, "wrote {wrote}");
    }

    #[test]
    fn legacy_fs_is_naive_about_tampering() {
        // The legacy layer happily returns corrupted data — the gap VPFS
        // closes.
        let mut f = fs();
        f.write("victim", b"important data").unwrap();
        let blocks = f.file_blocks("victim").unwrap();
        f.device().corrupt(blocks[0], 0, 0xFF).unwrap();
        let data = f.read("victim").unwrap();
        assert_ne!(data, b"important data");
        // No error raised: silent corruption.
    }
}
