//! The VPFS trusted wrapper proper.
//!
//! Everything stored through the legacy layer is ciphertext with
//! authenticated bindings:
//!
//! * file contents are chunked; every chunk is AEAD-sealed with
//!   associated data binding `(file id, version, chunk index, chunk
//!   count)` — corruption, chunk swapping, and cross-file splicing all
//!   fail authentication;
//! * chunk objects are stored under versioned legacy names
//!   (`obj_<id>_<version>_<chunk>`), and a new version is written
//!   *before* the directory root commits — the jVPFS-style journaling
//!   discipline that keeps a crash from ever leaving the current version
//!   unreadable;
//! * the encrypted directory (`vpfs_root`) maps names to `(id, version,
//!   size, chunks)`; its own version is bound into its AEAD nonce;
//! * a [`RootDigest`] summarizing `(root version, root hash)` is returned
//!   after every mutation for the owner to keep in *sealed storage* —
//!   presenting it at [`Vpfs::mount`] detects whole-filesystem rollback,
//!   which no amount of on-disk cryptography can catch by itself.

use std::collections::BTreeMap;

use lateral_crypto::aead::Aead;
use lateral_crypto::hmac::hkdf;
use lateral_crypto::Digest;

use crate::legacy::LegacyFs;
use crate::FsError;

/// Plaintext bytes per chunk (the sealed chunk must fit a legacy file).
const CHUNK_SIZE: usize = 32 * 1024;

/// The freshness root: what the owning component seals to its identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RootDigest {
    /// Monotonic directory version.
    pub version: u64,
    /// Digest of the serialized directory at that version.
    pub digest: Digest,
}

impl RootDigest {
    /// Serializes to 40 bytes (for sealing).
    pub fn to_bytes(&self) -> [u8; 40] {
        let mut out = [0u8; 40];
        out[..8].copy_from_slice(&self.version.to_le_bytes());
        out[8..].copy_from_slice(self.digest.as_bytes());
        out
    }

    /// Parses the 40-byte form.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the slice has the wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<RootDigest, FsError> {
        if bytes.len() != 40 {
            return Err(FsError::Corrupt("root digest must be 40 bytes".into()));
        }
        let version = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut d = [0u8; 32];
        d.copy_from_slice(&bytes[8..]);
        Ok(RootDigest {
            version,
            digest: Digest(d),
        })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct FileEntry {
    file_id: u64,
    version: u64,
    size: u64,
    chunks: u32,
}

#[derive(Clone, Debug, Default)]
struct Directory {
    next_file_id: u64,
    entries: BTreeMap<String, FileEntry>,
}

impl Directory {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.next_file_id.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, e) in &self.entries {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&e.file_id.to_le_bytes());
            out.extend_from_slice(&e.version.to_le_bytes());
            out.extend_from_slice(&e.size.to_le_bytes());
            out.extend_from_slice(&e.chunks.to_le_bytes());
        }
        out
    }

    fn decode(mut raw: &[u8]) -> Result<Directory, FsError> {
        fn take<'a>(raw: &mut &'a [u8], n: usize) -> Result<&'a [u8], FsError> {
            if raw.len() < n {
                return Err(FsError::Corrupt("truncated directory".into()));
            }
            let (head, tail) = raw.split_at(n);
            *raw = tail;
            Ok(head)
        }
        let next_file_id = u64::from_le_bytes(take(&mut raw, 8)?.try_into().expect("8"));
        let count = u32::from_le_bytes(take(&mut raw, 4)?.try_into().expect("4"));
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(&mut raw, 2)?.try_into().expect("2")) as usize;
            let name = String::from_utf8(take(&mut raw, name_len)?.to_vec())
                .map_err(|_| FsError::Corrupt("directory name not UTF-8".into()))?;
            let file_id = u64::from_le_bytes(take(&mut raw, 8)?.try_into().expect("8"));
            let version = u64::from_le_bytes(take(&mut raw, 8)?.try_into().expect("8"));
            let size = u64::from_le_bytes(take(&mut raw, 8)?.try_into().expect("8"));
            let chunks = u32::from_le_bytes(take(&mut raw, 4)?.try_into().expect("4"));
            entries.insert(
                name,
                FileEntry {
                    file_id,
                    version,
                    size,
                    chunks,
                },
            );
        }
        Ok(Directory {
            next_file_id,
            entries,
        })
    }
}

/// The virtual private file system.
///
/// ```
/// use lateral_vpfs::{LegacyFs, MemBlockDevice, Vpfs};
///
/// # fn main() -> Result<(), lateral_vpfs::FsError> {
/// let legacy = LegacyFs::format(MemBlockDevice::new(128))?;
/// let mut vpfs = Vpfs::format(legacy, &[7u8; 32])?;
/// vpfs.write("inbox/1", b"private mail")?;
/// assert_eq!(vpfs.read("inbox/1")?, b"private mail");
/// // Keep the freshness root in sealed storage; present it on mount to
/// // detect whole-filesystem rollback.
/// let root = vpfs.root();
/// # let _ = root;
/// # Ok(())
/// # }
/// ```
pub struct Vpfs {
    legacy: LegacyFs,
    file_master: [u8; 32],
    dir_aead: Aead,
    dir: Directory,
    dir_version: u64,
}

impl std::fmt::Debug for Vpfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Vpfs({} files, root v{})",
            self.dir.entries.len(),
            self.dir_version
        )
    }
}

const ROOT_NAME: &str = "vpfs_root";

fn obj_name(file_id: u64, version: u64, chunk: u32) -> String {
    format!("obj_{file_id:x}_{version:x}_{chunk:x}")
}

impl Vpfs {
    fn derive_keys(master: &[u8; 32]) -> ([u8; 32], Aead) {
        let file_master = hkdf(b"lateral.vpfs", master, b"files");
        let dir_key = hkdf(b"lateral.vpfs", master, b"directory");
        (file_master, Aead::new(&dir_key))
    }

    fn file_aead(&self, file_id: u64) -> Aead {
        let key = hkdf(
            b"lateral.vpfs.file",
            &self.file_master,
            &file_id.to_le_bytes(),
        );
        Aead::new(&key)
    }

    /// Creates a fresh VPFS over `legacy`, keyed by `master`.
    ///
    /// # Errors
    ///
    /// Propagates legacy-layer failures from writing the initial root.
    pub fn format(legacy: LegacyFs, master: &[u8; 32]) -> Result<Vpfs, FsError> {
        let (file_master, dir_aead) = Self::derive_keys(master);
        let mut vpfs = Vpfs {
            legacy,
            file_master,
            dir_aead,
            dir: Directory::default(),
            dir_version: 0,
        };
        vpfs.commit_root()?;
        Ok(vpfs)
    }

    /// Mounts an existing VPFS. When `trusted_root` is supplied (from the
    /// owner's sealed storage), the stored state must match it exactly —
    /// detecting whole-filesystem rollback.
    ///
    /// # Errors
    ///
    /// * [`FsError::IntegrityViolation`] — the root fails authentication
    ///   (wrong key or tampered bytes).
    /// * [`FsError::StaleRoot`] — a valid but *old* state was presented.
    pub fn mount(
        mut legacy: LegacyFs,
        master: &[u8; 32],
        trusted_root: Option<RootDigest>,
    ) -> Result<Vpfs, FsError> {
        let (file_master, dir_aead) = Self::derive_keys(master);
        let raw = legacy
            .read(ROOT_NAME)
            .map_err(|_| FsError::IntegrityViolation("vpfs root missing".into()))?;
        if raw.len() < 8 {
            return Err(FsError::IntegrityViolation("vpfs root truncated".into()));
        }
        let version = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
        let plain = dir_aead
            .open(version, b"vpfs.dir", &raw[8..])
            .map_err(|_| FsError::IntegrityViolation("vpfs root failed authentication".into()))?;
        if let Some(expected) = trusted_root {
            let digest = Digest::of(&plain);
            if version != expected.version || digest != expected.digest {
                return Err(FsError::StaleRoot);
            }
        }
        let dir = Directory::decode(&plain)?;
        Ok(Vpfs {
            legacy,
            file_master,
            dir_aead,
            dir,
            dir_version: version,
        })
    }

    /// The current freshness root. Persist this in sealed storage after
    /// every mutation and present it at the next [`Vpfs::mount`].
    pub fn root(&self) -> RootDigest {
        RootDigest {
            version: self.dir_version,
            digest: Digest::of(&self.dir.encode()),
        }
    }

    /// The legacy layer underneath (the attack surface).
    pub fn legacy(&mut self) -> &mut LegacyFs {
        &mut self.legacy
    }

    fn commit_root(&mut self) -> Result<(), FsError> {
        self.dir_version += 1;
        let plain = self.dir.encode();
        let sealed = self.dir_aead.seal(self.dir_version, b"vpfs.dir", &plain);
        let mut raw = self.dir_version.to_le_bytes().to_vec();
        raw.extend_from_slice(&sealed);
        self.legacy.write(ROOT_NAME, &raw)
    }

    /// Writes (creates or replaces) `name` with `data`.
    ///
    /// Journaling discipline: the new version's chunk objects are written
    /// first, the directory root commits second, and only then are the
    /// previous version's objects garbage-collected — a crash at any
    /// point leaves a fully readable filesystem.
    ///
    /// # Errors
    ///
    /// Legacy-layer space and name errors.
    pub fn write(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let old = self.dir.entries.get(name).cloned();
        let (file_id, version) = match &old {
            Some(e) => (e.file_id, e.version + 1),
            None => {
                let id = self.dir.next_file_id;
                self.dir.next_file_id += 1;
                (id, 1)
            }
        };
        let chunks = data.chunks(CHUNK_SIZE).collect::<Vec<_>>();
        let chunk_count = chunks.len().max(1) as u32;
        let aead = self.file_aead(file_id);
        // Phase 1: write the new version's objects.
        for (i, chunk) in chunks.iter().enumerate() {
            let aad = format!("vpfs.file:{file_id}:{version}:{i}:{chunk_count}");
            let sealed = aead.seal(version ^ ((i as u64) << 32), aad.as_bytes(), chunk);
            self.legacy
                .write(&obj_name(file_id, version, i as u32), &sealed)?;
        }
        if chunks.is_empty() {
            let aad = format!("vpfs.file:{file_id}:{version}:0:{chunk_count}");
            let sealed = aead.seal(version, aad.as_bytes(), b"");
            self.legacy.write(&obj_name(file_id, version, 0), &sealed)?;
        }
        // Phase 2: commit the root.
        self.dir.entries.insert(
            name.to_string(),
            FileEntry {
                file_id,
                version,
                size: data.len() as u64,
                chunks: chunk_count,
            },
        );
        self.commit_root()?;
        // Phase 3: garbage-collect the previous version.
        if let Some(e) = old {
            for i in 0..e.chunks {
                let _ = self.legacy.remove(&obj_name(e.file_id, e.version, i));
            }
        }
        Ok(())
    }

    /// Reads and verifies `name`.
    ///
    /// # Errors
    ///
    /// * [`FsError::NotFound`] — no such file in the trusted directory.
    /// * [`FsError::IntegrityViolation`] — any chunk is missing, corrupt,
    ///   swapped, or from a different version.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let entry = self
            .dir
            .entries
            .get(name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let aead = self.file_aead(entry.file_id);
        let mut out = Vec::with_capacity(entry.size as usize);
        for i in 0..entry.chunks {
            let obj = obj_name(entry.file_id, entry.version, i);
            let sealed = self.legacy.read(&obj).map_err(|_| {
                FsError::IntegrityViolation(format!("object {obj} missing (tampered namespace)"))
            })?;
            let aad = format!(
                "vpfs.file:{}:{}:{}:{}",
                entry.file_id, entry.version, i, entry.chunks
            );
            let nonce = entry.version ^ ((i as u64) << 32);
            let plain = aead.open(nonce, aad.as_bytes(), &sealed).map_err(|_| {
                FsError::IntegrityViolation(format!("object {obj} failed authentication"))
            })?;
            out.extend_from_slice(&plain);
        }
        if out.len() as u64 != entry.size {
            return Err(FsError::IntegrityViolation(
                "reassembled size mismatch".into(),
            ));
        }
        Ok(out)
    }

    /// Deletes `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        let entry = self
            .dir
            .entries
            .remove(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        self.commit_root()?;
        for i in 0..entry.chunks {
            let _ = self
                .legacy
                .remove(&obj_name(entry.file_id, entry.version, i));
        }
        Ok(())
    }

    /// Lists file names (from the trusted directory, not the legacy
    /// namespace).
    pub fn list(&self) -> Vec<String> {
        self.dir.entries.keys().cloned().collect()
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.dir.entries.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;

    const KEY: [u8; 32] = [0x11; 32];

    fn vpfs() -> Vpfs {
        let legacy = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
        Vpfs::format(legacy, &KEY).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut v = vpfs();
        v.write("secrets/keys.txt", b"imap password").unwrap();
        assert_eq!(v.read("secrets/keys.txt").unwrap(), b"imap password");
    }

    #[test]
    fn empty_and_multi_chunk_files() {
        let mut v = vpfs();
        v.write("empty", b"").unwrap();
        assert_eq!(v.read("empty").unwrap(), b"");
        let big: Vec<u8> = (0..80_000).map(|i| (i % 251) as u8).collect();
        v.write("big", &big).unwrap();
        assert_eq!(v.read("big").unwrap(), big);
    }

    #[test]
    fn plaintext_never_reaches_legacy_layer() {
        let mut v = vpfs();
        v.write("mail", b"SECRET_MARKER_1234").unwrap();
        // Scan every legacy file for the plaintext marker.
        let names = v.legacy().list().unwrap();
        for n in names {
            let raw = v.legacy().read(&n).unwrap();
            assert!(
                !raw.windows(18).any(|w| w == b"SECRET_MARKER_1234"),
                "plaintext leaked into legacy file {n}"
            );
        }
        // Even the file *names* are opaque object ids.
        assert!(v
            .legacy()
            .list()
            .unwrap()
            .iter()
            .all(|n| !n.contains("mail")));
    }

    #[test]
    fn corruption_is_detected() {
        let mut v = vpfs();
        v.write("a", b"important data").unwrap();
        // Find the object file and flip a bit in its data block.
        let obj = v
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        let blocks = v.legacy().file_blocks(&obj).unwrap();
        v.legacy().device().corrupt(blocks[0], 5, 0x01).unwrap();
        assert!(matches!(v.read("a"), Err(FsError::IntegrityViolation(_))));
    }

    #[test]
    fn chunk_swap_is_detected() {
        let mut v = vpfs();
        let big: Vec<u8> = (0..70_000).map(|i| (i % 13) as u8).collect();
        v.write("swap", &big).unwrap();
        // Swap the two chunk objects' contents at the legacy level.
        let names: Vec<String> = v
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("obj_"))
            .collect();
        assert_eq!(names.len(), 3); // 2 chunks for "swap" + 1? no: 3 = 2 chunks + root? root isn't obj_
        let a = v.legacy().read(&names[0]).unwrap();
        let b = v.legacy().read(&names[1]).unwrap();
        v.legacy().write(&names[0], &b).unwrap();
        v.legacy().write(&names[1], &a).unwrap();
        assert!(matches!(
            v.read("swap"),
            Err(FsError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn deleting_object_is_detected() {
        let mut v = vpfs();
        v.write("a", b"data").unwrap();
        let obj = v
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        v.legacy().remove(&obj).unwrap();
        assert!(matches!(v.read("a"), Err(FsError::IntegrityViolation(_))));
    }

    #[test]
    fn remount_with_fresh_root_succeeds() {
        let mut v = vpfs();
        v.write("persist", b"across remounts").unwrap();
        let root = v.root();
        let device = v.legacy().device().clone();
        let legacy = LegacyFs::mount(device).unwrap();
        let mut v2 = Vpfs::mount(legacy, &KEY, Some(root)).unwrap();
        assert_eq!(v2.read("persist").unwrap(), b"across remounts");
    }

    #[test]
    fn whole_fs_rollback_is_detected_via_sealed_root() {
        let mut v = vpfs();
        v.write("balance", b"100 EUR").unwrap();
        let snapshot = v.legacy().device().snapshot();
        v.write("balance", b"5 EUR").unwrap();
        let fresh_root = v.root();
        // Attacker rolls the disk back to when the balance was higher.
        let mut device = v.legacy().device().clone();
        device.rollback(&snapshot);
        let legacy = LegacyFs::mount(device).unwrap();
        assert!(matches!(
            Vpfs::mount(legacy, &KEY, Some(fresh_root)),
            Err(FsError::StaleRoot)
        ));
    }

    #[test]
    fn rollback_without_sealed_root_goes_unnoticed() {
        // The ablation: without the freshness root, a consistent rollback
        // is accepted — exactly why the root must live in sealed storage.
        let mut v = vpfs();
        v.write("balance", b"100 EUR").unwrap();
        let snapshot = v.legacy().device().snapshot();
        v.write("balance", b"5 EUR").unwrap();
        let mut device = v.legacy().device().clone();
        device.rollback(&snapshot);
        let legacy = LegacyFs::mount(device).unwrap();
        let mut v2 = Vpfs::mount(legacy, &KEY, None).unwrap();
        assert_eq!(v2.read("balance").unwrap(), b"100 EUR");
    }

    #[test]
    fn wrong_key_cannot_mount() {
        let mut v = vpfs();
        v.write("a", b"data").unwrap();
        let device = v.legacy().device().clone();
        let legacy = LegacyFs::mount(device).unwrap();
        assert!(matches!(
            Vpfs::mount(legacy, &[0x22; 32], None),
            Err(FsError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn overwrite_bumps_version_and_old_version_cannot_be_spliced() {
        let mut v = vpfs();
        v.write("cfg", b"v1 contents").unwrap();
        // Keep a copy of the v1 object.
        let obj_v1 = v
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        let old_bytes = v.legacy().read(&obj_v1).unwrap();
        v.write("cfg", b"v2 contents").unwrap();
        // Splice the old object under the new version's name.
        let obj_v2 = v
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        v.legacy().write(&obj_v2, &old_bytes).unwrap();
        assert!(matches!(v.read("cfg"), Err(FsError::IntegrityViolation(_))));
    }

    #[test]
    fn remove_then_read_fails_cleanly() {
        let mut v = vpfs();
        v.write("gone", b"x").unwrap();
        v.remove("gone").unwrap();
        assert!(matches!(v.read("gone"), Err(FsError::NotFound(_))));
        assert!(!v.exists("gone"));
    }

    #[test]
    fn list_reflects_trusted_directory() {
        let mut v = vpfs();
        v.write("a", b"1").unwrap();
        v.write("b", b"2").unwrap();
        assert_eq!(v.list(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn crash_between_phases_leaves_old_version_readable() {
        // Simulate a crash after phase 1 (new objects written) but before
        // phase 2 (root commit): remount sees the old, consistent state.
        let mut v = vpfs();
        v.write("doc", b"version 1").unwrap();
        let root = v.root();
        let pre_crash_device = v.legacy().device().clone();
        // "Crash": abandon v mid-write by only writing phase-1 artifacts.
        // We emulate by writing a new object manually (attacker-visible
        // garbage is fine) and NOT committing the root.
        let mut device = pre_crash_device;
        let mut legacy = LegacyFs::mount(device.clone()).unwrap();
        legacy
            .write("obj_0_2_0", b"half-written new version")
            .unwrap();
        device = legacy.device().clone();
        let legacy2 = LegacyFs::mount(device).unwrap();
        let mut v2 = Vpfs::mount(legacy2, &KEY, Some(root)).unwrap();
        assert_eq!(v2.read("doc").unwrap(), b"version 1");
    }

    #[test]
    fn root_digest_serialization_roundtrip() {
        let v = vpfs();
        let root = v.root();
        let restored = RootDigest::from_bytes(&root.to_bytes()).unwrap();
        assert_eq!(restored, root);
        assert!(RootDigest::from_bytes(&[0u8; 10]).is_err());
    }
}
