//! The block device under the legacy file system.
//!
//! Besides ordinary reads and writes it exposes the *attacker interface*
//! experiment E5 drives: flip bits in a block, roll a block back to an
//! earlier state, or roll the whole device back to a snapshot — the
//! attacks an untrusted storage stack (or a physically accessed disk) can
//! mount against data at rest.

use crate::FsError;

/// Size of one block in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// A fixed-geometry block device.
pub trait BlockDevice {
    /// Number of blocks.
    fn block_count(&self) -> usize;
    /// Reads block `index` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// [`FsError::BadBlock`] when out of range.
    fn read_block(&self, index: usize) -> Result<[u8; BLOCK_SIZE], FsError>;
    /// Writes block `index`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadBlock`] when out of range.
    fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Result<(), FsError>;
}

/// An in-memory block device with tamper hooks.
#[derive(Clone)]
pub struct MemBlockDevice {
    blocks: Vec<[u8; BLOCK_SIZE]>,
    reads: u64,
    writes: u64,
}

impl std::fmt::Debug for MemBlockDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MemBlockDevice({} blocks, {} reads, {} writes)",
            self.blocks.len(),
            self.reads,
            self.writes
        )
    }
}

impl MemBlockDevice {
    /// Creates a zeroed device with `blocks` blocks.
    pub fn new(blocks: usize) -> MemBlockDevice {
        MemBlockDevice {
            blocks: vec![[0u8; BLOCK_SIZE]; blocks],
            reads: 0,
            writes: 0,
        }
    }

    /// Total reads served (I/O accounting for E5).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// ATTACK: XORs `mask` into byte `offset` of block `index`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadBlock`] when out of range.
    pub fn corrupt(&mut self, index: usize, offset: usize, mask: u8) -> Result<(), FsError> {
        let block = self.blocks.get_mut(index).ok_or(FsError::BadBlock(index))?;
        block[offset % BLOCK_SIZE] ^= mask;
        Ok(())
    }

    /// Snapshot of the entire device (attacker keeping an old copy).
    pub fn snapshot(&self) -> Vec<[u8; BLOCK_SIZE]> {
        self.blocks.clone()
    }

    /// ATTACK: rolls the whole device back to `snapshot`.
    pub fn rollback(&mut self, snapshot: &[[u8; BLOCK_SIZE]]) {
        let n = self.blocks.len().min(snapshot.len());
        self.blocks[..n].copy_from_slice(&snapshot[..n]);
    }

    /// ATTACK: rolls a single block back to its value in `snapshot`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadBlock`] when out of range.
    pub fn rollback_block(
        &mut self,
        index: usize,
        snapshot: &[[u8; BLOCK_SIZE]],
    ) -> Result<(), FsError> {
        let old = snapshot.get(index).ok_or(FsError::BadBlock(index))?;
        let cur = self.blocks.get_mut(index).ok_or(FsError::BadBlock(index))?;
        *cur = *old;
        Ok(())
    }
}

impl BlockDevice for MemBlockDevice {
    fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn read_block(&self, index: usize) -> Result<[u8; BLOCK_SIZE], FsError> {
        self.blocks
            .get(index)
            .copied()
            .ok_or(FsError::BadBlock(index))
    }

    fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Result<(), FsError> {
        let block = self.blocks.get_mut(index).ok_or(FsError::BadBlock(index))?;
        *block = *data;
        Ok(())
    }
}

// Counting needs &mut; do it via interior bookkeeping in a wrapper method
// instead: the trait takes &self for reads, so counts live in the wrapper.
impl MemBlockDevice {
    /// Reads a block and counts the access (used by the legacy fs).
    pub(crate) fn read_counted(&mut self, index: usize) -> Result<[u8; BLOCK_SIZE], FsError> {
        self.reads += 1;
        self.read_block(index)
    }

    /// Writes a block and counts the access.
    pub(crate) fn write_counted(
        &mut self,
        index: usize,
        data: &[u8; BLOCK_SIZE],
    ) -> Result<(), FsError> {
        self.writes += 1;
        self.write_block(index, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut d = MemBlockDevice::new(4);
        let mut data = [0u8; BLOCK_SIZE];
        data[0] = 0xAA;
        data[BLOCK_SIZE - 1] = 0x55;
        d.write_block(2, &data).unwrap();
        assert_eq!(d.read_block(2).unwrap(), data);
        assert_eq!(d.read_block(1).unwrap(), [0u8; BLOCK_SIZE]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = MemBlockDevice::new(2);
        assert_eq!(d.read_block(2), Err(FsError::BadBlock(2)));
        assert_eq!(
            d.write_block(5, &[0u8; BLOCK_SIZE]),
            Err(FsError::BadBlock(5))
        );
    }

    #[test]
    fn corrupt_flips_one_byte() {
        let mut d = MemBlockDevice::new(2);
        d.corrupt(1, 10, 0xFF).unwrap();
        let b = d.read_block(1).unwrap();
        assert_eq!(b[10], 0xFF);
        assert_eq!(b[9], 0);
    }

    #[test]
    fn rollback_restores_snapshot() {
        let mut d = MemBlockDevice::new(2);
        let snap = d.snapshot();
        let mut data = [7u8; BLOCK_SIZE];
        d.write_block(0, &data).unwrap();
        data[0] = 8;
        d.write_block(1, &data).unwrap();
        d.rollback_block(0, &snap).unwrap();
        assert_eq!(d.read_block(0).unwrap(), [0u8; BLOCK_SIZE]);
        assert_ne!(d.read_block(1).unwrap(), [0u8; BLOCK_SIZE]);
        d.rollback(&snap);
        assert_eq!(d.read_block(1).unwrap(), [0u8; BLOCK_SIZE]);
    }
}
