//! VPFS — the Virtual Private File System trusted wrapper.
//!
//! §III-D "Trusted Reuse": *"trusted components should not rely on file
//! system code to maintain data integrity or confidentiality. The Virtual
//! Private File System (VPFS) is a trusted wrapper allowing secure reuse
//! of a legacy file system stack. The legacy stack takes care of actually
//! storing file contents and managing the storage medium, but it never
//! handles plaintext data. Instead, the VPFS wrapper guarantees
//! confidentiality and integrity of all file system data and metadata by
//! means of encryption and message authentication codes."*
//!
//! The crate builds the whole stack:
//!
//! * [`block`] — a block device with the attack hooks experiments need
//!   (bit corruption, block rollback, whole-device snapshots).
//! * [`legacy`] — an untrusted legacy file system (superblock, inode
//!   table, allocation bitmap, direct blocks): tens of thousands of lines
//!   in real stacks, "likely to contain exploitable weaknesses", here the
//!   *adversary-controlled* layer.
//! * [`vpfs`] — the trusted wrapper itself: per-chunk authenticated
//!   encryption, an encrypted directory, version binding against
//!   selective rollback, and a *freshness root* the owning component
//!   seals to its identity, defeating whole-filesystem rollback (the
//!   jVPFS theme of robustness against untrusted local storage).
//!
//! Experiment E5 measures the wrapper's overhead against the raw legacy
//! stack and verifies that every injected tampering is detected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod legacy;
pub mod vpfs;

pub use block::{BlockDevice, MemBlockDevice, BLOCK_SIZE};
pub use legacy::LegacyFs;
pub use vpfs::{RootDigest, Vpfs};

use std::error::Error;
use std::fmt;

/// Errors from any layer of the storage stack.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FsError {
    /// Block index out of range.
    BadBlock(usize),
    /// No such file.
    NotFound(String),
    /// Namespace or disk full.
    NoSpace(String),
    /// File name too long / invalid.
    BadName(String),
    /// The legacy file system's structures are malformed (corruption the
    /// legacy layer itself notices).
    Corrupt(String),
    /// The VPFS integrity check failed — tampering detected.
    IntegrityViolation(String),
    /// The supplied freshness root does not match the stored state
    /// (whole-filesystem rollback detected).
    StaleRoot,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::BadBlock(i) => write!(f, "block {i} out of range"),
            FsError::NotFound(n) => write!(f, "file not found: {n}"),
            FsError::NoSpace(r) => write!(f, "no space: {r}"),
            FsError::BadName(n) => write!(f, "bad file name: {n}"),
            FsError::Corrupt(r) => write!(f, "legacy filesystem corrupt: {r}"),
            FsError::IntegrityViolation(r) => write!(f, "integrity violation: {r}"),
            FsError::StaleRoot => write!(f, "stale freshness root (rollback detected)"),
        }
    }
}

impl Error for FsError {}
