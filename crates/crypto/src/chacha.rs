//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Used for bulk encryption (VPFS file contents, secure channel records,
//! simulated DRAM encryption engines) and as the core of the deterministic
//! random bit generator in [`crate::rng`].

/// "expand 32-byte k" in little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
///
/// `counter` is the 32-bit block counter; `nonce` is the 96-bit nonce.
pub fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream for (`key`, `nonce`)
/// starting at block `counter`.
///
/// Applying the function twice with the same parameters recovers the
/// plaintext, as for any stream cipher.
///
/// ```
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = *b"the meter reading is 42 kWh";
/// lateral_crypto::chacha::xor_stream(&key, 0, &nonce, &mut data);
/// assert_ne!(&data, b"the meter reading is 42 kWh");
/// lateral_crypto::chacha::xor_stream(&key, 0, &nonce, &mut data);
/// assert_eq!(&data, b"the meter reading is 42 kWh");
/// ```
pub fn xor_stream(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 section 2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2: key 00..1f, counter 1,
        // nonce 000000090000004a00000000.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, 1, &nonce);
        let expected_head = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&out[..16], &expected_head);
    }

    #[test]
    fn keystream_differs_by_nonce_and_counter() {
        let key = [9u8; 32];
        let n1 = [0u8; 12];
        let mut n2 = [0u8; 12];
        n2[0] = 1;
        assert_ne!(block(&key, 0, &n1), block(&key, 0, &n2));
        assert_ne!(block(&key, 0, &n1), block(&key, 1, &n1));
    }

    #[test]
    fn xor_stream_roundtrip_odd_lengths() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        for len in [0usize, 1, 63, 64, 65, 200] {
            let original: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut data = original.clone();
            xor_stream(&key, 7, &nonce, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} should be scrambled");
            }
            xor_stream(&key, 7, &nonce, &mut data);
            assert_eq!(data, original, "len {len} roundtrip");
        }
    }

    #[test]
    fn counter_offset_is_blockwise_consistent() {
        // Encrypting [b0 | b1] at counter 0 equals encrypting b1 at counter 1.
        let key = [4u8; 32];
        let nonce = [6u8; 12];
        let mut both = [0u8; 128];
        xor_stream(&key, 0, &nonce, &mut both);
        let mut second = [0u8; 64];
        xor_stream(&key, 1, &nonce, &mut second);
        assert_eq!(&both[64..], &second[..]);
    }
}
