//! Finite-field Diffie–Hellman key agreement.
//!
//! The secure-channel handshake ([`lateral-net`]'s TLS-like protocol) uses
//! ephemeral DH to establish forward-secret session keys, authenticated by
//! Schnorr signatures over the handshake transcript.
//!
//! [`lateral-net`]: ../../lateral_net/index.html

use crate::group::{GroupElement, Scalar};
use crate::hmac::hkdf;
use crate::rng::Drbg;
use crate::CryptoError;

/// An ephemeral Diffie–Hellman secret.
pub struct EphemeralSecret {
    secret: Scalar,
    public: GroupElement,
}

impl std::fmt::Debug for EphemeralSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EphemeralSecret(..)")
    }
}

/// A serialized DH public share (32 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicShare(pub [u8; 32]);

impl EphemeralSecret {
    /// Generates a fresh ephemeral secret.
    pub fn generate(rng: &mut Drbg) -> EphemeralSecret {
        loop {
            let secret = Scalar::random(rng);
            if !secret.is_zero() {
                let public = GroupElement::generator_exp(&secret);
                return EphemeralSecret { secret, public };
            }
        }
    }

    /// Returns the public share to send to the peer.
    pub fn public_share(&self) -> PublicShare {
        PublicShare(self.public.to_bytes())
    }

    /// Consumes the secret and computes the shared key with the peer's
    /// share, then derives a 32-byte session key with HKDF bound to `info`.
    ///
    /// Both sides derive identical keys when they use the same `info`
    /// (typically a transcript hash, binding the key to the handshake).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if the peer's share is
    /// malformed or degenerate (0, 1 — a small-subgroup-style check).
    pub fn agree(self, peer: &PublicShare, info: &[u8]) -> Result<[u8; 32], CryptoError> {
        let peer_elem = GroupElement::from_bytes(&peer.0)?;
        let shared = peer_elem.exp(&self.secret);
        Ok(hkdf(b"lateral.dh", &shared.to_bytes(), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        let mut rng = Drbg::from_seed(b"dh agree");
        let alice = EphemeralSecret::generate(&mut rng);
        let bob = EphemeralSecret::generate(&mut rng);
        let a_pub = alice.public_share();
        let b_pub = bob.public_share();
        let k_a = alice.agree(&b_pub, b"transcript").unwrap();
        let k_b = bob.agree(&a_pub, b"transcript").unwrap();
        assert_eq!(k_a, k_b);
    }

    #[test]
    fn different_info_differs() {
        let mut rng = Drbg::from_seed(b"dh info");
        let alice = EphemeralSecret::generate(&mut rng);
        let bob = EphemeralSecret::generate(&mut rng);
        let b_pub = bob.public_share();
        let a_pub = alice.public_share();
        let k1 = alice.agree(&b_pub, b"t1").unwrap();
        let k2 = bob.agree(&a_pub, b"t2").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn mitm_key_differs() {
        // An attacker substituting its own share gets a different key than
        // the honest peer would have derived.
        let mut rng = Drbg::from_seed(b"dh mitm");
        let alice = EphemeralSecret::generate(&mut rng);
        let bob = EphemeralSecret::generate(&mut rng);
        let mallory = EphemeralSecret::generate(&mut rng);
        let a_pub = alice.public_share();
        let m_pub = mallory.public_share();
        let k_alice_mallory = alice.agree(&m_pub, b"t").unwrap();
        let k_bob_alice = bob.agree(&a_pub, b"t").unwrap();
        assert_ne!(k_alice_mallory, k_bob_alice);
    }

    #[test]
    fn degenerate_share_rejected() {
        let mut rng = Drbg::from_seed(b"dh degenerate");
        let alice = EphemeralSecret::generate(&mut rng);
        let zero = PublicShare([0u8; 32]);
        assert_eq!(alice.agree(&zero, b"t"), Err(CryptoError::InvalidEncoding));
    }

    #[test]
    fn fresh_secrets_give_fresh_keys() {
        let mut rng = Drbg::from_seed(b"dh fresh");
        let bob = EphemeralSecret::generate(&mut rng);
        let b_pub = bob.public_share();
        let a1 = EphemeralSecret::generate(&mut rng);
        let a2 = EphemeralSecret::generate(&mut rng);
        let k1 = a1.agree(&b_pub, b"t").unwrap();
        let k2 = a2.agree(&b_pub, b"t").unwrap();
        assert_ne!(k1, k2);
    }
}
