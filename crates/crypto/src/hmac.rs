//! HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF (RFC 5869).
//!
//! HMAC is the integrity workhorse of the simulation: VPFS uses it for file
//! authentication, the secure channel uses it for record tags, and the TPM /
//! SGX models use HKDF to derive sealing and report keys from hardware root
//! secrets.

use crate::sha256::Sha256;
use crate::{ct_eq, CryptoError};

const BLOCK: usize = 64;

/// Incremental HMAC-SHA256.
///
/// ```
/// use lateral_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag).is_ok());
/// assert!(HmacSha256::verify(b"key", b"tampered", &tag).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&crate::sha256::sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; 32] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies that `tag` authenticates `data` under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not match.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> Result<(), CryptoError> {
        if ct_eq(&Self::mac(key, data), tag) {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: derives `out.len()` bytes from `prk` bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` output bytes are requested, per RFC 5869.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0;
    while written < out.len() {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (out.len() - written).min(32);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: full HKDF (extract + expand) producing a 32-byte key.
///
/// ```
/// let k1 = lateral_crypto::hmac::hkdf(b"salt", b"secret", b"channel key");
/// let k2 = lateral_crypto::hmac::hkdf(b"salt", b"secret", b"record key");
/// assert_ne!(k1, k2);
/// ```
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let prk = hkdf_extract(salt, ikm);
    let mut out = [0u8; 32];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        // RFC 4231 test case 1: key = 0x0b * 20, data = "Hi There".
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        // key = "Jefe", data = "what do ya want for nothing?".
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let key = vec![0xaau8; 100];
        // Must equal HMAC with the hashed key.
        let hashed = crate::sha256::sha256(&key);
        assert_eq!(
            HmacSha256::mac(&key, b"data"),
            HmacSha256::mac(&hashed, b"data")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"part one part two"));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = HmacSha256::mac(b"key a", b"msg");
        assert_eq!(
            HmacSha256::verify(b"key b", b"msg", &tag),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn hkdf_output_is_domain_separated() {
        let a = hkdf(b"s", b"ikm", b"a");
        let b = hkdf(b"s", b"ikm", b"b");
        assert_ne!(a, b);
    }

    #[test]
    fn hkdf_expand_long_output_is_prefix_consistent() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut long = [0u8; 100];
        hkdf_expand(&prk, b"info", &mut long);
        let mut short = [0u8; 32];
        hkdf_expand(&prk, b"info", &mut short);
        assert_eq!(&long[..32], &short[..]);
    }
}
