//! Deterministic, dependency-free cryptographic primitives for the `lateral`
//! trusted-component simulation.
//!
//! The paper ("Lateral Thinking for Trustworthy Apps", ICDCS 2017) leans on
//! cryptography everywhere: TPM quotes, SGX reports, TrustZone device keys,
//! VPFS encryption and integrity, TLS-style secure channels, and attestation
//! across untrusted networks. No external crypto crates are available in
//! this environment, so this crate implements the needed primitives from
//! scratch:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), the workhorse digest used for
//!   measurements (PCR extends, MRENCLAVE) and as an HMAC core.
//! * [`hmac`] — HMAC-SHA256 and HKDF (RFC 5869) for MACs and key derivation.
//! * [`chacha`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`aead`] — authenticated encryption composed as encrypt-then-MAC
//!   (ChaCha20 + HMAC-SHA256).
//! * [`group`] — arithmetic in the multiplicative group modulo
//!   p = 2^255 − 19, used for Diffie–Hellman and Schnorr signatures.
//! * [`sign`] — Schnorr signatures ([`sign::SigningKey`],
//!   [`sign::VerifyingKey`]).
//! * [`dh`] — finite-field Diffie–Hellman key agreement.
//! * [`rng`] — a seedable, forkable ChaCha20-based deterministic random bit
//!   generator so that every simulation run is reproducible.
//!
//! # Security status
//!
//! These implementations are **simulation-grade**: the algorithms are real
//! (SHA-256 and HMAC match their test vectors; the Schnorr scheme is sound
//! over the chosen group), but none of the code is constant-time audited,
//! side-channel hardened, or reviewed for production use. Within the
//! simulation this is exactly what is needed — adversarial components run
//! inside the same process and are bound by the same rules — but **do not
//! reuse this crate as a real cryptographic library**.
//!
//! # Example
//!
//! ```
//! use lateral_crypto::{rng::Drbg, sign::SigningKey};
//!
//! # fn main() -> Result<(), lateral_crypto::CryptoError> {
//! let mut rng = Drbg::from_seed(b"example seed");
//! let key = SigningKey::generate(&mut rng);
//! let sig = key.sign(b"attestation evidence");
//! key.verifying_key().verify(b"attestation evidence", &sig)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha;
pub mod dh;
pub mod group;
pub mod hmac;
pub mod rng;
pub mod sha256;
pub mod sign;

use std::error::Error;
use std::fmt;

/// A 256-bit digest value.
///
/// Used pervasively as a *measurement*: PCR contents, enclave identities
/// (MRENCLAVE analogue), code identities in launch policies, and Merkle tree
/// nodes all carry this type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, the initial value of a TPM PCR.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the digest of `data` (convenience for [`sha256::sha256`]).
    ///
    /// ```
    /// use lateral_crypto::Digest;
    /// assert_ne!(Digest::of(b"a"), Digest::of(b"b"));
    /// ```
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256::sha256(data))
    }

    /// Returns the digest of the concatenation of all parts, with each part
    /// length-prefixed so distinct part boundaries yield distinct digests.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = sha256::Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// TPM-style extend: `new = H(old || data)`.
    #[must_use]
    pub fn extend(&self, data: &[u8]) -> Digest {
        let mut h = sha256::Sha256::new();
        h.update(&self.0);
        h.update(data);
        Digest(h.finalize())
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns a short hex prefix, handy for log lines and display.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Returns the full lowercase hex encoding.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A MAC or signature failed verification.
    VerificationFailed,
    /// Ciphertext is too short to contain the required tag or nonce.
    TruncatedCiphertext,
    /// An encoded group element or scalar was out of range.
    InvalidEncoding,
    /// A key had the wrong length for the requested operation.
    InvalidKeyLength {
        /// Length the operation required.
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::TruncatedCiphertext => write!(f, "ciphertext too short"),
            CryptoError::InvalidEncoding => write!(f, "invalid encoding of group element"),
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(f, "invalid key length: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CryptoError {}

/// Compares two byte slices without early exit on mismatch.
///
/// Returns `true` when the slices have equal length and contents. In a real
/// implementation this prevents remote timing attacks on MAC comparison; in
/// the simulation it documents the idiom.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_differs_by_input() {
        assert_ne!(Digest::of(b"x"), Digest::of(b"y"));
        assert_eq!(Digest::of(b"x"), Digest::of(b"x"));
    }

    #[test]
    fn digest_of_parts_respects_boundaries() {
        // ("ab","c") and ("a","bc") must hash differently.
        let d1 = Digest::of_parts(&[b"ab", b"c"]);
        let d2 = Digest::of_parts(&[b"a", b"bc"]);
        assert_ne!(d1, d2);
    }

    #[test]
    fn extend_is_order_sensitive() {
        let base = Digest::ZERO;
        let ab = base.extend(b"a").extend(b"b");
        let ba = base.extend(b"b").extend(b"a");
        assert_ne!(ab, ba);
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"longer", b"long"));
    }

    #[test]
    fn digest_display_is_full_hex() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(format!("{d}"), d.to_hex());
    }
}
