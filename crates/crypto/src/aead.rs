//! Authenticated encryption with associated data.
//!
//! Composed as encrypt-then-MAC from ChaCha20 and HMAC-SHA256. The
//! encryption and MAC keys are derived from the AEAD key by HKDF, so a
//! single 32-byte key drives the whole construction. Wire format:
//!
//! ```text
//! ciphertext || tag(32)
//! ```
//!
//! The nonce is provided by the caller (channel sequence numbers, block
//! numbers in VPFS, …) and must never repeat under the same key — the usual
//! stream-cipher contract.

use crate::chacha;
use crate::hmac::{hkdf_expand, HmacSha256};
use crate::{ct_eq, CryptoError};

/// Length in bytes of the authentication tag appended to every ciphertext.
pub const TAG_LEN: usize = 32;

/// An AEAD cipher instance bound to one 32-byte key.
///
/// ```
/// use lateral_crypto::aead::Aead;
///
/// # fn main() -> Result<(), lateral_crypto::CryptoError> {
/// let aead = Aead::new(&[0x42; 32]);
/// let boxed = aead.seal(1, b"header", b"secret reading");
/// let plain = aead.open(1, b"header", &boxed)?;
/// assert_eq!(plain, b"secret reading");
/// assert!(aead.open(2, b"header", &boxed).is_err()); // wrong nonce
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Aead {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl std::fmt::Debug for Aead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aead(..)")
    }
}

impl Aead {
    /// Creates an AEAD instance from a 32-byte master key.
    pub fn new(key: &[u8; 32]) -> Aead {
        let mut enc_key = [0u8; 32];
        let mut mac_key = [0u8; 32];
        hkdf_expand(key, b"lateral.aead.enc", &mut enc_key);
        hkdf_expand(key, b"lateral.aead.mac", &mut mac_key);
        Aead { enc_key, mac_key }
    }

    fn nonce_bytes(nonce: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&nonce.to_le_bytes());
        n
    }

    fn tag(&self, nonce: u64, aad: &[u8], ciphertext: &[u8]) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&nonce.to_le_bytes());
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(aad);
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.update(ciphertext);
        mac.finalize()
    }

    /// Encrypts and authenticates `plaintext`, binding `aad` into the tag.
    ///
    /// The returned vector is `plaintext.len() + TAG_LEN` bytes.
    pub fn seal(&self, nonce: u64, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha::xor_stream(&self.enc_key, 0, &Self::nonce_bytes(nonce), &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a sealed box produced by [`Aead::seal`].
    ///
    /// # Errors
    ///
    /// * [`CryptoError::TruncatedCiphertext`] if `boxed` is shorter than the
    ///   tag.
    /// * [`CryptoError::VerificationFailed`] if the tag does not match
    ///   (wrong key, wrong nonce, wrong AAD, or tampered ciphertext).
    pub fn open(&self, nonce: u64, aad: &[u8], boxed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if boxed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext);
        }
        let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut out = ciphertext.to_vec();
        chacha::xor_stream(&self.enc_key, 0, &Self::nonce_bytes(nonce), &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let aead = Aead::new(&[1u8; 32]);
        let boxed = aead.seal(7, b"aad", b"hello");
        assert_eq!(aead.open(7, b"aad", &boxed).unwrap(), b"hello");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let aead = Aead::new(&[1u8; 32]);
        let boxed = aead.seal(0, b"", b"");
        assert_eq!(boxed.len(), TAG_LEN);
        assert_eq!(aead.open(0, b"", &boxed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn tamper_detection() {
        let aead = Aead::new(&[1u8; 32]);
        let mut boxed = aead.seal(7, b"aad", b"hello world");
        boxed[0] ^= 0x01;
        assert_eq!(
            aead.open(7, b"aad", &boxed),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn tag_tamper_detection() {
        let aead = Aead::new(&[1u8; 32]);
        let mut boxed = aead.seal(7, b"aad", b"hello world");
        let last = boxed.len() - 1;
        boxed[last] ^= 0x80;
        assert!(aead.open(7, b"aad", &boxed).is_err());
    }

    #[test]
    fn aad_is_bound() {
        let aead = Aead::new(&[1u8; 32]);
        let boxed = aead.seal(7, b"context a", b"payload");
        assert!(aead.open(7, b"context b", &boxed).is_err());
    }

    #[test]
    fn nonce_is_bound() {
        let aead = Aead::new(&[1u8; 32]);
        let boxed = aead.seal(7, b"aad", b"payload");
        assert!(aead.open(8, b"aad", &boxed).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let a = Aead::new(&[1u8; 32]);
        let b = Aead::new(&[2u8; 32]);
        let boxed = a.seal(7, b"aad", b"payload");
        assert!(b.open(7, b"aad", &boxed).is_err());
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let aead = Aead::new(&[1u8; 32]);
        assert_eq!(
            aead.open(0, b"", &[0u8; TAG_LEN - 1]),
            Err(CryptoError::TruncatedCiphertext)
        );
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let aead = Aead::new(&[1u8; 32]);
        let boxed = aead.seal(3, b"", b"aaaaaaaaaaaaaaaa");
        assert!(!boxed.windows(4).any(|w| w == b"aaaa"));
    }
}
