//! Schnorr signatures over the group of [`crate::group`].
//!
//! These back every attestation statement in the simulation: TPM quotes,
//! the SGX quoting enclave, TrustZone device identity, secure-boot image
//! signatures, and certificate chains in the secure-channel handshake.
//!
//! The scheme is textbook Schnorr with deterministic nonces (an RFC 6979
//! style derivation from the secret key and message, so signing never needs
//! an RNG and cannot be broken by nonce reuse):
//!
//! ```text
//! keygen:  x ← random scalar,  y = g^x
//! sign m:  k = H2S(x, m),  r = g^k,  e = H2S(r ‖ y ‖ m),  s = k + e·x
//! verify:  g^s == r · y^e   with e recomputed from (r, y, m)
//! ```

use crate::group::{GroupElement, Scalar};
use crate::rng::Drbg;
use crate::sha256::Sha256;
use crate::CryptoError;

/// Length in bytes of a serialized [`Signature`].
pub const SIGNATURE_LEN: usize = 64;
/// Length in bytes of a serialized [`VerifyingKey`].
pub const VERIFYING_KEY_LEN: usize = 32;

/// Derives a scalar from a domain-separated hash of the given parts.
fn hash_to_scalar(domain: &[u8], parts: &[&[u8]]) -> Scalar {
    let mut h1 = Sha256::new();
    h1.update(domain);
    h1.update(&[0x01]);
    let mut h2 = Sha256::new();
    h2.update(domain);
    h2.update(&[0x02]);
    for p in parts {
        let len = (p.len() as u64).to_le_bytes();
        h1.update(&len);
        h1.update(p);
        h2.update(&len);
        h2.update(p);
    }
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(&h1.finalize());
    wide[32..].copy_from_slice(&h2.finalize());
    Scalar::from_hash_wide(&wide)
}

/// A Schnorr signature `(r, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    r: GroupElement,
    s: Scalar,
}

impl Signature {
    /// Serializes to 64 bytes (`r ‖ s`).
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.r.to_bytes());
        out[32..].copy_from_slice(&self.s.to_bytes());
        out
    }

    /// Deserializes a signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] when either component is
    /// out of range.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Result<Signature, CryptoError> {
        let r = GroupElement::from_bytes(bytes[..32].try_into().expect("32 bytes"))?;
        let s = Scalar::from_bytes(bytes[32..].try_into().expect("32 bytes"))?;
        Ok(Signature { r, s })
    }
}

/// A Schnorr verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(GroupElement);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_bytes();
        write!(
            f,
            "VerifyingKey({:02x}{:02x}{:02x}{:02x}…)",
            b[0], b[1], b[2], b[3]
        )
    }
}

impl VerifyingKey {
    /// Verifies `sig` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] when the signature is
    /// invalid for this key and message.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        let e = hash_to_scalar(
            b"lateral.schnorr.challenge",
            &[&sig.r.to_bytes(), &self.0.to_bytes(), message],
        );
        let lhs = GroupElement::generator_exp(&sig.s);
        let rhs = sig.r.mul(&self.0.exp(&e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }

    /// Serializes to 32 bytes.
    pub fn to_bytes(&self) -> [u8; VERIFYING_KEY_LEN] {
        self.0.to_bytes()
    }

    /// Deserializes a verifying key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] for malformed encodings.
    pub fn from_bytes(bytes: &[u8; VERIFYING_KEY_LEN]) -> Result<VerifyingKey, CryptoError> {
        GroupElement::from_bytes(bytes).map(VerifyingKey)
    }
}

/// A Schnorr signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    x: Scalar,
    y: GroupElement,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(pk={:?})", VerifyingKey(self.y))
    }
}

impl SigningKey {
    /// Generates a fresh signing key.
    pub fn generate(rng: &mut Drbg) -> SigningKey {
        loop {
            let x = Scalar::random(rng);
            if !x.is_zero() {
                let y = GroupElement::generator_exp(&x);
                return SigningKey { x, y };
            }
        }
    }

    /// Deterministically derives a signing key from seed bytes.
    ///
    /// Used to model keys *fused into hardware*: the same simulated device
    /// always has the same identity key.
    pub fn from_seed(seed: &[u8]) -> SigningKey {
        let x = hash_to_scalar(b"lateral.schnorr.keyseed", &[seed]);
        let x = if x.is_zero() { Scalar::ONE } else { x };
        let y = GroupElement::generator_exp(&x);
        SigningKey { x, y }
    }

    /// Returns the corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(self.y)
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let k = hash_to_scalar(b"lateral.schnorr.nonce", &[&self.x.to_bytes(), message]);
        let k = if k.is_zero() { Scalar::ONE } else { k };
        let r = GroupElement::generator_exp(&k);
        let e = hash_to_scalar(
            b"lateral.schnorr.challenge",
            &[&r.to_bytes(), &self.y.to_bytes(), message],
        );
        let s = k.add(&e.mul(&self.x));
        Signature { r, s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SigningKey {
        let mut rng = Drbg::from_seed(b"sign tests");
        SigningKey::generate(&mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"measured boot log");
        assert!(sk
            .verifying_key()
            .verify(b"measured boot log", &sig)
            .is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let sk = key();
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.verifying_key().verify(b"forged", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sk1 = key();
        let mut rng = Drbg::from_seed(b"other key");
        let sk2 = SigningKey::generate(&mut rng);
        let sig = sk1.sign(b"msg");
        assert!(sk2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"serialize me");
        let restored = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(restored, sig);
        assert!(sk
            .verifying_key()
            .verify(b"serialize me", &restored)
            .is_ok());
    }

    #[test]
    fn verifying_key_serialization_roundtrip() {
        let sk = key();
        let vk = sk.verifying_key();
        let restored = VerifyingKey::from_bytes(&vk.to_bytes()).unwrap();
        assert_eq!(restored, vk);
    }

    #[test]
    fn deterministic_signing() {
        let sk = key();
        assert_eq!(sk.sign(b"same"), sk.sign(b"same"));
        assert_ne!(sk.sign(b"same"), sk.sign(b"different"));
    }

    #[test]
    fn seeded_key_is_stable() {
        let a = SigningKey::from_seed(b"device fuse 001");
        let b = SigningKey::from_seed(b"device fuse 001");
        assert_eq!(a.verifying_key(), b.verifying_key());
        let c = SigningKey::from_seed(b"device fuse 002");
        assert_ne!(a.verifying_key(), c.verifying_key());
    }

    #[test]
    fn tampered_signature_bytes_rejected() {
        let sk = key();
        let sig = sk.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[40] ^= 0x01; // perturb s
                           // An out-of-range encoding is also a valid rejection.
        if let Ok(tampered) = Signature::from_bytes(&bytes) {
            assert!(sk.verifying_key().verify(b"msg", &tampered).is_err());
        }
    }

    #[test]
    fn signature_not_valid_for_other_context() {
        // A signature over m1 must not verify as a signature over m2 even
        // when m2 contains m1 as a prefix (length-prefixed hashing).
        let sk = key();
        let sig = sk.sign(b"abc");
        assert!(sk.verifying_key().verify(b"abcdef", &sig).is_err());
    }
}
