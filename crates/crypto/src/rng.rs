//! A deterministic random bit generator (DRBG) built on ChaCha20.
//!
//! Everything random in the simulation — key generation, nonces, workload
//! generators, adversary choices — flows from a [`Drbg`] seeded at the start
//! of a run, making every experiment reproducible bit-for-bit. `Drbg`
//! supports *forking*: deriving an independent child generator from a label,
//! so subsystems get decorrelated streams without sharing mutable state.

use crate::chacha;
use crate::sha256::Sha256;

/// Deterministic ChaCha20-based random bit generator.
///
/// ```
/// use lateral_crypto::rng::Drbg;
///
/// let mut a = Drbg::from_seed(b"run 1");
/// let mut b = Drbg::from_seed(b"run 1");
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
///
/// let mut child = a.fork("tpm");
/// assert_ne!(child.next_u64(), b.next_u64()); // decorrelated
/// ```
#[derive(Clone)]
pub struct Drbg {
    key: [u8; 32],
    counter: u64,
    buf: [u8; 64],
    buf_used: usize,
}

impl std::fmt::Debug for Drbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Drbg(counter={})", self.counter)
    }
}

impl Drbg {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: &[u8]) -> Drbg {
        let mut h = Sha256::new();
        h.update(b"lateral.drbg.seed");
        h.update(seed);
        Drbg {
            key: h.finalize(),
            counter: 0,
            buf: [0u8; 64],
            buf_used: 64,
        }
    }

    /// Derives an independent child generator bound to `label`.
    ///
    /// Forking advances this generator, so repeated forks with the same
    /// label yield different children.
    pub fn fork(&mut self, label: &str) -> Drbg {
        let mut h = Sha256::new();
        h.update(b"lateral.drbg.fork");
        h.update(&self.key);
        h.update(&self.counter.to_le_bytes());
        h.update(label.as_bytes());
        self.counter = self.counter.wrapping_add(1);
        Drbg {
            key: h.finalize(),
            counter: 0,
            buf: [0u8; 64],
            buf_used: 64,
        }
    }

    fn refill(&mut self) {
        let nonce = [0u8; 12];
        // Use the 32-bit block counter from the 64-bit stream position; key
        // is rotated every 2^32 blocks to avoid counter reuse.
        let block_no = (self.counter & 0xffff_ffff) as u32;
        if block_no == 0 && self.counter != 0 {
            let mut h = Sha256::new();
            h.update(b"lateral.drbg.rotate");
            h.update(&self.key);
            self.key = h.finalize();
        }
        self.buf = chacha::block(&self.key, block_no, &nonce);
        self.counter = self.counter.wrapping_add(1);
        self.buf_used = 0;
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            if self.buf_used == 64 {
                self.refill();
            }
            *b = self.buf[self.buf_used];
            self.buf_used += 1;
        }
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Returns a random value in `0..bound` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn gen_bool(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        self.gen_range(den) < num
    }

    /// Returns a fresh random 32-byte array (key material).
    pub fn gen_key(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill_bytes(&mut k);
        k
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.gen_range(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Drbg::from_seed(b"seed");
        let mut b = Drbg::from_seed(b"seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Drbg::from_seed(b"seed 1");
        let mut b = Drbg::from_seed(b"seed 2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = Drbg::from_seed(b"p");
        let mut parent2 = Drbg::from_seed(b"p");
        let mut c1 = parent1.fork("x");
        let mut c2 = parent2.fork("x");
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork("x"); // second fork, same label
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Drbg::from_seed(b"bound");
        for _ in 0..1000 {
            assert!(r.gen_range(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Drbg::from_seed(b"coverage");
        let seen: HashSet<u64> = (0..200).map(|_| r.gen_range(8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn fill_bytes_across_block_boundary() {
        let mut r = Drbg::from_seed(b"blocks");
        let mut big = [0u8; 200];
        r.fill_bytes(&mut big);
        // Compare with byte-at-a-time generation.
        let mut r2 = Drbg::from_seed(b"blocks");
        let mut single = [0u8; 200];
        for b in single.iter_mut() {
            let mut one = [0u8; 1];
            r2.fill_bytes(&mut one);
            *b = one[0];
        }
        assert_eq!(big, single);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Drbg::from_seed(b"shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Drbg::from_seed(b"bool");
        assert!(!r.gen_bool(0, 10));
        assert!(r.gen_bool(10, 10));
    }

    #[test]
    fn choose_empty_returns_none() {
        let mut r = Drbg::from_seed(b"choose");
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }
}
