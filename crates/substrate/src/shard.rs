//! The sharded multi-core fabric: N per-shard engines behind one
//! [`Substrate`] surface.
//!
//! A [`ShardFabric`] partitions protection domains across N shards,
//! each owning its *own* fabric engine — its own [`TraceEvent`] ring,
//! interned-label metrics registry, and clock epoch. Placement is
//! deterministic: a manifest pin ([`ShardFabric::pin`]) wins, then a
//! sticky by-name assignment (so a supervisor respawn lands on the same
//! shard), then round-robin over spawn order. Intra-shard invocations
//! delegate straight to the owning shard's engine and keep today's
//! allocation-free path byte for byte; cross-shard invocations are an
//! explicit new crossing class ([`CrossingKind::Shard`]) with its own
//! cost-ladder entry ([`xshard_cost`]), dispatched through a lazily
//! spawned per-shard ingress domain and charged on the *caller's* shard
//! clock.
//!
//! Shard traces and metrics merge deterministically: events order by
//! `(epoch, shard, seq)` where epochs are explicit global barriers
//! ([`ShardFabric::advance_epoch`]), metric families merge by canonical
//! name ([`MetricsRegistry::absorb`]), and span trees concatenate in
//! shard order ([`lateral_telemetry::merged_tree_digest`]). With N=1
//! the merge degenerates to the single engine's own encoding, so a
//! one-shard fabric is byte-identical to running the inner substrate
//! directly — pinned by a test below.
//!
//! For running shards on real OS threads, [`shard_channels`] builds
//! bounded per-shard inboxes ([`ShardInbox`] / [`ShardPost`]) over
//! `std::sync::mpsc`, so cross-shard calls become blocking bounded
//! round trips with backpressure — no new dependencies.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc;

use lateral_crypto::sign::VerifyingKey;
use lateral_crypto::Digest;
use lateral_telemetry::{outcome as span_outcome, LabelId, MetricsRegistry};

use crate::attacker::SubstrateProfile;
use crate::attest::AttestationEvidence;
use crate::cap::{Badge, ChannelCap};
use crate::component::Component;
use crate::fabric::{CrossingKind, TraceEvent, TraceOutcome};
use crate::substrate::{DomainSpec, Substrate};
use crate::testkit::Echo;
use crate::{DomainId, SubstrateError};

/// Identifies one shard (one engine) within a [`ShardFabric`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// First capability slot of the cross-shard range. Slots below this are
/// the owning shard engine's own slots passed through unchanged; slots
/// at or above designate entries in the fabric-level cross-shard grant
/// table. The split keeps intra-shard caps bit-identical to the
/// single-engine fabric (the N=1 byte-identity guarantee).
pub const XSHARD_SLOT_BASE: u32 = 1 << 31;

/// Base cycle cost of a cross-shard hop, before the per-byte copy term.
/// Sits above every intra-substrate software crossing (local = 5 + b/64)
/// and below the heavyweight enclave-class transitions — a core-to-core
/// bounded-inbox round trip, not a privilege transition.
pub const XSHARD_BASE_COST: u64 = 250;

/// Cycle cost of a cross-shard invocation carrying `bytes` of payload.
/// A property of the shard runtime, not of the isolation mechanism
/// below it, so it is identical on every backend — which keeps merged
/// traces backend-invariant in the digests E14 checks.
#[must_use]
pub fn xshard_cost(bytes: usize) -> u64 {
    XSHARD_BASE_COST + bytes as u64 / 32
}

/// Where a global domain lives: which shard, and under which id in that
/// shard's local id space.
#[derive(Clone, Copy, Debug)]
struct Route {
    shard: u32,
    local: DomainId,
}

/// One cross-shard channel grant. The `inner` capability designates the
/// target from the target shard's ingress domain; the caller never
/// holds a raw capability into a foreign shard.
#[derive(Clone, Copy, Debug)]
struct XGrant {
    from: DomainId,
    to: DomainId,
    badge: Badge,
    nonce: u64,
    inner: ChannelCap,
    /// Caller-shard interned `xshard invoke {target}` span label,
    /// cached at grant time so the invoke hot path stays allocation
    /// free.
    label: Option<LabelId>,
    revoked: bool,
}

/// One merged trace entry: a shard-local [`TraceEvent`] tagged with the
/// global epoch it was recorded in and the shard that recorded it — the
/// sort key of the deterministic merge.
#[derive(Clone, Debug)]
pub struct MergedEvent {
    /// Global epoch ([`ShardFabric::advance_epoch`] barriers) the event
    /// falls in.
    pub epoch: u64,
    /// The shard whose engine recorded the event.
    pub shard: ShardId,
    /// The event, exactly as the shard engine recorded it (sequence
    /// numbers are shard-local).
    pub event: TraceEvent,
}

/// N per-shard engines behind one [`Substrate`] surface.
///
/// Surface-level domain ids are global (dense, spawn-ordered, never
/// reused); the fabric routes each operation to the owning shard and
/// translates ids at the boundary. Surface-level `profile()`, `now()`,
/// `fabric_ref()`, and `telemetry_ref()` anchor on shard 0 — exact for
/// N=1 and the fault-plan/supervision anchor for N>1.
pub struct ShardFabric {
    shards: Vec<Box<dyn Substrate>>,
    /// Global id → route; index is the global id, `None` after destroy.
    routes: Vec<Option<Route>>,
    /// Sticky name → shard assignment (respawns stay shard-local).
    by_name: BTreeMap<String, u32>,
    /// Manifest pins (override sticky and round-robin).
    pins: BTreeMap<String, u32>,
    next_shard: u32,
    xgrants: Vec<XGrant>,
    /// Lazily spawned per-shard ingress domain (local id), the stand-in
    /// caller for inbound cross-shard dispatches.
    ingress: Vec<Option<DomainId>>,
    epoch: u64,
    /// Per-shard epoch watermarks: `marks[s][e]` is the first sequence
    /// number belonging to epoch `e` on shard `s`.
    marks: Vec<Vec<u64>>,
}

impl ShardFabric {
    /// Builds a shard fabric over `shards` (one engine per shard).
    /// Shard ids follow vector order.
    ///
    /// # Panics
    ///
    /// If `shards` is empty.
    #[must_use]
    pub fn new(shards: Vec<Box<dyn Substrate>>) -> ShardFabric {
        assert!(
            !shards.is_empty(),
            "a shard fabric needs at least one shard"
        );
        let n = shards.len();
        ShardFabric {
            shards,
            routes: Vec::new(),
            by_name: BTreeMap::new(),
            pins: BTreeMap::new(),
            next_shard: 0,
            xgrants: Vec::new(),
            ingress: vec![None; n],
            epoch: 0,
            marks: vec![vec![0]; n],
        }
    }

    /// Manifest hint: domains spawned under `name` are placed on
    /// `shard`, overriding sticky and round-robin placement.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn pin(&mut self, name: &str, shard: ShardId) {
        assert!(
            (shard.0 as usize) < self.shards.len(),
            "pin target {shard} out of range"
        );
        self.pins.insert(name.to_string(), shard.0);
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current global epoch (starts at 0).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Global epoch barrier: events recorded after this call sort after
    /// every event recorded before it, on every shard — the explicit
    /// cross-shard ordering points of the deterministic merge.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        for s in 0..self.shards.len() {
            let watermark = self.shards[s]
                .fabric_ref()
                .map_or(0, |f| f.events_recorded());
            self.marks[s].push(watermark);
        }
    }

    /// The shard hosting `domain`, or `None` if it never existed or was
    /// destroyed.
    #[must_use]
    pub fn shard_of(&self, domain: DomainId) -> Option<ShardId> {
        self.routes
            .get(domain.0 as usize)
            .copied()
            .flatten()
            .map(|r| ShardId(r.shard))
    }

    /// Read access to one shard's substrate.
    ///
    /// # Panics
    ///
    /// If `id` is out of range.
    #[must_use]
    pub fn shard(&self, id: ShardId) -> &dyn Substrate {
        self.shards[id.0 as usize].as_ref()
    }

    /// Write access to one shard's substrate (fault plans, telemetry).
    ///
    /// # Panics
    ///
    /// If `id` is out of range.
    pub fn shard_mut(&mut self, id: ShardId) -> &mut dyn Substrate {
        self.shards[id.0 as usize].as_mut()
    }

    /// The deterministic trace merge: every retained event of every
    /// shard, ordered by `(epoch, shard, seq)`. Epochs are the explicit
    /// global barriers; within an epoch shards concatenate in id order;
    /// within a shard the engine's own sequence order holds. The order
    /// is a pure function of the per-shard event streams — independent
    /// of how shard executions interleaved in wall-clock time.
    #[must_use]
    pub fn merged_trace(&self) -> Vec<MergedEvent> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(fabric) = shard.fabric_ref() {
                for event in fabric.trace() {
                    out.push(MergedEvent {
                        epoch: epoch_of(&self.marks[s], event.seq),
                        shard: ShardId(s as u32),
                        event: event.clone(),
                    });
                }
            }
        }
        out.sort_by_key(|m| (m.epoch, m.shard, m.event.seq));
        out
    }

    /// Canonical byte serialization of the merged trace — the sharded
    /// twin of [`crate::fabric::Fabric::trace_bytes`], and byte-equal
    /// to it for N=1. Two identical runs must produce identical output.
    #[must_use]
    pub fn merged_trace_bytes(&self) -> Vec<u8> {
        let merged = self.merged_trace();
        let mut out = Vec::with_capacity(merged.len() * 50);
        for m in &merged {
            m.event.encode_into(&mut out);
        }
        out
    }

    /// Backend-invariant digest of the merged trace: folds in the merge
    /// key and the who/what/outcome of every event while excluding the
    /// clock readings, crossing kinds, and costs that legitimately
    /// differ between backends — the digest E14 asserts is identical
    /// across all six.
    #[must_use]
    pub fn merged_invariant_digest(&self) -> Digest {
        let mut canon = Vec::new();
        for m in self.merged_trace() {
            canon.extend_from_slice(&m.epoch.to_le_bytes());
            canon.extend_from_slice(&m.shard.0.to_le_bytes());
            canon.extend_from_slice(&m.event.seq.to_le_bytes());
            canon.extend_from_slice(&m.event.caller.0.to_le_bytes());
            canon.extend_from_slice(&m.event.callee.0.to_le_bytes());
            canon.extend_from_slice(&m.event.badge.0.to_le_bytes());
            canon.extend_from_slice(&m.event.bytes.to_le_bytes());
            canon.push(m.event.outcome.code());
            canon.push(0x1e);
        }
        Digest::of_parts(&[b"lateral.shard.merged-trace", &canon])
    }

    /// All shard metric registries merged by canonical family name
    /// (counters add, histograms merge bucket-wise) — registration
    /// order on any shard does not matter.
    #[must_use]
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for shard in &self.shards {
            if let Some(telemetry) = shard.telemetry_ref() {
                merged.absorb(telemetry.metrics());
            }
        }
        merged
    }

    /// Canonical digest of every shard's span-tree shape, concatenated
    /// in shard order. For N=1 this equals the inner collector's own
    /// [`lateral_telemetry::Telemetry::tree_digest`].
    #[must_use]
    pub fn merged_tree_digest(&self) -> Digest {
        lateral_telemetry::merged_tree_digest(self.shards.iter().filter_map(|s| s.telemetry_ref()))
    }

    /// Every shard's crossing profile merged edge-wise (see
    /// [`lateral_telemetry::profile::CrossingProfile::absorb`]). The
    /// merge is order-invariant, so this is a well-defined fleet-wide
    /// view of where the crossing ticks went; cross-shard hops appear
    /// as the `xshard` kind on the caller's shard.
    #[must_use]
    pub fn merged_crossing_profile(&self) -> lateral_telemetry::profile::CrossingProfile {
        let mut merged = lateral_telemetry::profile::CrossingProfile::new();
        for shard in &self.shards {
            if let Some(p) = shard.crossing_profile() {
                merged.absorb(&p);
            }
        }
        merged
    }

    fn route(&self, id: DomainId) -> Result<Route, SubstrateError> {
        self.routes
            .get(id.0 as usize)
            .copied()
            .flatten()
            .ok_or(SubstrateError::NoSuchDomain(id))
    }

    /// Deterministic placement: pin, then sticky name, then round-robin
    /// over spawn order.
    fn place_shard(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.pins.get(name) {
            return s;
        }
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len() as u32;
        s
    }

    /// The shard's ingress domain, spawning it on first use. Spawned
    /// directly on the inner shard (no global id): it is shard runtime,
    /// not an application domain. Lazy so an N=1 fabric (which can
    /// never cross shards) spawns nothing extra — the byte-identity
    /// guarantee.
    fn ingress_domain(&mut self, shard: u32) -> Result<DomainId, SubstrateError> {
        if let Some(id) = self.ingress[shard as usize] {
            return Ok(id);
        }
        let id = self.shards[shard as usize]
            .spawn(DomainSpec::named("xshard-ingress"), Box::new(Echo))?;
        self.ingress[shard as usize] = Some(id);
        Ok(id)
    }

    /// Reverse route lookup: the global id of shard-local `local`.
    fn global_of(&self, shard: u32, local: DomainId) -> Option<DomainId> {
        self.routes.iter().enumerate().find_map(|(i, r)| {
            r.filter(|r| r.shard == shard && r.local == local)
                .map(|_| DomainId(i as u32))
        })
    }

    /// Maps shard-local domain ids inside an engine error back into the
    /// global id space (identity for N=1, where the spaces coincide).
    fn globalize(&self, shard: u32, e: SubstrateError) -> SubstrateError {
        let map = |l: DomainId| self.global_of(shard, l).unwrap_or(l);
        match e {
            SubstrateError::NoSuchDomain(d) => SubstrateError::NoSuchDomain(map(d)),
            SubstrateError::Reentrancy(d) => SubstrateError::Reentrancy(map(d)),
            SubstrateError::DomainCrashed(d) => SubstrateError::DomainCrashed(map(d)),
            other => other,
        }
    }

    fn note_denial_on(&mut self, r: Route) {
        if let Some(fabric) = self.shards[r.shard as usize].fabric_mut_ref() {
            fabric.note_denial(r.local);
        }
    }

    /// The cross-shard invocation path: validate the fabric-level
    /// grant, charge [`xshard_cost`] on the caller's shard clock, open
    /// the cached caller-side span, dispatch through the target shard's
    /// ingress, and record a [`CrossingKind::Shard`] event with full
    /// engine accounting on the caller's shard.
    fn invoke_cross(
        &mut self,
        r: Route,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        let idx = (cap.slot - XSHARD_SLOT_BASE) as usize;
        let grant = match self.xgrants.get(idx).copied() {
            None => {
                self.note_denial_on(r);
                return Err(SubstrateError::InvalidCapability(format!(
                    "empty cross-shard slot {}",
                    cap.slot
                )));
            }
            Some(g) if g.from != caller => {
                self.note_denial_on(r);
                return Err(SubstrateError::InvalidCapability(format!(
                    "{caller} presented a cross-shard capability owned by {}",
                    g.from
                )));
            }
            Some(g) if g.revoked || g.nonce != cap.nonce => {
                self.note_denial_on(r);
                return Err(SubstrateError::InvalidCapability(
                    "stale cross-shard capability (revoked)".into(),
                ));
            }
            Some(g) => g,
        };
        let Ok(rt) = self.route(grant.to) else {
            self.note_denial_on(r);
            return Err(SubstrateError::InvalidCapability(format!(
                "cross-shard target {} is gone",
                grant.to
            )));
        };
        // Fail-stop window, mirrored from the engine: a call into an
        // already-crashed remote domain is refused on the caller's
        // shard, with a zero-cost Crashed event and an instant span.
        let target_crashed = self.shards[rt.shard as usize]
            .fabric_ref()
            .is_some_and(|f| f.is_crashed(rt.local));
        if target_crashed {
            let at = self.shards[r.shard as usize].now();
            if let Some(fabric) = self.shards[r.shard as usize].fabric_mut_ref() {
                fabric.note_denial(r.local);
                let event = TraceEvent {
                    seq: fabric.next_seq(),
                    at,
                    caller: r.local,
                    callee: grant.to,
                    badge: grant.badge,
                    bytes: data.len() as u64,
                    crossing: CrossingKind::Shard,
                    cost: 0,
                    outcome: TraceOutcome::Crashed,
                };
                fabric.record_fault(event);
                if let Some(label) = grant.label {
                    fabric.telemetry_mut().instant_label(
                        label,
                        "fabric",
                        at,
                        span_outcome::CRASHED,
                    );
                }
            }
            return Err(SubstrateError::DomainCrashed(grant.to));
        }
        let cost = xshard_cost(data.len());
        self.shards[r.shard as usize].charge_cycles(cost);
        let at = self.shards[r.shard as usize].now();
        let span = match grant.label {
            Some(label) => self.shards[r.shard as usize]
                .telemetry_mut_ref()
                .map(|t| t.begin_span_label(label, "fabric", at)),
            None => None,
        };
        let ingress = self.ingress[rt.shard as usize].ok_or_else(|| {
            SubstrateError::Platform(format!("{} has no ingress domain", ShardId(rt.shard)))
        })?;
        let result = self.shards[rt.shard as usize].invoke(ingress, &grant.inner, data);
        let (outcome, reply_bytes, span_code) = match &result {
            Ok(reply) => (TraceOutcome::Ok, reply.len() as u64, span_outcome::OK),
            Err(SubstrateError::Reentrancy(_)) => {
                (TraceOutcome::Reentrancy, 0, span_outcome::REENTRANCY)
            }
            Err(SubstrateError::DomainCrashed(_)) => {
                (TraceOutcome::Crashed, 0, span_outcome::CRASHED)
            }
            Err(_) => (TraceOutcome::Failed, 0, span_outcome::FAILED),
        };
        let span_end = self.shards[r.shard as usize].now();
        if let Some(span) = span {
            if let Some(telemetry) = self.shards[r.shard as usize].telemetry_mut_ref() {
                telemetry.end_span(span, span_end, span_code);
            }
        }
        if let Some(fabric) = self.shards[r.shard as usize].fabric_mut_ref() {
            let event = TraceEvent {
                seq: fabric.next_seq(),
                at,
                caller: r.local,
                callee: grant.to,
                badge: grant.badge,
                bytes: data.len() as u64,
                crossing: CrossingKind::Shard,
                cost,
                outcome,
            };
            match outcome {
                TraceOutcome::Crashed => fabric.record_fault(event),
                TraceOutcome::Reentrancy => {
                    fabric.note_reentrancy(r.local);
                    fabric.record(event, cap.slot, reply_bytes);
                }
                _ => fabric.record(event, cap.slot, reply_bytes),
            }
        }
        // Remote-side errors carry target-shard-local ids; remap onto
        // the global target the caller named.
        result.map_err(|e| match e {
            SubstrateError::DomainCrashed(_) => SubstrateError::DomainCrashed(grant.to),
            SubstrateError::Reentrancy(_) => SubstrateError::Reentrancy(grant.to),
            other => other,
        })
    }
}

impl Substrate for ShardFabric {
    fn profile(&self) -> &SubstrateProfile {
        self.shards[0].profile()
    }

    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        let shard = self.place_shard(&spec.name);
        let name = spec.name.clone();
        let local = self.shards[shard as usize]
            .spawn(spec, component)
            .map_err(|e| self.globalize(shard, e))?;
        self.by_name.insert(name, shard);
        let gid = DomainId(self.routes.len() as u32);
        self.routes.push(Some(Route { shard, local }));
        Ok(gid)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .destroy(r.local)
            .map_err(|e| self.globalize(r.shard, e))?;
        self.routes[domain.0 as usize] = None;
        for g in &mut self.xgrants {
            if g.from == domain || g.to == domain {
                g.revoked = true;
            }
        }
        Ok(())
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        let rf = self.route(from)?;
        let rt = self.route(to)?;
        if rf.shard == rt.shard {
            let cap = self.shards[rf.shard as usize]
                .grant_channel(rf.local, rt.local, badge)
                .map_err(|e| self.globalize(rf.shard, e))?;
            return Ok(ChannelCap {
                owner: from,
                slot: cap.slot,
                nonce: cap.nonce,
            });
        }
        let ingress = self.ingress_domain(rt.shard)?;
        let inner = self.shards[rt.shard as usize]
            .grant_channel(ingress, rt.local, badge)
            .map_err(|e| self.globalize(rt.shard, e))?;
        let to_name = self.shards[rt.shard as usize]
            .domain_name(rt.local)
            .unwrap_or_else(|_| to.to_string());
        let label = self.shards[rf.shard as usize]
            .telemetry_mut_ref()
            .map(|t| t.intern(&format!("xshard invoke {to_name}")));
        let idx = self.xgrants.len();
        let nonce = idx as u64 + 1;
        self.xgrants.push(XGrant {
            from,
            to,
            badge,
            nonce,
            inner,
            label,
            revoked: false,
        });
        Ok(ChannelCap {
            owner: from,
            slot: XSHARD_SLOT_BASE + idx as u32,
            nonce,
        })
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        if cap.slot >= XSHARD_SLOT_BASE {
            self.route(cap.owner)?;
            let idx = (cap.slot - XSHARD_SLOT_BASE) as usize;
            let Some(grant) = self.xgrants.get(idx).copied() else {
                return Ok(());
            };
            if grant.from != cap.owner || grant.nonce != cap.nonce || grant.revoked {
                return Ok(());
            }
            self.xgrants[idx].revoked = true;
            if let Ok(rt) = self.route(grant.to) {
                let _ = self.shards[rt.shard as usize].revoke_channel(&grant.inner);
            }
            return Ok(());
        }
        let r = self.route(cap.owner)?;
        let inner = ChannelCap {
            owner: r.local,
            slot: cap.slot,
            nonce: cap.nonce,
        };
        self.shards[r.shard as usize]
            .revoke_channel(&inner)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        let r = self.route(caller)?;
        if cap.slot < XSHARD_SLOT_BASE {
            let inner = ChannelCap {
                owner: r.local,
                slot: cap.slot,
                nonce: cap.nonce,
            };
            return self.shards[r.shard as usize]
                .invoke(r.local, &inner, data)
                .map_err(|e| self.globalize(r.shard, e));
        }
        self.invoke_cross(r, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        let r = self.route(caller)?;
        if cap.slot < XSHARD_SLOT_BASE {
            let inner = ChannelCap {
                owner: r.local,
                slot: cap.slot,
                nonce: cap.nonce,
            };
            return self.shards[r.shard as usize]
                .invoke_batch(r.local, &inner, payloads)
                .map_err(|e| self.globalize(r.shard, e));
        }
        payloads
            .iter()
            .map(|data| self.invoke_cross(r, caller, cap, data))
            .collect()
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .measurement(r.local)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .domain_name(r.local)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .seal(r.local, data)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .unseal(r.local, sealed)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .attest(r.local, report_data)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        self.shards[0].platform_verifying_key()
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .mem_read(r.local, offset, len)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let r = self.route(domain)?;
        self.shards[r.shard as usize]
            .mem_write(r.local, offset, data)
            .map_err(|e| self.globalize(r.shard, e))
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        match self.route(domain) {
            Ok(r) => self.shards[r.shard as usize].rng_u64(r.local),
            Err(_) => self.shards[0].rng_u64(domain),
        }
    }

    fn now(&self) -> u64 {
        self.shards[0].now()
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.shards[0].charge_cycles(cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        let r = self.route(domain)?;
        let mut caps: Vec<ChannelCap> = self.shards[r.shard as usize]
            .list_caps(r.local)
            .map_err(|e| self.globalize(r.shard, e))?
            .into_iter()
            .map(|c| ChannelCap {
                owner: domain,
                slot: c.slot,
                nonce: c.nonce,
            })
            .collect();
        for (i, g) in self.xgrants.iter().enumerate() {
            if g.from == domain && !g.revoked {
                caps.push(ChannelCap {
                    owner: domain,
                    slot: XSHARD_SLOT_BASE + i as u32,
                    nonce: g.nonce,
                });
            }
        }
        Ok(caps)
    }

    fn fabric_ref(&self) -> Option<&crate::fabric::Fabric> {
        self.shards[0].fabric_ref()
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut crate::fabric::Fabric> {
        self.shards[0].fabric_mut_ref()
    }

    fn cost_model(&self) -> Option<crate::fabric::CrossingCostModel> {
        // The intra-shard entries are the anchor backend's; the
        // `xshard` row is the shard runtime's backend-invariant hop
        // cost.
        let mut m = self.shards[0].cost_model()?;
        m.set(crate::fabric::CrossingKind::Shard, XSHARD_BASE_COST, 1, 32);
        Some(m)
    }

    fn crossing_profile(&self) -> Option<lateral_telemetry::profile::CrossingProfile> {
        Some(self.merged_crossing_profile())
    }
}

/// Epoch of sequence number `seq` given a shard's epoch watermarks
/// (`marks[e]` = first sequence number of epoch `e`; `marks[0]` = 0).
fn epoch_of(marks: &[u64], seq: u64) -> u64 {
    (marks.partition_point(|&w| w <= seq) - 1) as u64
}

/// One cross-shard invocation posted into a shard's bounded inbox.
pub struct XShardCall {
    /// Target domain, in the receiving shard's local id space.
    pub target: DomainId,
    /// Request payload.
    pub payload: Vec<u8>,
    /// One-shot reply channel back to the posting shard.
    pub reply: mpsc::SyncSender<Result<Vec<u8>, SubstrateError>>,
}

/// The posting half of the bounded cross-shard inboxes: one clonable
/// handle holding a bounded sender per shard. Posting into a full inbox
/// blocks — bounded-queue backpressure, never unbounded buffering.
#[derive(Clone)]
pub struct ShardPost {
    senders: Vec<mpsc::SyncSender<XShardCall>>,
}

impl ShardPost {
    /// Number of shards this handle can post to.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Posts a call into shard `to`'s inbox and blocks for the reply —
    /// the synchronous cross-shard round trip of a threaded shard
    /// deployment.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Platform`] when the target shard's inbox has
    /// shut down; otherwise whatever the remote dispatch returned.
    pub fn call(
        &self,
        to: ShardId,
        target: DomainId,
        payload: Vec<u8>,
    ) -> Result<Vec<u8>, SubstrateError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.senders[to.0 as usize]
            .send(XShardCall {
                target,
                payload,
                reply: reply_tx,
            })
            .map_err(|_| SubstrateError::Platform(format!("{to} inbox is closed")))?;
        reply_rx
            .recv()
            .map_err(|_| SubstrateError::Platform(format!("{to} dropped the reply")))?
    }

    /// Posts a call into shard `to`'s inbox without blocking and returns
    /// the reply receiver. A full inbox is surfaced as a typed
    /// [`SubstrateError::Overloaded`] instead of blocking the sender —
    /// the explicit-backpressure primitive fleet-scale producers build
    /// their deferral schedules on.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Overloaded`] when the inbox is at capacity
    /// (nothing was enqueued); [`SubstrateError::Platform`] when the
    /// inbox has shut down.
    pub fn post(
        &self,
        to: ShardId,
        target: DomainId,
        payload: Vec<u8>,
    ) -> Result<mpsc::Receiver<Result<Vec<u8>, SubstrateError>>, SubstrateError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        match self.senders[to.0 as usize].try_send(XShardCall {
            target,
            payload,
            reply: reply_tx,
        }) {
            Ok(()) => Ok(reply_rx),
            Err(mpsc::TrySendError::Full(_)) => {
                Err(SubstrateError::Overloaded(format!("{to} inbox is full")))
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                Err(SubstrateError::Platform(format!("{to} inbox is closed")))
            }
        }
    }

    /// Non-blocking round trip: [`ShardPost::post`] followed by a
    /// blocking wait for the reply. Identical to [`ShardPost::call`]
    /// except a full inbox returns [`SubstrateError::Overloaded`]
    /// instead of blocking until space frees up.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Overloaded`] on a full inbox,
    /// [`SubstrateError::Platform`] on a closed one; otherwise whatever
    /// the remote dispatch returned.
    pub fn try_call(
        &self,
        to: ShardId,
        target: DomainId,
        payload: Vec<u8>,
    ) -> Result<Vec<u8>, SubstrateError> {
        let reply_rx = self.post(to, target, payload)?;
        reply_rx
            .recv()
            .map_err(|_| SubstrateError::Platform(format!("{to} dropped the reply")))?
    }
}

/// The receiving half of one shard's bounded inbox, owned by the thread
/// running that shard's engine.
pub struct ShardInbox {
    rx: mpsc::Receiver<XShardCall>,
}

impl ShardInbox {
    /// Serves inbound calls through `dispatch` until every [`ShardPost`]
    /// clone is dropped. Returns the number of calls served.
    pub fn serve(
        &self,
        mut dispatch: impl FnMut(DomainId, &[u8]) -> Result<Vec<u8>, SubstrateError>,
    ) -> usize {
        let mut served = 0;
        while let Ok(call) = self.rx.recv() {
            let result = dispatch(call.target, &call.payload);
            let _ = call.reply.send(result);
            served += 1;
        }
        served
    }

    /// Drains currently queued calls through `dispatch` without
    /// blocking. Returns the number of calls served.
    pub fn drain(
        &self,
        mut dispatch: impl FnMut(DomainId, &[u8]) -> Result<Vec<u8>, SubstrateError>,
    ) -> usize {
        let mut served = 0;
        while let Ok(call) = self.rx.try_recv() {
            let result = dispatch(call.target, &call.payload);
            let _ = call.reply.send(result);
            served += 1;
        }
        served
    }
}

/// Builds the bounded inbox fabric for `shards` shard threads, each
/// inbox holding at most `capacity` in-flight calls. Threads own their
/// [`ShardInbox`]; every thread (and the coordinator) may hold a clone
/// of the [`ShardPost`].
#[must_use]
pub fn shard_channels(shards: usize, capacity: usize) -> (Vec<ShardInbox>, ShardPost) {
    let mut inboxes = Vec::with_capacity(shards);
    let mut senders = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::sync_channel(capacity);
        senders.push(tx);
        inboxes.push(ShardInbox { rx });
    }
    (inboxes, ShardPost { senders })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareSubstrate;
    use crate::testkit::{Counter, Sealer};

    fn two_shards() -> ShardFabric {
        ShardFabric::new(vec![
            Box::new(SoftwareSubstrate::new("s0")),
            Box::new(SoftwareSubstrate::new("s1")),
        ])
    }

    /// A deterministic mixed workload driven through the object-safe
    /// surface — runs identically on a raw substrate and an N=1 shard
    /// fabric.
    fn workload(sub: &mut dyn Substrate) {
        let a = sub
            .spawn(DomainSpec::named("alpha"), Box::new(Echo))
            .unwrap();
        let b = sub
            .spawn(DomainSpec::named("beta"), Box::new(Counter::default()))
            .unwrap();
        let cap = sub.grant_channel(a, b, Badge(7)).unwrap();
        for i in 0..5u8 {
            sub.invoke(a, &cap, &[i]).unwrap();
        }
        // A forged capability presentation lands a denial.
        let forged = ChannelCap {
            owner: a,
            slot: 17,
            nonce: 99,
        };
        assert!(sub.invoke(a, &forged, b"x").is_err());
        let sealer = sub
            .spawn(DomainSpec::named("sealer"), Box::new(Sealer))
            .unwrap();
        let cap_s = sub.grant_channel(a, sealer, Badge(9)).unwrap();
        let blob = sub.invoke(a, &cap_s, b"s:secret").unwrap();
        let mut req = b"u:".to_vec();
        req.extend_from_slice(&blob);
        assert_eq!(sub.invoke(a, &cap_s, &req).unwrap(), b"secret");
        sub.revoke_channel(&cap).unwrap();
        assert!(sub.invoke(a, &cap, b"after revoke").is_err());
    }

    #[test]
    fn n1_fabric_is_byte_identical_to_single_engine() {
        let mut raw = SoftwareSubstrate::new("ref");
        workload(&mut raw);

        let mut sharded = ShardFabric::new(vec![Box::new(SoftwareSubstrate::new("ref"))]);
        workload(&mut sharded);

        let raw_fabric = raw.fabric_ref().unwrap();
        assert_eq!(
            sharded.merged_trace_bytes(),
            raw_fabric.trace_bytes(),
            "N=1 merged trace must be byte-identical to the single engine"
        );
        assert_eq!(
            sharded.merged_tree_digest(),
            raw_fabric.telemetry().tree_digest(),
            "N=1 merged span tree must digest identically"
        );
        assert_eq!(
            sharded.merged_metrics().digest(),
            raw_fabric.telemetry().metrics().digest(),
            "N=1 merged metrics must digest identically"
        );
    }

    #[test]
    fn placement_is_pinned_sticky_then_round_robin() {
        let mut fab = two_shards();
        fab.pin("pinned", ShardId(1));
        let p = fab
            .spawn(DomainSpec::named("pinned"), Box::new(Echo))
            .unwrap();
        assert_eq!(fab.shard_of(p), Some(ShardId(1)));
        // Round-robin for unpinned names starts at shard 0.
        let a = fab.spawn(DomainSpec::named("a"), Box::new(Echo)).unwrap();
        let b = fab.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
        assert_eq!(fab.shard_of(a), Some(ShardId(0)));
        assert_eq!(fab.shard_of(b), Some(ShardId(1)));
        // Sticky: respawning a destroyed name lands on the same shard,
        // so supervisor respawn stays shard-local.
        fab.destroy(b).unwrap();
        let b2 = fab.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
        assert_eq!(fab.shard_of(b2), Some(ShardId(1)));
        assert_ne!(b, b2, "global ids are never reused");
    }

    #[test]
    fn cross_shard_invoke_is_an_explicit_crossing() {
        let mut fab = two_shards();
        fab.pin("client", ShardId(0));
        fab.pin("svc", ShardId(1));
        let client = fab
            .spawn(DomainSpec::named("client"), Box::new(Echo))
            .unwrap();
        let svc = fab.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
        let cap = fab.grant_channel(client, svc, Badge(3)).unwrap();
        assert!(cap.slot >= XSHARD_SLOT_BASE);

        let reply = fab.invoke(client, &cap, b"ping").unwrap();
        assert_eq!(reply, b"ping");

        // Caller shard recorded the Shard crossing against the global
        // callee id, with the cross-shard cost-ladder charge.
        let f0 = fab.shard(ShardId(0)).fabric_ref().unwrap();
        let last = f0.trace().last().unwrap();
        assert_eq!(last.crossing, CrossingKind::Shard);
        assert_eq!(last.callee, svc);
        assert_eq!(last.cost, xshard_cost(4));
        assert_eq!(last.outcome, TraceOutcome::Ok);
        let xstats = f0.stats().crossing(CrossingKind::Shard).unwrap();
        assert_eq!(xstats.count, 1);
        // Target shard dispatched it as a local ingress call.
        let f1 = fab.shard(ShardId(1)).fabric_ref().unwrap();
        assert!(f1.trace().any(|e| e.crossing == CrossingKind::Local));
        // Metrics carry the new crossing family.
        let merged = fab.merged_metrics();
        assert_eq!(merged.counter("crossing.xshard"), 1);
    }

    #[test]
    fn revoked_cross_shard_cap_is_refused_with_denial() {
        let mut fab = two_shards();
        fab.pin("client", ShardId(0));
        fab.pin("svc", ShardId(1));
        let client = fab
            .spawn(DomainSpec::named("client"), Box::new(Echo))
            .unwrap();
        let svc = fab.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
        let cap = fab.grant_channel(client, svc, Badge(3)).unwrap();
        fab.revoke_channel(&cap).unwrap();
        let err = fab.invoke(client, &cap, b"x").unwrap_err();
        assert!(matches!(err, SubstrateError::InvalidCapability(_)));
        let f0 = fab.shard(ShardId(0)).fabric_ref().unwrap();
        assert_eq!(
            f0.stats().total_denials(),
            1,
            "the denial is attributed on the caller's shard"
        );
        // Destroying the target also kills remaining grants.
        let cap2 = fab.grant_channel(client, svc, Badge(4)).unwrap();
        fab.destroy(svc).unwrap();
        assert!(fab.invoke(client, &cap2, b"x").is_err());
    }

    #[test]
    fn merge_is_invariant_under_interleaving() {
        let run = |interleaved: bool| {
            let mut fab = two_shards();
            fab.pin("a", ShardId(0));
            fab.pin("a2", ShardId(0));
            fab.pin("b", ShardId(1));
            fab.pin("b2", ShardId(1));
            let a = fab.spawn(DomainSpec::named("a"), Box::new(Echo)).unwrap();
            let a2 = fab.spawn(DomainSpec::named("a2"), Box::new(Echo)).unwrap();
            let b = fab.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
            let b2 = fab.spawn(DomainSpec::named("b2"), Box::new(Echo)).unwrap();
            let cap_a = fab.grant_channel(a, a2, Badge(1)).unwrap();
            let cap_b = fab.grant_channel(b, b2, Badge(2)).unwrap();
            if interleaved {
                for i in 0..4u8 {
                    fab.invoke(a, &cap_a, &[i]).unwrap();
                    fab.invoke(b, &cap_b, &[i]).unwrap();
                }
            } else {
                for i in 0..4u8 {
                    fab.invoke(a, &cap_a, &[i]).unwrap();
                }
                for i in 0..4u8 {
                    fab.invoke(b, &cap_b, &[i]).unwrap();
                }
            }
            (
                fab.merged_trace_bytes(),
                fab.merged_invariant_digest(),
                fab.merged_tree_digest(),
            )
        };
        assert_eq!(
            run(false),
            run(true),
            "the merge is a function of per-shard streams, not interleaving"
        );
    }

    #[test]
    fn epochs_order_the_merge_across_shards() {
        let mut fab = two_shards();
        fab.pin("a", ShardId(0));
        fab.pin("a2", ShardId(0));
        fab.pin("b", ShardId(1));
        fab.pin("b2", ShardId(1));
        let a = fab.spawn(DomainSpec::named("a"), Box::new(Echo)).unwrap();
        let a2 = fab.spawn(DomainSpec::named("a2"), Box::new(Echo)).unwrap();
        let b = fab.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
        let b2 = fab.spawn(DomainSpec::named("b2"), Box::new(Echo)).unwrap();
        let cap_a = fab.grant_channel(a, a2, Badge(1)).unwrap();
        let cap_b = fab.grant_channel(b, b2, Badge(2)).unwrap();
        // Epoch 0: only shard 1 works. Epoch 1: only shard 0 works.
        fab.invoke(b, &cap_b, b"epoch0").unwrap();
        fab.advance_epoch();
        fab.invoke(a, &cap_a, b"epoch1").unwrap();
        let merged = fab.merged_trace();
        let pos_b = merged
            .iter()
            .position(|m| m.shard == ShardId(1) && m.event.bytes == 6)
            .unwrap();
        let pos_a = merged
            .iter()
            .position(|m| m.shard == ShardId(0) && m.event.bytes == 6)
            .unwrap();
        assert_eq!(merged[pos_b].epoch, 0);
        assert_eq!(merged[pos_a].epoch, 1);
        assert!(
            pos_b < pos_a,
            "the epoch-0 event on the higher shard sorts before the epoch-1 event"
        );
    }

    #[test]
    fn list_caps_spans_both_slot_ranges() {
        let mut fab = two_shards();
        fab.pin("client", ShardId(0));
        fab.pin("peer", ShardId(0));
        fab.pin("svc", ShardId(1));
        let client = fab
            .spawn(DomainSpec::named("client"), Box::new(Echo))
            .unwrap();
        let peer = fab
            .spawn(DomainSpec::named("peer"), Box::new(Echo))
            .unwrap();
        let svc = fab.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
        let local = fab.grant_channel(client, peer, Badge(1)).unwrap();
        let cross = fab.grant_channel(client, svc, Badge(2)).unwrap();
        let caps = fab.list_caps(client).unwrap();
        assert!(caps.contains(&local));
        assert!(caps.contains(&cross));
        assert!(caps.iter().all(|c| c.owner == client));
        fab.revoke_channel(&cross).unwrap();
        assert!(!fab.list_caps(client).unwrap().contains(&cross));
    }

    #[test]
    fn bounded_inboxes_round_trip_across_threads() {
        let (mut inboxes, post) = shard_channels(2, 4);
        let inbox1 = inboxes.pop().unwrap();
        let _inbox0 = inboxes.pop().unwrap();
        let served = std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                // Shard 1's thread: its own engine, its own domains.
                let mut sub = SoftwareSubstrate::new("shard1");
                let svc = sub.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
                let ingress = sub
                    .spawn(DomainSpec::named("xshard-ingress"), Box::new(Echo))
                    .unwrap();
                let cap = sub.grant_channel(ingress, svc, Badge(1)).unwrap();
                inbox1.serve(|_target, payload| sub.invoke(ingress, &cap, payload))
            });
            let client_post = post.clone();
            let client = scope.spawn(move || {
                for i in 0..8u8 {
                    let reply = client_post.call(ShardId(1), DomainId(0), vec![i]).unwrap();
                    assert_eq!(reply, vec![i]);
                }
            });
            client.join().unwrap();
            drop(post);
            server.join().unwrap()
        });
        assert_eq!(served, 8);
    }

    #[test]
    fn full_inbox_surfaces_backpressure_without_blocking() {
        // Capacity-2 inbox, nobody serving: the first two posts queue,
        // the third must come back Overloaded — no panic, no deadlock.
        let (mut inboxes, post) = shard_channels(1, 2);
        let inbox = inboxes.pop().unwrap();
        let _first = post.post(ShardId(0), DomainId(0), vec![1]).unwrap();
        let _second = post.post(ShardId(0), DomainId(0), vec![2]).unwrap();
        let err = post.post(ShardId(0), DomainId(0), vec![3]).unwrap_err();
        assert!(
            matches!(&err, SubstrateError::Overloaded(r) if r.contains("full")),
            "{err}"
        );
        // try_call classifies the same way.
        let err = post.try_call(ShardId(0), DomainId(0), vec![4]).unwrap_err();
        assert!(matches!(err, SubstrateError::Overloaded(_)), "{err}");
        // The queued work is intact: draining serves exactly the two
        // accepted calls, and nothing from the rejected ones.
        let mut seen = Vec::new();
        let served = inbox.drain(|_t, payload| {
            seen.push(payload.to_vec());
            Ok(payload.to_vec())
        });
        assert_eq!(served, 2);
        assert_eq!(seen, vec![vec![1], vec![2]]);
    }

    #[test]
    fn drained_inbox_resumes_byte_identical_traces() {
        // Run the same 6-call workload twice: once where the producer
        // overruns a capacity-2 inbox (hitting Overloaded and deferring)
        // and once against a roomy inbox. After drains, the serving
        // engine's trace ring must be byte-identical — backpressure
        // changes *when* work runs, never *what* runs.
        fn run(capacity: usize) -> Vec<u8> {
            let (mut inboxes, post) = shard_channels(1, capacity);
            let inbox = inboxes.pop().unwrap();
            let mut sub = SoftwareSubstrate::new("shard0");
            let svc = sub.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
            let ingress = sub
                .spawn(DomainSpec::named("xshard-ingress"), Box::new(Echo))
                .unwrap();
            let cap = sub.grant_channel(ingress, svc, Badge(1)).unwrap();
            let mut deferred: Vec<Vec<u8>> = Vec::new();
            let mut pending = Vec::new();
            for i in 0..6u8 {
                match post.post(ShardId(0), DomainId(0), vec![i]) {
                    Ok(rx) => pending.push(rx),
                    Err(SubstrateError::Overloaded(_)) => deferred.push(vec![i]),
                    Err(e) => panic!("unexpected error: {e}"),
                }
                if deferred.len() >= 2 {
                    // Producer-side deferral: drain, then replay the
                    // deferred payloads in order.
                    inbox.drain(|_t, p| sub.invoke(ingress, &cap, p));
                    for p in deferred.drain(..) {
                        pending.push(post.post(ShardId(0), DomainId(0), p).unwrap());
                    }
                }
            }
            for p in deferred.drain(..) {
                inbox.drain(|_t, p| sub.invoke(ingress, &cap, p));
                pending.push(post.post(ShardId(0), DomainId(0), p).unwrap());
            }
            inbox.drain(|_t, p| sub.invoke(ingress, &cap, p));
            for rx in pending {
                rx.recv().unwrap().unwrap();
            }
            sub.fabric_ref().unwrap().trace_bytes()
        }
        let tight = run(2);
        let roomy = run(64);
        assert!(!tight.is_empty());
        assert_eq!(tight, roomy);
    }
}
