//! Pure software isolation: the Rust type system as the substrate.
//!
//! §II-B "Pure Software Isolation": *"Components can also be isolated
//! purely by constructing them using type-safe languages … The compiler of
//! course must be trusted to enforce these rules and is therefore part of
//! the TCB."* This backend colocates all domains in one heap; the only
//! walls are Rust's ownership rules (each domain's memory is a separate
//! `Vec<u8>` no other domain can name). Consequently its profile defends
//! only against [`AttackerModel::RemoteSoftware`] and — per the paper's
//! observation that "secure boot or attestation require hardware support
//! anyway" — it reports attestation as unsupported.
//!
//! Besides being paper-faithful, this substrate is the fast reference
//! implementation used by unit tests throughout the workspace, and the
//! reference [`BackendPolicy`] implementation: all mechanism lives in
//! [`crate::fabric`]; this file contributes only placement, the trivial
//! cost model, and HKDF-based sealing.
//!
//! [`AttackerModel::RemoteSoftware`]: crate::attacker::AttackerModel::RemoteSoftware

use lateral_crypto::aead::Aead;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::VerifyingKey;
use lateral_crypto::Digest;

use crate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use crate::attest::AttestationEvidence;
use crate::cap::{Badge, ChannelCap};
use crate::component::Component;
use crate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use crate::substrate::{DomainSpec, Substrate};
use crate::{DomainId, SubstrateError};

const PAGE: usize = 4096;

/// The pure-software substrate.
pub struct SoftwareSubstrate {
    profile: SubstrateProfile,
    fabric: Fabric,
    memories: Vec<Vec<u8>>,
    seal_secret: [u8; 32],
    rng: Drbg,
    clock: u64,
}

impl std::fmt::Debug for SoftwareSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SoftwareSubstrate({} domains)",
            self.fabric.table().len()
        )
    }
}

impl SoftwareSubstrate {
    /// Creates a software substrate; `seed` makes runs reproducible.
    pub fn new(seed: &str) -> SoftwareSubstrate {
        let mut rng = Drbg::from_seed(seed.as_bytes());
        let seal_secret = rng.gen_key();
        SoftwareSubstrate {
            profile: SubstrateProfile {
                name: "software".to_string(),
                defends: models(&[AttackerModel::RemoteSoftware]),
                features: Features {
                    spatial_isolation: true,
                    temporal_isolation: false,
                    memory_encryption: false,
                    trust_anchor: false,
                    attestation: false,
                    sealed_storage: true,
                    max_trusted_domains: None,
                    hosts_legacy_os: false,
                },
                // The TCB is the compiler; rustc is on the order of
                // millions of lines.
                tcb_loc: 1_500_000,
            },
            fabric: Fabric::new(),
            memories: Vec::new(),
            seal_secret,
            rng,
            clock: 0,
        }
    }

    fn seal_key(&self, measurement: &Digest) -> [u8; 32] {
        lateral_crypto::hmac::hkdf(
            b"lateral.software.seal",
            &self.seal_secret,
            measurement.as_bytes(),
        )
    }
}

impl BackendPolicy for SoftwareSubstrate {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, _kind: DomainKind) -> Result<(), SubstrateError> {
        let pages = self.fabric.table().get(id)?.spec.mem_pages;
        // Memory slots parallel the domain table; ids are never reused.
        debug_assert_eq!(id.0 as usize, self.memories.len());
        self.memories.push(vec![0u8; pages * PAGE]);
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(mem) = self.memories.get_mut(id.0 as usize) {
            mem.fill(0); // scrub
        }
    }

    fn charge_spawn(&mut self, _id: DomainId) -> Result<(), SubstrateError> {
        self.clock += 50; // a spawn is cheap here: an allocation
        Ok(())
    }

    fn crossing(
        &self,
        _caller: DomainId,
        _target: DomainId,
    ) -> Result<CrossingKind, SubstrateError> {
        // Software isolation: an invocation is just a dynamic dispatch.
        Ok(CrossingKind::Local)
    }

    fn crossing_cost(&self, _kind: CrossingKind, bytes: usize) -> u64 {
        5 + bytes as u64 / 64
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Every crossing is a dynamic dispatch: 5 cycles + bytes/64.
        fabric::CrossingCostModel::uniform(
            &self.profile.name,
            5,
            1,
            64,
            fabric::InvokeKindRule::Always(CrossingKind::Local),
        )
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    fn seal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        Ok(Aead::new(&self.seal_key(measurement)).seal(0, b"software.seal", data))
    }

    fn unseal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        Aead::new(&self.seal_key(measurement))
            .open(0, b"software.seal", sealed)
            .map_err(|_| {
                SubstrateError::CryptoFailure(
                    "unseal failed: wrong identity or tampered blob".into(),
                )
            })
    }

    fn attest_evidence(
        &mut self,
        _domain: DomainId,
        _measurement: Digest,
        _report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        Err(SubstrateError::Unsupported(
            "software isolation has no hardware secret; attestation requires hardware (§II-B)"
                .into(),
        ))
    }
}

impl Substrate for SoftwareSubstrate {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        Err(SubstrateError::Unsupported(
            "software isolation cannot attest".into(),
        ))
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        self.fabric.table().get(domain)?;
        let mem = &self.memories[domain.0 as usize];
        let end = offset
            .checked_add(len)
            .filter(|e| *e <= mem.len())
            .ok_or_else(|| SubstrateError::AccessDenied("memory read out of range".into()))?;
        self.clock += 1;
        Ok(mem[offset..end].to_vec())
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        self.fabric.table().get(domain)?;
        let mem = &mut self.memories[domain.0 as usize];
        let end = offset
            .checked_add(data.len())
            .filter(|e| *e <= mem.len())
            .ok_or_else(|| SubstrateError::AccessDenied("memory write out of range".into()))?;
        mem[offset..end].copy_from_slice(data);
        self.clock += 1;
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("domain-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.clock
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentError, FnComponent, Invocation};
    use crate::substrate::DomainContext;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_ctx, inv: Invocation<'_>| {
            Ok(inv.data.to_vec())
        }))
    }

    #[test]
    fn spawn_grant_invoke() {
        let mut s = SoftwareSubstrate::new("t1");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        let cap = s.grant_channel(a, b, Badge(9)).unwrap();
        assert_eq!(s.invoke(a, &cap, b"ping").unwrap(), b"ping");
    }

    #[test]
    fn pola_no_channel_no_communication() {
        let mut s = SoftwareSubstrate::new("t2");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        // b was never granted a channel to a; forging a cap fails.
        let forged = ChannelCap {
            owner: b,
            slot: 0,
            nonce: 1,
        };
        assert!(s.invoke(b, &forged, b"x").is_err());
        let _ = a;
    }

    #[test]
    fn badge_is_delivered() {
        let mut s = SoftwareSubstrate::new("t3");
        let server = s
            .spawn(
                DomainSpec::named("server"),
                Box::new(FnComponent::new("badge", |_ctx, inv: Invocation<'_>| {
                    Ok(inv.badge.0.to_le_bytes().to_vec())
                })),
            )
            .unwrap();
        let client = s.spawn(DomainSpec::named("client"), echo()).unwrap();
        let cap = s.grant_channel(client, server, Badge(0xAB)).unwrap();
        let reply = s.invoke(client, &cap, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 0xAB);
    }

    #[test]
    fn memory_is_domain_private() {
        let mut s = SoftwareSubstrate::new("t4");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        s.mem_write(a, 0, b"private to a").unwrap();
        assert_eq!(s.mem_read(b, 0, 12).unwrap(), vec![0u8; 12]);
    }

    #[test]
    fn seal_binds_to_measurement() {
        let mut s = SoftwareSubstrate::new("t5");
        let a = s
            .spawn(DomainSpec::named("a").with_image(b"img-a"), echo())
            .unwrap();
        let b = s
            .spawn(DomainSpec::named("b").with_image(b"img-b"), echo())
            .unwrap();
        let twin = s
            .spawn(DomainSpec::named("twin").with_image(b"img-a"), echo())
            .unwrap();
        let sealed = s.seal(a, b"secret").unwrap();
        assert!(s.unseal(b, &sealed).is_err(), "different identity fails");
        assert_eq!(
            s.unseal(twin, &sealed).unwrap(),
            b"secret",
            "same image unseals"
        );
    }

    #[test]
    fn attestation_is_unsupported() {
        let mut s = SoftwareSubstrate::new("t6");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        assert!(matches!(
            s.attest(a, b""),
            Err(SubstrateError::Unsupported(_))
        ));
    }

    #[test]
    fn nested_calls_work_but_reentry_fails() {
        let mut s = SoftwareSubstrate::new("t7");
        let c = s.spawn(DomainSpec::named("c"), echo()).unwrap();
        // b forwards to c using a cap we grant after spawn via mem: easier —
        // b is spawned with a closure capturing nothing; we use a two-step
        // protocol where the test drives the chain.
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        let a_to_b = {
            let a = s
                .spawn(
                    DomainSpec::named("a"),
                    Box::new(FnComponent::new("a", |_ctx, inv: Invocation<'_>| {
                        Ok(inv.data.to_vec())
                    })),
                )
                .unwrap();
            s.grant_channel(a, b, Badge(1)).unwrap()
        };
        let _ = c;
        assert_eq!(s.invoke(a_to_b.owner, &a_to_b, b"hop").unwrap(), b"hop");
    }

    #[test]
    fn self_call_is_reentrancy_error() {
        let mut s = SoftwareSubstrate::new("t8");
        // A component that calls the first cap it is told about — targeting
        // itself.
        struct SelfCaller {
            cap: Option<ChannelCap>,
        }
        impl Component for SelfCaller {
            fn label(&self) -> &str {
                "self-caller"
            }
            fn on_call(
                &mut self,
                ctx: &mut dyn DomainContext,
                inv: Invocation<'_>,
            ) -> Result<Vec<u8>, ComponentError> {
                if inv.data == b"install" {
                    // Receive the cap out of band via mem (set by test).
                    return Ok(Vec::new());
                }
                if let Some(cap) = self.cap {
                    // Recursive self-call must be rejected by the substrate.
                    match ctx.call(&cap, b"again") {
                        Err(SubstrateError::Reentrancy(_)) => Ok(b"blocked".to_vec()),
                        other => Err(ComponentError::new(format!(
                            "expected reentrancy error, got {other:?}"
                        ))),
                    }
                } else {
                    Ok(Vec::new())
                }
            }
        }
        let a = s
            .spawn(DomainSpec::named("a"), Box::new(SelfCaller { cap: None }))
            .unwrap();
        let cap = s.grant_channel(a, a, Badge(1)).unwrap();
        // Reach in to give the component its self-cap.
        // (Test-only plumbing: replace the component.)
        let driver = s.spawn(DomainSpec::named("driver"), echo()).unwrap();
        let driver_cap = s.grant_channel(driver, a, Badge(2)).unwrap();
        {
            let rec = s.fabric.table_mut().get_mut(a).unwrap();
            rec.component = Some(Box::new(SelfCaller { cap: Some(cap) }));
        }
        assert_eq!(s.invoke(driver, &driver_cap, b"go").unwrap(), b"blocked");
        // The failed self-call was counted as a reentrancy fault against a.
        assert_eq!(
            s.fabric_ref()
                .unwrap()
                .stats()
                .domain(a)
                .unwrap()
                .reentrancy_faults,
            1
        );
    }

    #[test]
    fn destroy_scrubs_and_revokes() {
        let mut s = SoftwareSubstrate::new("t9");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        let cap = s.grant_channel(a, b, Badge(1)).unwrap();
        s.destroy(b).unwrap();
        assert!(s.invoke(a, &cap, b"x").is_err());
        assert!(s.measurement(b).is_err());
    }

    #[test]
    fn failing_on_start_aborts_spawn() {
        let mut s = SoftwareSubstrate::new("t10");
        struct Bad;
        impl Component for Bad {
            fn label(&self) -> &str {
                "bad"
            }
            fn on_start(&mut self, _ctx: &mut dyn DomainContext) -> Result<(), ComponentError> {
                Err(ComponentError::new("init failed"))
            }
            fn on_call(
                &mut self,
                _ctx: &mut dyn DomainContext,
                _inv: Invocation<'_>,
            ) -> Result<Vec<u8>, ComponentError> {
                Ok(Vec::new())
            }
        }
        assert!(s.spawn(DomainSpec::named("bad"), Box::new(Bad)).is_err());
    }

    #[test]
    fn trace_and_stats_observe_invocations() {
        let mut s = SoftwareSubstrate::new("t11");
        let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
        let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
        let cap = s.grant_channel(a, b, Badge(4)).unwrap();
        s.invoke(a, &cap, b"ping").unwrap();
        s.invoke(a, &cap, b"pong!").unwrap();
        let fab = s.fabric_ref().unwrap();
        assert_eq!(fab.events_recorded(), 2);
        let events: Vec<_> = fab.trace().collect();
        assert_eq!(events[0].caller, a);
        assert_eq!(events[0].callee, b);
        assert_eq!(events[0].badge, Badge(4));
        assert_eq!(events[0].bytes, 4);
        assert_eq!(events[0].crossing, CrossingKind::Local);
        let d = fab.stats().domain(a).unwrap();
        assert_eq!(d.invocations, 2);
        assert_eq!(d.bytes, (4 + 4) + (5 + 5));
        assert_eq!(fab.stats().channel(a, cap.slot).unwrap().invocations, 2);
    }

    #[test]
    fn identical_runs_yield_identical_trace_bytes() {
        let run = || {
            let mut s = SoftwareSubstrate::new("trace det");
            let a = s.spawn(DomainSpec::named("a"), echo()).unwrap();
            let b = s.spawn(DomainSpec::named("b"), echo()).unwrap();
            let cap = s.grant_channel(a, b, Badge(1)).unwrap();
            for i in 0..10u8 {
                s.invoke(a, &cap, &vec![i; i as usize]).unwrap();
            }
            s.fabric_ref().unwrap().trace_bytes()
        };
        assert_eq!(run(), run());
    }
}
