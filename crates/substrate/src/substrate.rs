//! The [`Substrate`] trait — the unified isolation interface itself —
//! plus the [`DomainContext`] service interface components program
//! against, and the [`DomainTable`] bookkeeping shared by all backends.
//!
//! §III-A: *"Software components should be developed once against the
//! common pattern and then should run on any isolation implementation."*
//! Backends (`lateral-microkernel`, `lateral-trustzone`, `lateral-sgx`,
//! `lateral-sep`, and [`crate::software`]) implement [`Substrate`];
//! everything above — the component toolbox, the composer, the example
//! applications — sees only this interface.

use lateral_crypto::sign::VerifyingKey;
use lateral_crypto::Digest;

use crate::attacker::SubstrateProfile;
use crate::attest::AttestationEvidence;
use crate::cap::{Badge, CapTable, ChannelCap};
use crate::component::{Component, ComponentError, Invocation};
use crate::{DomainId, SubstrateError};

/// Everything needed to create a protection domain hosting one component.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Domain name (diagnostics; not part of the measurement).
    pub name: String,
    /// The component's "code image". Its digest is the domain's
    /// measurement — identical images measure identically on every
    /// substrate, which is what makes cross-substrate attestation
    /// policies possible.
    pub image: Vec<u8>,
    /// Private memory, in pages.
    pub mem_pages: usize,
    /// Declared implementation size in lines of code — input to the E7
    /// TCB accounting.
    pub loc: u64,
}

impl DomainSpec {
    /// A spec with defaults: image = name bytes, 4 pages, 1000 LoC.
    pub fn named(name: &str) -> DomainSpec {
        DomainSpec {
            name: name.to_string(),
            image: name.as_bytes().to_vec(),
            mem_pages: 4,
            loc: 1_000,
        }
    }

    /// Replaces the code image.
    #[must_use]
    pub fn with_image(mut self, image: &[u8]) -> DomainSpec {
        self.image = image.to_vec();
        self
    }

    /// Sets the private memory size in pages.
    #[must_use]
    pub fn with_mem_pages(mut self, pages: usize) -> DomainSpec {
        self.mem_pages = pages;
        self
    }

    /// Sets the declared lines of code.
    #[must_use]
    pub fn with_loc(mut self, loc: u64) -> DomainSpec {
        self.loc = loc;
        self
    }

    /// The code identity this spec will measure as.
    pub fn measurement(&self) -> Digest {
        Digest::of_parts(&[b"lateral.domain.image", &self.image])
    }
}

/// The unified isolation interface (the paper's "POSIX for isolation").
///
/// Object-safe: composers hold `Box<dyn Substrate>` and mix backends
/// freely, as the smart-meter appliance mixes a microkernel and TrustZone
/// on one machine.
pub trait Substrate {
    /// The backend's self-description (defended attacker models,
    /// features, TCB size).
    fn profile(&self) -> &SubstrateProfile;

    /// Creates an isolated domain running `component` and invokes its
    /// `on_start` hook.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::OutOfResources`] when domain or memory limits are
    /// hit (e.g. TrustZone's single secure world is full), or a
    /// [`SubstrateError::ComponentFailure`] from `on_start`.
    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError>;

    /// Destroys a domain, scrubbing its memory and revoking all
    /// capabilities targeting it.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`] if it does not exist.
    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError>;

    /// Establishes a communication channel `from → to` with `badge`,
    /// returning the capability installed in `from`'s table. This is the
    /// *only* way communication comes into existence — everything not
    /// granted is denied (POLA, §III-A).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`] for missing endpoints.
    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError>;

    /// Revokes a previously granted channel.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`] if the owner is gone.
    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError>;

    /// Synchronously invokes the channel designated by `cap` on behalf of
    /// `caller`, delivering the badge and payload and returning the reply.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::InvalidCapability`] when `cap` is not a live
    /// capability of `caller`; [`SubstrateError::Reentrancy`] when the
    /// target is already executing; [`SubstrateError::ComponentFailure`]
    /// for application-level failures.
    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError>;

    /// Invokes the same channel once per payload, returning the replies
    /// in order. Semantically a `for` loop over [`Substrate::invoke`]
    /// (and the default implementation is exactly that), but backends
    /// built on the fabric engine validate the capability, run the
    /// invocation gate, and open the telemetry span once for the whole
    /// batch — the allocation- and validation-free hot path E13
    /// measures. Trace events and metrics are byte-identical to the
    /// loop; only the span tree differs (one span instead of N).
    ///
    /// # Errors
    ///
    /// As [`Substrate::invoke`]; the first failing payload's error, with
    /// later payloads not attempted.
    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        payloads
            .iter()
            .map(|data| self.invoke(caller, cap, data))
            .collect()
    }

    /// The code identity of a domain.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError>;

    /// The diagnostic name of a domain.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError>;

    /// Seals `data` to the domain's code identity: only a domain with the
    /// same measurement (on the same platform) can unseal it.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Unsupported`] on substrates without sealed
    /// storage.
    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError>;

    /// Reverses [`Substrate::seal`].
    ///
    /// # Errors
    ///
    /// [`SubstrateError::CryptoFailure`] when the sealed blob was produced
    /// for a different identity or tampered with.
    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError>;

    /// Produces attestation evidence for `domain`, binding `report_data`.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Unsupported`] on substrates without a hardware
    /// secret (e.g. the pure-software substrate).
    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError>;

    /// The platform's attestation verifying key — what a manufacturer
    /// would publish in an endorsement list for verifiers' trust policies.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Unsupported`] when the substrate cannot attest.
    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError>;

    /// Reads from the domain's private memory.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::AccessDenied`] for out-of-range accesses.
    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError>;

    /// Writes to the domain's private memory.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::AccessDenied`] for out-of-range accesses.
    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError>;

    /// Domain-scoped randomness (deterministic per run).
    fn rng_u64(&mut self, domain: DomainId) -> u64;

    /// Current logical time in cycles.
    fn now(&self) -> u64;

    /// Advances the substrate's logical clock by `cycles` without
    /// dispatching anything — how the shard layer charges the
    /// cross-shard crossing cost on the *caller's* shard clock through
    /// the object-safe interface. Backends built on the fabric engine
    /// forward to their [`crate::fabric::BackendPolicy::advance_clock`];
    /// the default is a no-op for substrates without a clock to charge.
    fn charge_cycles(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Lists the live capabilities of `domain` (the L4-style cap-space
    /// enumeration components use to discover channels the composer
    /// granted them after spawn).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError>;

    /// The backend's [`crate::fabric::Fabric`] — trace buffer and
    /// [`crate::fabric::FabricStats`] counters — when the backend routes
    /// through the fabric engine (all in-tree backends do). Experiments
    /// read crossing counts and byte volumes through this without
    /// giving up object safety.
    fn fabric_ref(&self) -> Option<&crate::fabric::Fabric> {
        None
    }

    /// Mutable access to the backend's fabric — how supervisors and
    /// fault-injection harnesses install a [`crate::fault::FaultPlan`]
    /// through the object-safe interface without knowing the concrete
    /// backend type.
    fn fabric_mut_ref(&mut self) -> Option<&mut crate::fabric::Fabric> {
        None
    }

    /// The backend's causal telemetry collector — spans for every
    /// engine operation plus the unified metrics registry. Defaults to
    /// delegating through [`Substrate::fabric_ref`], so fabric-routed
    /// backends get it for free.
    fn telemetry_ref(&self) -> Option<&lateral_telemetry::Telemetry> {
        self.fabric_ref().map(|f| f.telemetry())
    }

    /// Mutable telemetry access — how the composer, supervisor, and
    /// experiments open enclosing spans on a backend's collector
    /// through the object-safe interface.
    fn telemetry_mut_ref(&mut self) -> Option<&mut lateral_telemetry::Telemetry> {
        self.fabric_mut_ref().map(|f| f.telemetry_mut())
    }

    /// The backend's crossing-cost table as data (see
    /// [`crate::fabric::CrossingCostModel`]) — what the placement
    /// optimizer prices hypothetical placements against. `None` for
    /// backends without an introspectable cost model; every in-tree
    /// backend (and the sharded fabric) overrides this.
    fn cost_model(&self) -> Option<crate::fabric::CrossingCostModel> {
        None
    }

    /// The crossing profile folded from the backend's retained trace —
    /// per-edge cost histograms and byte totals (see
    /// [`lateral_telemetry::profile::CrossingProfile`]). Defaults to
    /// delegating through [`Substrate::fabric_ref`]; the sharded
    /// fabric overrides it with its merged profile.
    fn crossing_profile(&self) -> Option<lateral_telemetry::profile::CrossingProfile> {
        self.fabric_ref().map(|f| f.crossing_profile())
    }
}

/// The services a component sees while executing. A thin, POLA-scoped
/// view onto the [`Substrate`]: everything is implicitly `self`-relative,
/// so a component cannot even express an access to another domain's
/// resources.
pub trait DomainContext {
    /// The executing domain's id.
    fn self_id(&self) -> DomainId;
    /// Invokes a granted channel.
    ///
    /// # Errors
    ///
    /// See [`Substrate::invoke`].
    fn call(&mut self, cap: &ChannelCap, data: &[u8]) -> Result<Vec<u8>, SubstrateError>;
    /// Reads own private memory.
    ///
    /// # Errors
    ///
    /// See [`Substrate::mem_read`].
    fn mem_read(&mut self, offset: usize, len: usize) -> Result<Vec<u8>, SubstrateError>;
    /// Writes own private memory.
    ///
    /// # Errors
    ///
    /// See [`Substrate::mem_write`].
    fn mem_write(&mut self, offset: usize, data: &[u8]) -> Result<(), SubstrateError>;
    /// Seals data to own identity.
    ///
    /// # Errors
    ///
    /// See [`Substrate::seal`].
    fn seal(&mut self, data: &[u8]) -> Result<Vec<u8>, SubstrateError>;
    /// Unseals data sealed to own identity.
    ///
    /// # Errors
    ///
    /// See [`Substrate::unseal`].
    fn unseal(&mut self, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError>;
    /// Produces attestation evidence about self.
    ///
    /// # Errors
    ///
    /// See [`Substrate::attest`].
    fn attest(&mut self, report_data: &[u8]) -> Result<AttestationEvidence, SubstrateError>;
    /// Own code identity.
    fn measurement(&self) -> Digest;
    /// Logical time.
    fn now(&self) -> u64;
    /// Domain-scoped randomness.
    fn rng_u64(&mut self) -> u64;
    /// Enumerates own live capabilities.
    ///
    /// # Errors
    ///
    /// See [`Substrate::list_caps`].
    fn caps(&self) -> Result<Vec<ChannelCap>, SubstrateError>;
}

/// The standard [`DomainContext`] implementation over any [`Substrate`].
/// Backends construct one per dispatched call.
pub struct CallCtx<'a> {
    substrate: &'a mut dyn Substrate,
    domain: DomainId,
    measurement: Digest,
}

impl<'a> CallCtx<'a> {
    /// Builds a context for `domain` executing on `substrate`.
    pub fn new(substrate: &'a mut dyn Substrate, domain: DomainId, measurement: Digest) -> Self {
        CallCtx {
            substrate,
            domain,
            measurement,
        }
    }
}

impl DomainContext for CallCtx<'_> {
    fn self_id(&self) -> DomainId {
        self.domain
    }
    fn call(&mut self, cap: &ChannelCap, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        self.substrate.invoke(self.domain, cap, data)
    }
    fn mem_read(&mut self, offset: usize, len: usize) -> Result<Vec<u8>, SubstrateError> {
        self.substrate.mem_read(self.domain, offset, len)
    }
    fn mem_write(&mut self, offset: usize, data: &[u8]) -> Result<(), SubstrateError> {
        self.substrate.mem_write(self.domain, offset, data)
    }
    fn seal(&mut self, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        self.substrate.seal(self.domain, data)
    }
    fn unseal(&mut self, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        self.substrate.unseal(self.domain, sealed)
    }
    fn attest(&mut self, report_data: &[u8]) -> Result<AttestationEvidence, SubstrateError> {
        self.substrate.attest(self.domain, report_data)
    }
    fn measurement(&self) -> Digest {
        self.measurement
    }
    fn now(&self) -> u64 {
        self.substrate.now()
    }
    fn rng_u64(&mut self) -> u64 {
        self.substrate.rng_u64(self.domain)
    }
    fn caps(&self) -> Result<Vec<ChannelCap>, SubstrateError> {
        self.substrate.list_caps(self.domain)
    }
}

/// Per-domain bookkeeping every backend needs.
pub struct DomainRecord {
    /// The spec the domain was created from.
    pub spec: DomainSpec,
    /// Cached measurement of `spec.image`.
    pub measurement: Digest,
    /// The domain's capability table.
    pub caps: CapTable,
    /// The hosted component; `None` while it is executing (take-out /
    /// put-back dispatch, which also turns synchronous re-entry into a
    /// clean [`SubstrateError::Reentrancy`] instead of a deadlock).
    pub component: Option<Box<dyn Component>>,
}

/// Domain table shared by all backends.
#[derive(Default)]
pub struct DomainTable {
    domains: Vec<Option<DomainRecord>>,
}

impl DomainTable {
    /// Creates an empty table.
    pub fn new() -> DomainTable {
        DomainTable::default()
    }

    /// Inserts a record, returning the new domain id.
    pub fn insert(&mut self, record: DomainRecord) -> DomainId {
        self.domains.push(Some(record));
        DomainId(self.domains.len() as u32 - 1)
    }

    /// Immutable access to a record.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn get(&self, id: DomainId) -> Result<&DomainRecord, SubstrateError> {
        self.domains
            .get(id.0 as usize)
            .and_then(|d| d.as_ref())
            .ok_or(SubstrateError::NoSuchDomain(id))
    }

    /// Mutable access to a record.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn get_mut(&mut self, id: DomainId) -> Result<&mut DomainRecord, SubstrateError> {
        self.domains
            .get_mut(id.0 as usize)
            .and_then(|d| d.as_mut())
            .ok_or(SubstrateError::NoSuchDomain(id))
    }

    /// Removes a record (domain teardown), revoking capabilities that
    /// target it in every other domain.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn remove(&mut self, id: DomainId) -> Result<DomainRecord, SubstrateError> {
        let rec = self
            .domains
            .get_mut(id.0 as usize)
            .and_then(|d| d.take())
            .ok_or(SubstrateError::NoSuchDomain(id))?;
        for d in self.domains.iter_mut().flatten() {
            d.caps.revoke_target(id);
        }
        Ok(rec)
    }

    /// Takes the component out for dispatch.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Reentrancy`] when the component is already out.
    pub fn take_component(&mut self, id: DomainId) -> Result<Box<dyn Component>, SubstrateError> {
        let rec = self.get_mut(id)?;
        rec.component.take().ok_or(SubstrateError::Reentrancy(id))
    }

    /// Puts a component back after dispatch.
    pub fn put_component(&mut self, id: DomainId, component: Box<dyn Component>) {
        if let Ok(rec) = self.get_mut(id) {
            rec.component = Some(component);
        }
    }

    /// Iterates over live `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &DomainRecord)> {
        self.domains
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|r| (DomainId(i as u32), r)))
    }

    /// Number of live domains.
    pub fn len(&self) -> usize {
        self.domains.iter().flatten().count()
    }

    /// Whether no domains are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared dispatch logic used by backend `invoke` implementations:
/// validates the capability, takes the target component out, runs
/// `on_call` with a [`CallCtx`], and puts the component back.
///
/// The backend passes `substrate` as `self` and a closure-free pre-split
/// of its state is avoided by making this a method-style free function.
///
/// # Errors
///
/// All the invocation errors documented on [`Substrate::invoke`].
pub fn dispatch_call<S, FTab>(
    substrate: &mut S,
    table: FTab,
    caller: DomainId,
    cap: &ChannelCap,
    data: &[u8],
) -> Result<Vec<u8>, SubstrateError>
where
    S: Substrate,
    FTab: Fn(&mut S) -> &mut DomainTable,
{
    let entry = {
        let tab = table(substrate);
        let caller_rec = tab.get(caller)?;
        caller_rec.caps.lookup(caller, cap)?
    };
    let target = entry.target;
    let (mut component, measurement) = {
        let tab = table(substrate);
        let m = tab.get(target)?.measurement;
        (tab.take_component(target)?, m)
    };
    let result = {
        let mut ctx = CallCtx::new(substrate as &mut dyn Substrate, target, measurement);
        component.on_call(
            &mut ctx,
            Invocation {
                badge: entry.badge,
                data,
            },
        )
    };
    table(substrate).put_component(target, component);
    result.map_err(|ComponentError(msg)| SubstrateError::ComponentFailure(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_measurement_depends_only_on_image() {
        let a = DomainSpec::named("a").with_image(b"same image");
        let b = DomainSpec::named("b").with_image(b"same image");
        assert_eq!(a.measurement(), b.measurement());
        let c = DomainSpec::named("a").with_image(b"other image");
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn domain_table_lifecycle() {
        let mut t = DomainTable::new();
        let spec = DomainSpec::named("x");
        let m = spec.measurement();
        let id = t.insert(DomainRecord {
            spec,
            measurement: m,
            caps: CapTable::new(),
            component: None,
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap().measurement, m);
        t.remove(id).unwrap();
        assert!(t.get(id).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn remove_revokes_inbound_caps() {
        let mut t = DomainTable::new();
        let mk = |name: &str| DomainRecord {
            spec: DomainSpec::named(name),
            measurement: DomainSpec::named(name).measurement(),
            caps: CapTable::new(),
            component: None,
        };
        let a = t.insert(mk("a"));
        let b = t.insert(mk("b"));
        let cap = t.get_mut(a).unwrap().caps.install(a, b, Badge(1));
        t.remove(b).unwrap();
        assert!(t.get(a).unwrap().caps.lookup(a, &cap).is_err());
    }

    #[test]
    fn take_component_twice_is_reentrancy() {
        let mut t = DomainTable::new();
        struct Noop;
        impl Component for Noop {
            fn label(&self) -> &str {
                "noop"
            }
            fn on_call(
                &mut self,
                _ctx: &mut dyn DomainContext,
                _inv: Invocation<'_>,
            ) -> Result<Vec<u8>, ComponentError> {
                Ok(Vec::new())
            }
        }
        let id = t.insert(DomainRecord {
            spec: DomainSpec::named("n"),
            measurement: Digest::ZERO,
            caps: CapTable::new(),
            component: Some(Box::new(Noop)),
        });
        let c = t.take_component(id).unwrap();
        assert!(matches!(
            t.take_component(id),
            Err(SubstrateError::Reentrancy(_))
        ));
        t.put_component(id, c);
        assert!(t.take_component(id).is_ok());
    }
}
