//! The trusted-component programming model.
//!
//! A component is written once against this trait and runs on any
//! substrate (§III-A). All of its interaction with the world flows through
//! the [`DomainContext`] it is handed — the POLA enforcement point: the
//! context only lets it use capabilities that were explicitly granted.
//!
//! [`DomainContext`]: crate::substrate::DomainContext

use std::error::Error;
use std::fmt;

use crate::cap::Badge;
use crate::substrate::DomainContext;

/// Application-level failure returned by a component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentError(pub String);

impl ComponentError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> ComponentError {
        ComponentError(msg.into())
    }
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component error: {}", self.0)
    }
}

impl Error for ComponentError {}

/// One incoming invocation, as delivered by the substrate.
#[derive(Debug)]
pub struct Invocation<'a> {
    /// The kernel-provided badge of the channel the caller used. This is
    /// the *only* trustworthy client identity — never parse identity out
    /// of `data` (that is how confused deputies are made, §III-C).
    pub badge: Badge,
    /// The request payload.
    pub data: &'a [u8],
}

/// A trusted component: the unit of horizontal application design.
///
/// Implementations must be substrate-agnostic — everything they need
/// comes through the [`DomainContext`].
pub trait Component {
    /// Short stable label (used in logs, manifests, and measurements).
    fn label(&self) -> &str;

    /// Called once after the domain is created, before any invocation.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the spawn.
    fn on_start(&mut self, ctx: &mut dyn DomainContext) -> Result<(), ComponentError> {
        let _ = ctx;
        Ok(())
    }

    /// Handles one synchronous invocation and produces the reply.
    ///
    /// # Errors
    ///
    /// Application-level failures are reported to the caller as
    /// [`crate::SubstrateError::ComponentFailure`].
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError>;
}

/// Adapter turning a closure into a [`Component`] — convenient for tests
/// and small experiment fixtures.
///
/// ```
/// use lateral_substrate::component::{FnComponent, Component, Invocation};
///
/// let mut c = FnComponent::new("upper", |_ctx, inv: Invocation<'_>| {
///     Ok(inv.data.to_ascii_uppercase())
/// });
/// assert_eq!(c.label(), "upper");
/// ```
pub struct FnComponent<F> {
    label: String,
    f: F,
}

impl<F> FnComponent<F>
where
    F: FnMut(&mut dyn DomainContext, Invocation<'_>) -> Result<Vec<u8>, ComponentError>,
{
    /// Wraps `f` as a component labeled `label`.
    pub fn new(label: &str, f: F) -> FnComponent<F> {
        FnComponent {
            label: label.to_string(),
            f,
        }
    }
}

impl<F> Component for FnComponent<F>
where
    F: FnMut(&mut dyn DomainContext, Invocation<'_>) -> Result<Vec<u8>, ComponentError>,
{
    fn label(&self) -> &str {
        &self.label
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        (self.f)(ctx, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_error_displays() {
        let e = ComponentError::new("parse failed");
        assert!(e.to_string().contains("parse failed"));
    }

    #[test]
    fn fn_component_has_label() {
        let c = FnComponent::new("echo", |_ctx, inv: Invocation<'_>| Ok(inv.data.to_vec()));
        assert_eq!(c.label(), "echo");
    }
}
