//! Substrate-independent attestation evidence.
//!
//! §II-D "Software Attestation": proving a software identity to a remote
//! party requires a *tamper-resistant secret with restricted access*; the
//! party verifies a signature chain rooted in a key it already trusts.
//! Every backend (TPM quote, SGX quoting enclave, TrustZone fused key)
//! produces the same [`AttestationEvidence`] shape, so verifiers — like
//! the smart-meter ↔ utility exchange of Figure 3 — are written once
//! against a [`TrustPolicy`].

use std::collections::BTreeSet;

use lateral_crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral_crypto::Digest;

use crate::SubstrateError;

/// Evidence that a specific code identity runs on a specific platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationEvidence {
    /// Which substrate produced the evidence ("sgx", "trustzone", "tpm",
    /// "sep", "microkernel", "software").
    pub substrate: String,
    /// Serialized verifying key of the platform's attestation identity.
    pub platform_key: [u8; 32],
    /// Code identity (measurement) of the attested domain.
    pub measurement: Digest,
    /// Identity of the platform software stack underneath the domain
    /// (boot-chain aggregate; [`Digest::ZERO`] when not applicable).
    pub platform_state: Digest,
    /// Caller-chosen data bound into the evidence — typically a hash of a
    /// channel key, preventing relay/emulation attacks (§II-D: without a
    /// bound secret, "a complete software emulation is possible").
    pub report_data: Vec<u8>,
    /// Signature by the platform key over all of the above.
    pub signature: [u8; 64],
}

fn signing_payload(
    substrate: &str,
    platform_key: &[u8; 32],
    measurement: &Digest,
    platform_state: &Digest,
    report_data: &[u8],
) -> Digest {
    Digest::of_parts(&[
        b"lateral.attestation.v1",
        substrate.as_bytes(),
        platform_key,
        measurement.as_bytes(),
        platform_state.as_bytes(),
        report_data,
    ])
}

impl AttestationEvidence {
    /// Produces evidence signed with the platform's attestation key.
    /// Backends call this from inside their trust boundary.
    pub fn sign(
        substrate: &str,
        platform_signing_key: &SigningKey,
        measurement: Digest,
        platform_state: Digest,
        report_data: &[u8],
    ) -> AttestationEvidence {
        let platform_key = platform_signing_key.verifying_key().to_bytes();
        let payload = signing_payload(
            substrate,
            &platform_key,
            &measurement,
            &platform_state,
            report_data,
        );
        let signature = platform_signing_key.sign(payload.as_bytes()).to_bytes();
        AttestationEvidence {
            substrate: substrate.to_string(),
            platform_key,
            measurement,
            platform_state,
            report_data: report_data.to_vec(),
            signature,
        }
    }

    /// Checks the evidence's own signature (not yet its trustworthiness —
    /// that is [`TrustPolicy::verify`]).
    ///
    /// # Errors
    ///
    /// Returns [`SubstrateError::CryptoFailure`] on malformed keys or
    /// signature mismatch.
    pub fn verify_signature(&self) -> Result<(), SubstrateError> {
        let vk = VerifyingKey::from_bytes(&self.platform_key)
            .map_err(|e| SubstrateError::CryptoFailure(format!("bad platform key: {e}")))?;
        let sig = Signature::from_bytes(&self.signature)
            .map_err(|e| SubstrateError::CryptoFailure(format!("bad signature: {e}")))?;
        let payload = signing_payload(
            &self.substrate,
            &self.platform_key,
            &self.measurement,
            &self.platform_state,
            &self.report_data,
        );
        vk.verify(payload.as_bytes(), &sig)
            .map_err(|_| SubstrateError::CryptoFailure("evidence signature invalid".into()))
    }
}

/// The identity a verifier accepts after checking evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedIdentity {
    /// Substrate that produced the evidence.
    pub substrate: String,
    /// The accepted measurement.
    pub measurement: Digest,
    /// The bound report data, for the caller to cross-check (e.g. against
    /// a channel key hash).
    pub report_data: Vec<u8>,
}

/// A verifier's trust configuration.
///
/// ```
/// use lateral_substrate::attest::{AttestationEvidence, TrustPolicy};
/// use lateral_crypto::{sign::SigningKey, Digest};
///
/// let platform = SigningKey::from_seed(b"device 42");
/// let good = Digest::of(b"anonymizer v1");
/// let evidence =
///     AttestationEvidence::sign("sgx", &platform, good, Digest::ZERO, b"chan");
///
/// let mut policy = TrustPolicy::new();
/// policy.trust_platform(platform.verifying_key());
/// policy.expect_measurement(good);
/// assert!(policy.verify(&evidence).is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TrustPolicy {
    trusted_platforms: BTreeSet<[u8; 32]>,
    expected_measurements: BTreeSet<Digest>,
    expected_platform_states: BTreeSet<Digest>,
}

impl TrustPolicy {
    /// Creates an empty policy (accepts nothing).
    pub fn new() -> TrustPolicy {
        TrustPolicy::default()
    }

    /// Adds a trusted platform attestation key (e.g. from the
    /// manufacturer's endorsement list).
    pub fn trust_platform(&mut self, key: VerifyingKey) -> &mut Self {
        self.trusted_platforms.insert(key.to_bytes());
        self
    }

    /// Adds an acceptable code identity (e.g. the audited, published
    /// anonymizer build from the smart-meter example).
    pub fn expect_measurement(&mut self, m: Digest) -> &mut Self {
        self.expected_measurements.insert(m);
        self
    }

    /// Adds an acceptable platform software stack identity. When none are
    /// registered, any platform state is accepted.
    pub fn expect_platform_state(&mut self, s: Digest) -> &mut Self {
        self.expected_platform_states.insert(s);
        self
    }

    /// Fully verifies evidence: signature, platform trust, measurement,
    /// and (if configured) platform state.
    ///
    /// # Errors
    ///
    /// * [`SubstrateError::CryptoFailure`] — invalid signature/encoding.
    /// * [`SubstrateError::AccessDenied`] — untrusted platform, unknown
    ///   measurement, or unexpected platform state.
    pub fn verify(
        &self,
        evidence: &AttestationEvidence,
    ) -> Result<VerifiedIdentity, SubstrateError> {
        evidence.verify_signature()?;
        if !self.trusted_platforms.contains(&evidence.platform_key) {
            return Err(SubstrateError::AccessDenied(
                "evidence signed by untrusted platform key".into(),
            ));
        }
        if !self.expected_measurements.contains(&evidence.measurement) {
            return Err(SubstrateError::AccessDenied(format!(
                "measurement {} not in the expected set",
                evidence.measurement.short_hex()
            )));
        }
        if !self.expected_platform_states.is_empty()
            && !self
                .expected_platform_states
                .contains(&evidence.platform_state)
        {
            return Err(SubstrateError::AccessDenied(
                "platform software stack not in the expected set".into(),
            ));
        }
        Ok(VerifiedIdentity {
            substrate: evidence.substrate.clone(),
            measurement: evidence.measurement,
            report_data: evidence.report_data.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> SigningKey {
        SigningKey::from_seed(b"attest tests platform")
    }

    fn good_measurement() -> Digest {
        Digest::of(b"component v1")
    }

    fn policy() -> TrustPolicy {
        let mut p = TrustPolicy::new();
        p.trust_platform(platform().verifying_key());
        p.expect_measurement(good_measurement());
        p
    }

    fn evidence() -> AttestationEvidence {
        AttestationEvidence::sign(
            "sgx",
            &platform(),
            good_measurement(),
            Digest::ZERO,
            b"bind",
        )
    }

    #[test]
    fn valid_evidence_verifies() {
        let id = policy().verify(&evidence()).unwrap();
        assert_eq!(id.substrate, "sgx");
        assert_eq!(id.measurement, good_measurement());
        assert_eq!(id.report_data, b"bind");
    }

    #[test]
    fn tampered_measurement_fails_signature() {
        let mut ev = evidence();
        ev.measurement = Digest::of(b"trojaned component");
        assert!(matches!(
            policy().verify(&ev),
            Err(SubstrateError::CryptoFailure(_))
        ));
    }

    #[test]
    fn tampered_report_data_fails_signature() {
        let mut ev = evidence();
        ev.report_data = b"other".to_vec();
        assert!(ev.verify_signature().is_err());
    }

    #[test]
    fn emulator_with_own_key_is_rejected() {
        // §II-D: "a complete software emulation … can say one thing when
        // asked what software it runs" — but it cannot sign with a trusted
        // platform key.
        let emulator = SigningKey::from_seed(b"emulator");
        let ev =
            AttestationEvidence::sign("sgx", &emulator, good_measurement(), Digest::ZERO, b"bind");
        assert!(matches!(
            policy().verify(&ev),
            Err(SubstrateError::AccessDenied(_))
        ));
    }

    #[test]
    fn unknown_measurement_is_rejected() {
        let ev = AttestationEvidence::sign(
            "sgx",
            &platform(),
            Digest::of(b"manipulated anonymizer"),
            Digest::ZERO,
            b"bind",
        );
        assert!(policy().verify(&ev).is_err());
    }

    #[test]
    fn platform_state_gate() {
        let good_state = Digest::of(b"booted stack");
        let ev = AttestationEvidence::sign("tpm", &platform(), good_measurement(), good_state, b"");
        let mut p = policy();
        // Without a state expectation: accepted.
        assert!(p.verify(&ev).is_ok());
        // With a different expectation: rejected.
        p.expect_platform_state(Digest::of(b"other stack"));
        assert!(p.verify(&ev).is_err());
        // Expecting the right one: accepted.
        p.expect_platform_state(good_state);
        assert!(p.verify(&ev).is_ok());
    }

    #[test]
    fn substrate_field_is_bound() {
        let mut ev = evidence();
        ev.substrate = "trustzone".into();
        assert!(ev.verify_signature().is_err());
    }
}
