//! Capabilities: communication right + context identification in one
//! unforgeable entity.
//!
//! §III-C: *"Capabilities bundle communication right and context
//! identification in one entity and are therefore an important programming
//! tool to prevent confused deputy issues."* A [`ChannelCap`] names a slot
//! in its owner's capability table; the substrate validates on every
//! invocation that (a) the presenter *is* the owner and (b) the slot still
//! holds a live entry with a matching nonce. A component that somehow
//! copies another component's cap value (trivial in Rust — the struct is
//! `Clone`) still cannot use it: the owner check fails. The [`Badge`]
//! carried by the entry is delivered to the server with every invocation,
//! giving it an unforgeable client identity — the confused-deputy defense
//! measured in experiment E8.

use crate::{DomainId, SubstrateError};

/// The server-side identity tag of a channel. Chosen by whoever grants
/// the channel (the composer), delivered by the kernel with every message;
/// clients cannot influence it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Badge(pub u64);

/// A capability designating one communication channel from its owner to
/// some server domain.
///
/// The struct is freely copyable *data* — its power comes entirely from
/// validation against the kernel-held [`CapTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChannelCap {
    /// The domain whose cap table contains this capability.
    pub owner: DomainId,
    /// Slot index in the owner's table.
    pub slot: u32,
    /// Anti-reuse nonce: revoking and re-granting a slot changes it.
    pub nonce: u64,
}

/// One entry in a capability table.
#[derive(Clone, Copy, Debug)]
pub struct CapEntry {
    /// Target (server) domain of the channel.
    pub target: DomainId,
    /// Badge presented to the server on every invocation.
    pub badge: Badge,
    /// Matching nonce.
    pub nonce: u64,
}

/// The kernel-held capability table of one domain.
#[derive(Clone, Debug, Default)]
pub struct CapTable {
    entries: Vec<Option<CapEntry>>,
    next_nonce: u64,
}

impl CapTable {
    /// Creates an empty table.
    pub fn new() -> CapTable {
        CapTable::default()
    }

    /// Installs a channel to `target` with `badge`, returning the
    /// capability to hand to the owner.
    pub fn install(&mut self, owner: DomainId, target: DomainId, badge: Badge) -> ChannelCap {
        self.next_nonce += 1;
        let entry = CapEntry {
            target,
            badge,
            nonce: self.next_nonce,
        };
        // Reuse a free slot if any.
        let slot = match self.entries.iter().position(|e| e.is_none()) {
            Some(i) => {
                self.entries[i] = Some(entry);
                i
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        ChannelCap {
            owner,
            slot: slot as u32,
            nonce: entry.nonce,
        }
    }

    /// Validates a capability presented by `presenter` and returns the
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`SubstrateError::InvalidCapability`] when the presenter is
    /// not the owner, the slot is empty/out of range, or the nonce is
    /// stale (revoked capability).
    pub fn lookup(
        &self,
        presenter: DomainId,
        cap: &ChannelCap,
    ) -> Result<CapEntry, SubstrateError> {
        if cap.owner != presenter {
            return Err(SubstrateError::InvalidCapability(format!(
                "{presenter} presented a capability owned by {}",
                cap.owner
            )));
        }
        let entry = self
            .entries
            .get(cap.slot as usize)
            .and_then(|e| e.as_ref())
            .ok_or_else(|| SubstrateError::InvalidCapability(format!("empty slot {}", cap.slot)))?;
        if entry.nonce != cap.nonce {
            return Err(SubstrateError::InvalidCapability(
                "stale capability (revoked slot)".into(),
            ));
        }
        Ok(*entry)
    }

    /// Revokes the capability in `slot`. Subsequent lookups fail even if
    /// the slot is later reused (the nonce changes).
    pub fn revoke(&mut self, slot: u32) {
        if let Some(e) = self.entries.get_mut(slot as usize) {
            *e = None;
        }
    }

    /// Revokes every capability targeting `target` (domain teardown).
    pub fn revoke_target(&mut self, target: DomainId) {
        for e in self.entries.iter_mut() {
            if e.map(|x| x.target == target).unwrap_or(false) {
                *e = None;
            }
        }
    }

    /// Number of live capabilities.
    pub fn live_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Iterates over live entries with their slots.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &CapEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|x| (i as u32, x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OWNER: DomainId = DomainId(1);
    const OTHER: DomainId = DomainId(2);
    const SERVER: DomainId = DomainId(9);

    #[test]
    fn install_and_lookup() {
        let mut t = CapTable::new();
        let cap = t.install(OWNER, SERVER, Badge(7));
        let e = t.lookup(OWNER, &cap).unwrap();
        assert_eq!(e.target, SERVER);
        assert_eq!(e.badge, Badge(7));
    }

    #[test]
    fn stolen_cap_fails_owner_check() {
        // The central unforgeability property: copying the cap *value*
        // does not confer the right.
        let mut t = CapTable::new();
        let cap = t.install(OWNER, SERVER, Badge(7));
        let stolen = cap; // attacker copies the bits
        let err = t.lookup(OTHER, &stolen).unwrap_err();
        assert!(matches!(err, SubstrateError::InvalidCapability(_)));
    }

    #[test]
    fn revoked_cap_is_dead_even_after_slot_reuse() {
        let mut t = CapTable::new();
        let cap = t.install(OWNER, SERVER, Badge(1));
        t.revoke(cap.slot);
        assert!(t.lookup(OWNER, &cap).is_err());
        // Slot gets reused with a fresh nonce.
        let cap2 = t.install(OWNER, SERVER, Badge(2));
        assert_eq!(cap2.slot, cap.slot, "slot reused");
        assert!(t.lookup(OWNER, &cap).is_err(), "old cap still dead");
        assert_eq!(t.lookup(OWNER, &cap2).unwrap().badge, Badge(2));
    }

    #[test]
    fn forged_slot_and_nonce_fail() {
        let mut t = CapTable::new();
        let cap = t.install(OWNER, SERVER, Badge(1));
        let forged_slot = ChannelCap { slot: 99, ..cap };
        assert!(t.lookup(OWNER, &forged_slot).is_err());
        let forged_nonce = ChannelCap {
            nonce: cap.nonce + 1,
            ..cap
        };
        assert!(t.lookup(OWNER, &forged_nonce).is_err());
    }

    #[test]
    fn revoke_target_kills_all_channels_to_a_domain() {
        let mut t = CapTable::new();
        let c1 = t.install(OWNER, SERVER, Badge(1));
        let c2 = t.install(OWNER, SERVER, Badge(2));
        let c3 = t.install(OWNER, OTHER, Badge(3));
        t.revoke_target(SERVER);
        assert!(t.lookup(OWNER, &c1).is_err());
        assert!(t.lookup(OWNER, &c2).is_err());
        assert!(t.lookup(OWNER, &c3).is_ok());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn badges_are_distinct_per_channel() {
        let mut t = CapTable::new();
        let c1 = t.install(OWNER, SERVER, Badge(100));
        let c2 = t.install(OWNER, SERVER, Badge(200));
        assert_ne!(
            t.lookup(OWNER, &c1).unwrap().badge,
            t.lookup(OWNER, &c2).unwrap().badge
        );
    }
}
