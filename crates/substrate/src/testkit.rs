//! Standard components used by the conformance suite (E2) and by backend
//! tests throughout the workspace.
//!
//! Each component is deliberately tiny and substrate-agnostic — the same
//! boxed instances run on the microkernel, TrustZone, SGX, SEP, and the
//! software substrate, demonstrating §III-A's write-once claim.

use crate::component::{Component, ComponentError, Invocation};
use crate::substrate::DomainContext;

/// Replies with the request payload.
#[derive(Debug, Default)]
pub struct Echo;

impl Component for Echo {
    fn label(&self) -> &str {
        "echo"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        Ok(inv.data.to_vec())
    }
}

/// Replies with the kernel-delivered badge (little-endian u64) — used to
/// check that client identity comes from the substrate, not the message.
#[derive(Debug, Default)]
pub struct BadgeReporter;

impl Component for BadgeReporter {
    fn label(&self) -> &str {
        "badge-reporter"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        Ok(inv.badge.0.to_le_bytes().to_vec())
    }
}

/// A stateful counter: increments per call, replying with the new value.
/// Exercises component state retention across invocations.
#[derive(Debug, Default)]
pub struct Counter {
    count: u64,
}

impl Component for Counter {
    fn label(&self) -> &str {
        "counter"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        _inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        self.count += 1;
        Ok(self.count.to_le_bytes().to_vec())
    }
}

/// Seals / unseals through the substrate: request `s:<data>` seals,
/// `u:<blob>` unseals. Exercises sealed storage.
#[derive(Debug, Default)]
pub struct Sealer;

impl Component for Sealer {
    fn label(&self) -> &str {
        "sealer"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        match inv.data.split_first() {
            Some((b's', rest)) => ctx
                .seal(&rest[1..])
                .map_err(|e| ComponentError::new(format!("seal: {e}"))),
            Some((b'u', rest)) => ctx
                .unseal(&rest[1..])
                .map_err(|e| ComponentError::new(format!("unseal: {e}"))),
            _ => Err(ComponentError::new("expected s:<data> or u:<blob>")),
        }
    }
}

/// Writes the request into private memory, reads it back, and replies
/// with what it read — exercises the domain-private memory path.
#[derive(Debug, Default)]
pub struct MemoryScribe;

impl Component for MemoryScribe {
    fn label(&self) -> &str {
        "memory-scribe"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        ctx.mem_write(0, inv.data)
            .map_err(|e| ComponentError::new(format!("write: {e}")))?;
        ctx.mem_read(0, inv.data.len())
            .map_err(|e| ComponentError::new(format!("read: {e}")))
    }
}

/// Produces attestation evidence bound to the request payload, replying
/// with the serialized evidence (measurement ‖ platform_key ‖ signature).
#[derive(Debug, Default)]
pub struct Attester;

impl Component for Attester {
    fn label(&self) -> &str {
        "attester"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let ev = ctx
            .attest(inv.data)
            .map_err(|e| ComponentError::new(format!("attest: {e}")))?;
        let mut out = Vec::new();
        out.extend_from_slice(ev.measurement.as_bytes());
        out.extend_from_slice(&ev.platform_key);
        out.extend_from_slice(&ev.signature);
        Ok(out)
    }
}

/// Forwards every request over its first granted capability — the minimal
/// "proxy" shape used in chains (A → proxy → B). The capability is
/// discovered at call time via the cap-space enumeration, so the composer
/// can wire the chain after all domains exist.
#[derive(Debug, Default)]
pub struct Forwarder;

impl Component for Forwarder {
    fn label(&self) -> &str {
        "forwarder"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let caps = ctx
            .caps()
            .map_err(|e| ComponentError::new(format!("caps: {e}")))?;
        let cap = caps
            .first()
            .ok_or_else(|| ComponentError::new("forwarder has no outbound channel"))?;
        ctx.call(cap, inv.data)
            .map_err(|e| ComponentError::new(format!("forward: {e}")))
    }
}

/// Fabric-parity assertions: one battery of semantic scenarios that must
/// hold identically on every backend now that lifecycle, capability, and
/// reentrancy logic live in [`crate::fabric`]. Each assertion names the
/// backend (via its profile) on failure so a cross-backend sweep pins the
/// offender immediately.
pub mod parity {
    use super::{BadgeReporter, Echo, Forwarder, Sealer};
    use crate::cap::Badge;
    use crate::substrate::{DomainSpec, Substrate};
    use crate::SubstrateError;
    use lateral_telemetry::{outcome, SpanId};

    /// Runs the full parity battery: reentrancy, revoke-then-invoke,
    /// badge demultiplexing, seal-to-identity, and trace propagation.
    ///
    /// # Panics
    ///
    /// Panics (with the backend name) on the first scenario whose
    /// behaviour deviates from the fabric contract.
    pub fn assert_parity(sub: &mut dyn Substrate) {
        assert_reentrancy_refused(sub);
        assert_revoke_then_invoke_fails(sub);
        assert_badge_demultiplexing(sub);
        assert_seal_to_identity(sub);
        assert_trace_propagation(sub);
    }

    /// A component that calls back into its own domain mid-handler must
    /// be refused with [`SubstrateError::Reentrancy`] — surfaced to the
    /// driver as a `ComponentFailure` from the forwarding proxy.
    pub fn assert_reentrancy_refused(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let selfish = sub
            .spawn(DomainSpec::named("parity-selfish"), Box::new(Forwarder))
            .unwrap_or_else(|e| panic!("[{name}] spawn: {e}"));
        sub.grant_channel(selfish, selfish, Badge(1))
            .unwrap_or_else(|e| panic!("[{name}] self-grant: {e}"));
        let driver = sub
            .spawn(DomainSpec::named("parity-driver"), Box::new(Echo))
            .unwrap_or_else(|e| panic!("[{name}] spawn driver: {e}"));
        let cap = sub
            .grant_channel(driver, selfish, Badge(2))
            .unwrap_or_else(|e| panic!("[{name}] grant: {e}"));
        let err = sub
            .invoke(driver, &cap, b"loop")
            .expect_err("self-call must not succeed");
        assert!(
            matches!(err, SubstrateError::ComponentFailure(ref m) if m.contains("forward")),
            "[{name}] expected forwarded reentrancy failure, got: {err}"
        );
        sub.destroy(selfish).unwrap();
        sub.destroy(driver).unwrap();
    }

    /// A capability stops working the moment it is revoked.
    pub fn assert_revoke_then_invoke_fails(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let svc = sub
            .spawn(DomainSpec::named("parity-svc"), Box::new(Echo))
            .unwrap();
        let client = sub
            .spawn(DomainSpec::named("parity-client"), Box::new(Echo))
            .unwrap();
        let cap = sub.grant_channel(client, svc, Badge(3)).unwrap();
        assert_eq!(
            sub.invoke(client, &cap, b"live").unwrap(),
            b"live",
            "[{name}] live cap must invoke"
        );
        sub.revoke_channel(&cap).unwrap();
        assert!(
            sub.invoke(client, &cap, b"dead").is_err(),
            "[{name}] revoked cap must be refused"
        );
        sub.destroy(svc).unwrap();
        sub.destroy(client).unwrap();
    }

    /// The badge a service sees is the one fixed at grant time by the
    /// substrate — two clients sharing one service are told apart by the
    /// kernel, not by anything in the message (§III-C).
    pub fn assert_badge_demultiplexing(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let svc = sub
            .spawn(DomainSpec::named("parity-badged"), Box::new(BadgeReporter))
            .unwrap();
        let alice = sub
            .spawn(DomainSpec::named("parity-alice"), Box::new(Echo))
            .unwrap();
        let bob = sub
            .spawn(DomainSpec::named("parity-bob"), Box::new(Echo))
            .unwrap();
        let cap_a = sub.grant_channel(alice, svc, Badge(0xA11CE)).unwrap();
        let cap_b = sub.grant_channel(bob, svc, Badge(0xB0B)).unwrap();
        let seen_a = sub.invoke(alice, &cap_a, b"ignored payload").unwrap();
        let seen_b = sub.invoke(bob, &cap_b, b"ignored payload").unwrap();
        assert_eq!(
            u64::from_le_bytes(seen_a.try_into().unwrap()),
            0xA11CE,
            "[{name}] alice's badge"
        );
        assert_eq!(
            u64::from_le_bytes(seen_b.try_into().unwrap()),
            0xB0B,
            "[{name}] bob's badge"
        );
        sub.destroy(svc).unwrap();
        sub.destroy(alice).unwrap();
        sub.destroy(bob).unwrap();
    }

    /// Sealing binds to the sealer's identity: the same domain unseals
    /// its own blob; a domain with a different image cannot.
    pub fn assert_seal_to_identity(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let a = sub
            .spawn(
                DomainSpec::named("parity-seal-a").with_image(b"parity image a"),
                Box::new(Echo),
            )
            .unwrap();
        let b = sub
            .spawn(
                DomainSpec::named("parity-seal-b").with_image(b"parity image b"),
                Box::new(Echo),
            )
            .unwrap();
        let blob = sub
            .seal(a, b"parity secret")
            .unwrap_or_else(|e| panic!("[{name}] trusted domain must seal: {e}"));
        assert_eq!(
            sub.unseal(a, &blob).unwrap(),
            b"parity secret",
            "[{name}] sealer unseals its own blob"
        );
        assert!(
            sub.unseal(b, &blob).is_err(),
            "[{name}] a different identity must not unseal the blob"
        );
        sub.destroy(a).unwrap();
        sub.destroy(b).unwrap();
    }

    /// One scenario is one connected span tree: every fabric event
    /// recorded while an experiment-level root span is open shares the
    /// root's trace id and links back to it through parent edges, on
    /// every backend identically.
    pub fn assert_trace_propagation(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let at = sub.now();
        let tel = sub
            .telemetry_mut_ref()
            .unwrap_or_else(|| panic!("[{name}] backend must expose fabric telemetry"));
        let root = tel.begin_span("parity-trace", "experiment", at);
        let trace = tel.context().expect("root span is open").trace_id;
        let svc = sub
            .spawn(DomainSpec::named("parity-traced-svc"), Box::new(Echo))
            .unwrap();
        let client = sub
            .spawn(DomainSpec::named("parity-traced-client"), Box::new(Echo))
            .unwrap();
        let cap = sub.grant_channel(client, svc, Badge(7)).unwrap();
        assert_eq!(sub.invoke(client, &cap, b"one").unwrap(), b"one");
        assert_eq!(sub.invoke(client, &cap, b"two").unwrap(), b"two");
        sub.destroy(client).unwrap();
        sub.destroy(svc).unwrap();
        let at = sub.now();
        let tel = sub.telemetry_mut_ref().unwrap();
        tel.end_span(root, at, outcome::OK);

        let spans: Vec<_> = tel
            .spans()
            .filter(|s| s.trace_id == trace)
            .cloned()
            .collect();
        // root + 2 spawns + grant + 2 invokes + 2 destroys
        assert_eq!(
            spans.len(),
            8,
            "[{name}] the scenario records exactly its own events"
        );
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id.0).collect();
        for s in &spans {
            if s.id == root {
                assert_eq!(s.parent, SpanId::NONE, "[{name}] root has no parent");
            } else {
                assert!(
                    ids.contains(&s.parent.0),
                    "[{name}] span '{}' must link into the trace",
                    s.name
                );
            }
        }
        for event in [
            "spawn parity-traced-svc",
            "grant parity-traced-client->parity-traced-svc",
            "invoke parity-traced-svc",
            "destroy parity-traced-client",
        ] {
            assert!(
                spans.iter().any(|s| &*s.name == event && s.parent == root),
                "[{name}] '{event}' must be a child of the scenario root"
            );
        }
    }

    /// `invoke_batch` parity: driven against two same-seed instances of
    /// one backend, a batch on one must leave byte-identical trace-ring
    /// bytes and metrics digests to the equivalent invoke loop on the
    /// other. The span *tree* is the one sanctioned difference — the
    /// batch opens a single `invoke` span where the loop opens N — and
    /// that difference is asserted too, so a regression in either
    /// direction (batch re-growing per-payload spans, or diverging
    /// observable state) fails loudly.
    pub fn assert_batch_matches_loop(looped: &mut dyn Substrate, batched: &mut dyn Substrate) {
        let name = looped.profile().name.clone();
        let payloads: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 3 + i as usize * 17]).collect();

        let setup = |sub: &mut dyn Substrate| {
            let svc = sub
                .spawn(DomainSpec::named("batch-parity-svc"), Box::new(Echo))
                .unwrap();
            let client = sub
                .spawn(DomainSpec::named("batch-parity-client"), Box::new(Echo))
                .unwrap();
            let cap = sub.grant_channel(client, svc, Badge(7)).unwrap();
            (client, cap)
        };

        let (client_a, cap_a) = setup(looped);
        let loop_replies: Vec<Vec<u8>> = payloads
            .iter()
            .map(|p| looped.invoke(client_a, &cap_a, p).unwrap())
            .collect();

        let (client_b, cap_b) = setup(batched);
        let views: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let batch_replies = batched.invoke_batch(client_b, &cap_b, &views).unwrap();

        assert_eq!(
            loop_replies, batch_replies,
            "[{name}] batch replies must match the loop's"
        );
        assert_eq!(
            looped.fabric_ref().unwrap().trace_bytes(),
            batched.fabric_ref().unwrap().trace_bytes(),
            "[{name}] batch trace ring must be byte-identical to the loop's"
        );
        assert_eq!(
            looped.telemetry_ref().unwrap().metrics().digest(),
            batched.telemetry_ref().unwrap().metrics().digest(),
            "[{name}] batch metrics digest must match the loop's"
        );
        let invoke_spans = |sub: &dyn Substrate| {
            sub.telemetry_ref()
                .unwrap()
                .spans()
                .filter(|s| &*s.name == "invoke batch-parity-svc")
                .count()
        };
        assert_eq!(
            invoke_spans(looped),
            payloads.len(),
            "[{name}] the loop opens one span per payload"
        );
        assert_eq!(
            invoke_spans(batched),
            1,
            "[{name}] the batch opens exactly one span"
        );
    }

    /// Cross-shard parity: two same-seed instances of one backend
    /// become the shards of a [`crate::shard::ShardFabric`], and the
    /// explicit cross-shard crossing class must behave identically on
    /// every backend — the grant lands in the fabric-level slot range,
    /// the invocation dispatches on the remote shard while the caller's
    /// shard records a [`crate::fabric::CrossingKind::Shard`] event
    /// against the global callee with the [`crate::shard::xshard_cost`]
    /// charge, sealed storage still binds to the remote domain's
    /// identity, and a revoked cross-shard capability is refused with
    /// the denial attributed on the caller's shard.
    pub fn assert_cross_shard_crossing(instances: Vec<Box<dyn Substrate>>) {
        use crate::fabric::{CrossingKind, TraceOutcome};
        use crate::shard::{xshard_cost, ShardFabric, ShardId, XSHARD_SLOT_BASE};
        assert!(
            instances.len() >= 2,
            "cross-shard parity needs two instances of the backend"
        );
        let name = instances[0].profile().name.clone();
        let mut fab = ShardFabric::new(instances);
        fab.pin("xshard-client", ShardId(0));
        fab.pin("xshard-remote", ShardId(1));
        fab.pin("xshard-sealer", ShardId(1));
        let client = fab
            .spawn(DomainSpec::named("xshard-client"), Box::new(Echo))
            .unwrap_or_else(|e| panic!("[{name}] spawn client: {e}"));
        let remote = fab
            .spawn(DomainSpec::named("xshard-remote"), Box::new(Echo))
            .unwrap_or_else(|e| panic!("[{name}] spawn remote: {e}"));
        assert_eq!(fab.shard_of(client), Some(ShardId(0)));
        assert_eq!(fab.shard_of(remote), Some(ShardId(1)));

        let cap = fab
            .grant_channel(client, remote, Badge(0x5AD))
            .unwrap_or_else(|e| panic!("[{name}] cross-shard grant: {e}"));
        assert!(
            cap.slot >= XSHARD_SLOT_BASE,
            "[{name}] cross-shard grants use the fabric-level slot range"
        );
        let reply = fab
            .invoke(client, &cap, b"across")
            .unwrap_or_else(|e| panic!("[{name}] cross-shard invoke: {e}"));
        assert_eq!(reply, b"across", "[{name}] cross-shard echo reply");
        {
            let f0 = fab
                .shard(ShardId(0))
                .fabric_ref()
                .unwrap_or_else(|| panic!("[{name}] shard 0 must expose its fabric"));
            let last = f0
                .trace()
                .last()
                .unwrap_or_else(|| panic!("[{name}] caller shard recorded no event"));
            assert_eq!(
                last.crossing,
                CrossingKind::Shard,
                "[{name}] the caller's shard records the xshard crossing"
            );
            assert_eq!(
                last.callee, remote,
                "[{name}] the event names the global callee"
            );
            assert_eq!(
                last.cost,
                xshard_cost(6),
                "[{name}] the crossing charges the shard cost ladder"
            );
            assert_eq!(last.outcome, TraceOutcome::Ok);
        }

        // Seal across shards: the blob binds to the remote sealer's
        // identity on its own shard, and round-trips through the
        // fabric-level capability.
        let sealer = fab
            .spawn(DomainSpec::named("xshard-sealer"), Box::new(Sealer))
            .unwrap_or_else(|e| panic!("[{name}] spawn sealer: {e}"));
        let cap_seal = fab
            .grant_channel(client, sealer, Badge(0x5EA1))
            .unwrap_or_else(|e| panic!("[{name}] grant sealer: {e}"));
        let blob = fab
            .invoke(client, &cap_seal, b"s:xshard secret")
            .unwrap_or_else(|e| panic!("[{name}] cross-shard seal: {e}"));
        let mut unseal_req = b"u:".to_vec();
        unseal_req.extend_from_slice(&blob);
        assert_eq!(
            fab.invoke(client, &cap_seal, &unseal_req)
                .unwrap_or_else(|e| panic!("[{name}] cross-shard unseal: {e}")),
            b"xshard secret",
            "[{name}] sealed data round-trips across the shard boundary"
        );

        // Revocation crosses shards correctly: the capability dies, the
        // refusal is a denial on the caller's shard.
        let denials_before = fab
            .shard(ShardId(0))
            .fabric_ref()
            .map_or(0, |f| f.stats().total_denials());
        fab.revoke_channel(&cap)
            .unwrap_or_else(|e| panic!("[{name}] cross-shard revoke: {e}"));
        assert!(
            fab.invoke(client, &cap, b"dead").is_err(),
            "[{name}] revoked cross-shard cap must be refused"
        );
        let denials_after = fab
            .shard(ShardId(0))
            .fabric_ref()
            .map_or(0, |f| f.stats().total_denials());
        assert_eq!(
            denials_after,
            denials_before + 1,
            "[{name}] the refusal counts as a denial on the caller's shard"
        );
    }

    /// Regression for the destroy/respawn hole: a capability granted
    /// into a domain that is destroyed and then respawned (same name,
    /// same image) must stay dead — domain ids are never reused and
    /// `destroy` revokes every capability targeting the victim.
    pub fn assert_stale_cap_rejected(sub: &mut dyn Substrate) {
        let name = sub.profile().name.clone();
        let spec = || DomainSpec::named("parity-respawn").with_image(b"respawn image");
        let client = sub
            .spawn(DomainSpec::named("parity-holder"), Box::new(Echo))
            .unwrap();
        let victim = sub.spawn(spec(), Box::new(Echo)).unwrap();
        let stale = sub.grant_channel(client, victim, Badge(9)).unwrap();
        assert_eq!(sub.invoke(client, &stale, b"pre").unwrap(), b"pre");
        sub.destroy(victim).unwrap();
        assert!(
            sub.invoke(client, &stale, b"gone").is_err(),
            "[{name}] cap into destroyed domain must fail"
        );
        let respawned = sub.spawn(spec(), Box::new(Echo)).unwrap();
        assert_ne!(
            respawned, victim,
            "[{name}] domain ids must never be reused"
        );
        assert!(
            sub.invoke(client, &stale, b"still gone").is_err(),
            "[{name}] stale cap must not reach the respawned domain"
        );
        let fresh = sub.grant_channel(client, respawned, Badge(9)).unwrap();
        assert_eq!(
            sub.invoke(client, &fresh, b"fresh").unwrap(),
            b"fresh",
            "[{name}] a freshly granted cap works"
        );
        sub.destroy(client).unwrap();
        sub.destroy(respawned).unwrap();
    }

    /// The recovery scenario at substrate level, driven by deterministic
    /// fault injection: a [`crate::fault::FaultPlan`] crashes the victim
    /// on its 2nd invocation; callers see a fail-stop window
    /// ([`SubstrateError::DomainCrashed`]); the victim is destroyed and
    /// respawned from the same image; the successor re-measures
    /// identically to the original, the stale capability stays dead, and
    /// a fresh grant restores service — the supervisor's restart cycle,
    /// checked backend by backend.
    pub fn assert_crash_respawn_supervised(sub: &mut dyn Substrate) {
        use crate::fault::{FaultPlan, FaultSpec};
        let name = sub.profile().name.clone();
        let spec = || DomainSpec::named("parity-crash-victim").with_image(b"crash victim image");
        let client = sub
            .spawn(DomainSpec::named("parity-crash-client"), Box::new(Echo))
            .unwrap();
        let victim = sub.spawn(spec(), Box::new(Echo)).unwrap();
        let baseline = sub.measurement(victim).unwrap();
        let cap = sub.grant_channel(client, victim, Badge(7)).unwrap();

        let fabric = sub
            .fabric_mut_ref()
            .unwrap_or_else(|| panic!("[{name}] backend must expose its fabric for injection"));
        fabric
            .install_fault_plan(FaultPlan::new().with(FaultSpec::crash("parity-crash-victim", 2)));

        assert_eq!(
            sub.invoke(client, &cap, b"one").unwrap(),
            b"one",
            "[{name}] call before the fault point is healthy"
        );
        let crash = sub
            .invoke(client, &cap, b"two")
            .expect_err("second call must hit the injected crash");
        assert!(
            matches!(crash, SubstrateError::DomainCrashed(_)),
            "[{name}] expected DomainCrashed, got: {crash}"
        );
        assert!(
            matches!(
                sub.invoke(client, &cap, b"three"),
                Err(SubstrateError::DomainCrashed(_))
            ),
            "[{name}] crashed domain fail-stops until restarted"
        );

        // The supervisor's restart cycle: destroy, respawn from the same
        // image, re-measure, re-grant.
        sub.destroy(victim).unwrap();
        let successor = sub.spawn(spec(), Box::new(Echo)).unwrap();
        assert_ne!(
            successor, victim,
            "[{name}] the successor gets a fresh domain id"
        );
        assert_eq!(
            sub.measurement(successor).unwrap(),
            baseline,
            "[{name}] respawn from the same image re-measures identically"
        );
        assert!(
            sub.invoke(client, &cap, b"stale").is_err(),
            "[{name}] the pre-crash cap must not reach the successor"
        );
        let fresh = sub.grant_channel(client, successor, Badge(7)).unwrap();
        assert_eq!(
            sub.invoke(client, &fresh, b"served").unwrap(),
            b"served",
            "[{name}] service resumes on the re-granted channel"
        );
        sub.destroy(client).unwrap();
        sub.destroy(successor).unwrap();
    }

    /// Admission-gate parity: an image served through a
    /// [`lateral_registry::Registry`] spawns while certified and is
    /// refused once revoked — identically on every backend. The gate
    /// itself lives above the substrate; what this asserts per backend
    /// is the content-addressing contract it relies on: the digest the
    /// registry certifies is exactly the measurement the spawned domain
    /// reports, and after revocation the resolver refuses before any
    /// domain is created.
    pub fn assert_revoked_image_rejected(
        sub: &mut dyn Substrate,
        registry: &mut lateral_registry::Registry,
    ) {
        use lateral_crypto::sign::SigningKey;
        use lateral_registry::{ManifestDraft, RegistryError};

        let name = sub.profile().name.clone();
        let publisher = SigningKey::from_seed(b"parity registry publisher");
        registry.trust_root(&publisher.verifying_key());
        let image: &[u8] = b"parity gated image v1";
        let manifest = ManifestDraft::new("parity-gated", image).sign(&publisher, None);
        let digest = registry
            .publish(image, manifest)
            .unwrap_or_else(|e| panic!("[{name}] publish: {e}"));

        // Certified: resolution succeeds and the spawned domain measures
        // as exactly the digest the registry certified.
        let resolved = registry
            .resolve("parity-gated")
            .unwrap_or_else(|e| panic!("[{name}] certified image must resolve: {e}"));
        let gated = sub
            .spawn(
                DomainSpec::named("parity-gated").with_image(&resolved.image),
                Box::new(Echo),
            )
            .unwrap_or_else(|e| panic!("[{name}] spawn of certified image: {e}"));
        assert_eq!(
            sub.measurement(gated).unwrap(),
            resolved.digest,
            "[{name}] domain measurement must equal the registry digest"
        );
        sub.destroy(gated).unwrap();

        // Revoked: resolution refuses, so the admission gate never
        // reaches the substrate — no new domain for this image.
        registry.revoke(digest, "parity revocation").unwrap();
        let refused = registry
            .resolve("parity-gated")
            .expect_err("revoked image must not resolve");
        assert!(
            matches!(refused, RegistryError::Revoked { .. }),
            "[{name}] expected Revoked refusal, got: {refused}"
        );
        assert!(
            registry.resolve_digest(digest).is_err(),
            "[{name}] exact-digest resolution of a revoked image must refuse"
        );
    }

    /// Web-of-trust demotion parity: an image admitted because its
    /// review score clears the registry's threshold is refused — and a
    /// running instance flagged for same-tick quarantine — once a
    /// distrust wave drops the score, identically on every backend.
    /// Like [`assert_revoked_image_rejected`], the gate lives above the
    /// substrate; what each backend must uphold is that the digest the
    /// trust graph scores is exactly the measurement the spawned domain
    /// reports, so demotion decisions transfer to running instances.
    pub fn assert_wot_demotion_quarantined(
        sub: &mut dyn Substrate,
        registry: &mut lateral_registry::Registry,
    ) {
        use lateral_crypto::sign::SigningKey;
        use lateral_registry::{ManifestDraft, RegistryError, WOT_PASS};
        use lateral_wot::{Proof, Rating, ReviewProof, TrustGraph};

        let name = sub.profile().name.clone();
        let publisher = SigningKey::from_seed(b"parity wot publisher");
        registry.trust_root(&publisher.verifying_key());
        let reviewer = SigningKey::from_seed(b"parity wot reviewer");
        let mut graph = TrustGraph::new();
        graph.seed_root(&reviewer.verifying_key().to_bytes());
        registry.attach_wot(graph, 100);

        let image: &[u8] = b"parity wot-gated image v1";
        let manifest = ManifestDraft::new("parity-wot-gated", image).sign(&publisher, None);
        let digest = registry
            .publish(image, manifest)
            .unwrap_or_else(|e| panic!("[{name}] publish: {e}"));

        // Unreviewed: the wot-threshold pass refuses before any domain
        // is created.
        let refused = registry
            .resolve("parity-wot-gated")
            .expect_err("unreviewed image must not resolve");
        assert!(
            matches!(refused, RegistryError::Uncertified { ref pass, .. } if pass == WOT_PASS),
            "[{name}] expected a wot-threshold refusal, got: {refused}"
        );

        // A high review from the trust root clears the threshold: the
        // image resolves and the spawned domain measures as certified.
        let review = ReviewProof::issue(&reviewer, digest, Rating::High, 1);
        registry
            .ingest_proof(&Proof::Review(review))
            .unwrap_or_else(|e| panic!("[{name}] review ingest: {e}"));
        let resolved = registry
            .resolve("parity-wot-gated")
            .unwrap_or_else(|e| panic!("[{name}] reviewed image must resolve: {e}"));
        let gated = sub
            .spawn(
                DomainSpec::named("parity-wot-gated").with_image(&resolved.image),
                Box::new(Echo),
            )
            .unwrap_or_else(|e| panic!("[{name}] spawn of admitted image: {e}"));
        assert_eq!(
            sub.measurement(gated).unwrap(),
            resolved.digest,
            "[{name}] domain measurement must equal the scored digest"
        );
        assert!(
            !registry.wot_demoted(digest),
            "[{name}] a clearing score must not read as demoted"
        );

        // Distrust wave: the same root's later review supersedes its
        // `high`, dragging the score negative. The running instance is
        // now flagged for the health sweep, and re-resolution refuses
        // through the wot pass — the pre-wave verdict is never served.
        let wave = ReviewProof::issue(&reviewer, digest, Rating::Distrust, 2);
        registry
            .ingest_proof(&Proof::Review(wave))
            .unwrap_or_else(|e| panic!("[{name}] wave ingest: {e}"));
        assert!(
            registry.wot_demoted(digest),
            "[{name}] demotion must be visible to the health sweep"
        );
        let refused = registry
            .resolve("parity-wot-gated")
            .expect_err("demoted image must not resolve");
        assert!(
            matches!(refused, RegistryError::Uncertified { ref pass, .. } if pass == WOT_PASS),
            "[{name}] expected a post-wave wot-threshold refusal, got: {refused}"
        );
        sub.destroy(gated).unwrap();
    }

    /// The introspectable cost model is not a second implementation that
    /// can drift: for every invocation the engine actually recorded, the
    /// backend's [`crate::fabric::CrossingCostModel`] must reprice the
    /// observed crossing to exactly the cycles charged, and its
    /// invoke-kind rule must predict the crossing the engine chose for a
    /// trusted-to-trusted call — the contract the placement optimizer's
    /// scoring rests on.
    pub fn assert_cost_model_prices_observed_crossings(sub: &mut dyn Substrate) {
        use crate::fabric::{DomainKind, TraceOutcome};
        let name = sub.profile().name.clone();
        let model = sub
            .cost_model()
            .unwrap_or_else(|| panic!("[{name}] backend must expose its cost model"));
        assert_eq!(
            model.backend(),
            name,
            "[{name}] the model names the backend it describes"
        );
        let svc = sub
            .spawn(DomainSpec::named("parity-priced-svc"), Box::new(Echo))
            .unwrap();
        let client = sub
            .spawn(DomainSpec::named("parity-priced-client"), Box::new(Echo))
            .unwrap();
        let cap = sub.grant_channel(client, svc, Badge(7)).unwrap();
        // Payload sizes straddling the per-byte divisors (8, 32, 64) so a
        // wrong numerator or denominator cannot price every case right.
        for len in [0usize, 1, 7, 8, 63, 64, 65, 512, 4096] {
            let payload = vec![0xA5u8; len];
            assert_eq!(sub.invoke(client, &cap, &payload).unwrap(), payload);
        }
        let fabric = sub
            .fabric_ref()
            .unwrap_or_else(|| panic!("[{name}] backend must expose its fabric"));
        let mut checked = 0usize;
        for ev in fabric.trace().filter(|ev| ev.outcome == TraceOutcome::Ok) {
            assert_eq!(
                model.price(ev.crossing, ev.bytes),
                ev.cost,
                "[{name}] model must reprice {} bytes over {} to the charged cycles",
                ev.bytes,
                ev.crossing,
            );
            assert_eq!(
                model.invoke_kind(DomainKind::Trusted, DomainKind::Trusted),
                ev.crossing,
                "[{name}] invoke-kind rule must predict the engine's crossing"
            );
            checked += 1;
        }
        assert!(
            checked >= 9,
            "[{name}] the retained trace must cover the priced invocations"
        );
        sub.destroy(client).unwrap();
        sub.destroy(svc).unwrap();
    }

    /// Live migration parity: a component with sealed state moves from
    /// `source` to `target` through the seal-escrow cycle — unseal while
    /// live, destroy, respawn from the same image on the target,
    /// re-measure identically, re-seal — and comes out byte-identical.
    /// The stale capability into the source incarnation stays dead, a
    /// fresh grant restores service on the target, and (where the target
    /// can attest) the evidence carries the unchanged measurement.
    pub fn assert_migration_preserves_state(
        source: &mut dyn Substrate,
        target: &mut dyn Substrate,
    ) {
        let src = source.profile().name.clone();
        let dst = target.profile().name.clone();
        let leg = format!("{src}->{dst}");
        let spec = || DomainSpec::named("parity-migrant").with_image(b"parity migrant image");
        let secret: &[u8] = b"parity migration secret";

        // Source incarnation: serving, with sealed state.
        let driver = source
            .spawn(DomainSpec::named("parity-migrant-driver"), Box::new(Echo))
            .unwrap();
        let migrant = source.spawn(spec(), Box::new(Echo)).unwrap();
        let baseline = source.measurement(migrant).unwrap();
        let stale = source.grant_channel(driver, migrant, Badge(7)).unwrap();
        assert_eq!(
            source.invoke(driver, &stale, b"pre").unwrap(),
            b"pre",
            "[{leg}] source incarnation serves before migration"
        );
        let sealed = source
            .seal(migrant, secret)
            .unwrap_or_else(|e| panic!("[{leg}] seal on source: {e}"));

        // Escrow leg: sealing is keyed per backend, so the blob is opened
        // while the source incarnation is still alive and carried across
        // in plaintext under the supervisor's custody.
        let escrow = source
            .unseal(migrant, &sealed)
            .unwrap_or_else(|e| panic!("[{leg}] escrow unseal on source: {e}"));
        assert_eq!(escrow, secret, "[{leg}] escrow must open the sealed state");

        source.destroy(migrant).unwrap();
        assert!(
            source.invoke(driver, &stale, b"gone").is_err(),
            "[{leg}] cap into the destroyed incarnation must fail"
        );

        // Target incarnation: same image, same measurement — the code
        // identity is backend-invariant, which is what lets admission and
        // attestation decisions transfer across the migration.
        let successor = target.spawn(spec(), Box::new(Echo)).unwrap();
        assert_eq!(
            target.measurement(successor).unwrap(),
            baseline,
            "[{leg}] the successor re-measures identically on the target"
        );
        let resealed = target
            .seal(successor, &escrow)
            .unwrap_or_else(|e| panic!("[{leg}] re-seal on target: {e}"));
        assert_eq!(
            target.unseal(successor, &resealed).unwrap(),
            secret,
            "[{leg}] sealed state survives migration byte-identically"
        );
        assert!(
            source.invoke(driver, &stale, b"still gone").is_err(),
            "[{leg}] the stale cap must never reach the migrated incarnation"
        );
        let fresh_driver = target
            .spawn(DomainSpec::named("parity-migrant-driver"), Box::new(Echo))
            .unwrap();
        let fresh = target
            .grant_channel(fresh_driver, successor, Badge(7))
            .unwrap();
        assert_eq!(
            target.invoke(fresh_driver, &fresh, b"served").unwrap(),
            b"served",
            "[{leg}] service resumes on the re-granted channel"
        );
        match target.attest(successor, b"parity migration") {
            Ok(evidence) => assert_eq!(
                evidence.measurement, baseline,
                "[{leg}] post-migration evidence carries the unchanged measurement"
            ),
            Err(SubstrateError::Unsupported(_)) => {}
            Err(e) => panic!("[{leg}] attest on target: {e}"),
        }
        source.destroy(driver).unwrap();
        target.destroy(fresh_driver).unwrap();
        target.destroy(successor).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::Badge;
    use crate::software::SoftwareSubstrate;
    use crate::substrate::{DomainSpec, Substrate};

    #[test]
    fn counter_accumulates_across_calls() {
        let mut s = SoftwareSubstrate::new("tk counter");
        let c = s
            .spawn(DomainSpec::named("counter"), Box::new(Counter::default()))
            .unwrap();
        let d = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(d, c, Badge(0)).unwrap();
        for expected in 1u64..=3 {
            let r = s.invoke(d, &cap, b"").unwrap();
            assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), expected);
        }
    }

    #[test]
    fn sealer_roundtrip_on_software_substrate() {
        let mut s = SoftwareSubstrate::new("tk sealer");
        let sealer = s
            .spawn(DomainSpec::named("sealer"), Box::new(Sealer))
            .unwrap();
        let d = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(d, sealer, Badge(0)).unwrap();
        let sealed = s.invoke(d, &cap, b"s:top secret").unwrap();
        let mut req = b"u:".to_vec();
        req.extend_from_slice(&sealed);
        assert_eq!(s.invoke(d, &cap, &req).unwrap(), b"top secret");
    }

    #[test]
    fn memory_scribe_roundtrips() {
        let mut s = SoftwareSubstrate::new("tk scribe");
        let m = s
            .spawn(DomainSpec::named("scribe"), Box::new(MemoryScribe))
            .unwrap();
        let d = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(d, m, Badge(0)).unwrap();
        assert_eq!(s.invoke(d, &cap, b"hello memory").unwrap(), b"hello memory");
    }

    #[test]
    fn forwarder_relays_through_discovered_cap() {
        let mut s = SoftwareSubstrate::new("tk fwd");
        let dest = s.spawn(DomainSpec::named("dest"), Box::new(Echo)).unwrap();
        let proxy = s
            .spawn(DomainSpec::named("proxy"), Box::new(Forwarder))
            .unwrap();
        s.grant_channel(proxy, dest, Badge(5)).unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let drive_cap = s.grant_channel(driver, proxy, Badge(1)).unwrap();
        assert_eq!(
            s.invoke(driver, &drive_cap, b"two hops").unwrap(),
            b"two hops"
        );
    }

    #[test]
    fn forwarder_without_channel_reports_cleanly() {
        let mut s = SoftwareSubstrate::new("tk fwd2");
        let proxy = s
            .spawn(DomainSpec::named("proxy"), Box::new(Forwarder))
            .unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(driver, proxy, Badge(1)).unwrap();
        assert!(matches!(
            s.invoke(driver, &cap, b"x"),
            Err(crate::SubstrateError::ComponentFailure(_))
        ));
    }
}
