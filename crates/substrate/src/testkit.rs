//! Standard components used by the conformance suite (E2) and by backend
//! tests throughout the workspace.
//!
//! Each component is deliberately tiny and substrate-agnostic — the same
//! boxed instances run on the microkernel, TrustZone, SGX, SEP, and the
//! software substrate, demonstrating §III-A's write-once claim.

use crate::component::{Component, ComponentError, Invocation};
use crate::substrate::DomainContext;

/// Replies with the request payload.
#[derive(Debug, Default)]
pub struct Echo;

impl Component for Echo {
    fn label(&self) -> &str {
        "echo"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        Ok(inv.data.to_vec())
    }
}

/// Replies with the kernel-delivered badge (little-endian u64) — used to
/// check that client identity comes from the substrate, not the message.
#[derive(Debug, Default)]
pub struct BadgeReporter;

impl Component for BadgeReporter {
    fn label(&self) -> &str {
        "badge-reporter"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        Ok(inv.badge.0.to_le_bytes().to_vec())
    }
}

/// A stateful counter: increments per call, replying with the new value.
/// Exercises component state retention across invocations.
#[derive(Debug, Default)]
pub struct Counter {
    count: u64,
}

impl Component for Counter {
    fn label(&self) -> &str {
        "counter"
    }
    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        _inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        self.count += 1;
        Ok(self.count.to_le_bytes().to_vec())
    }
}

/// Seals / unseals through the substrate: request `s:<data>` seals,
/// `u:<blob>` unseals. Exercises sealed storage.
#[derive(Debug, Default)]
pub struct Sealer;

impl Component for Sealer {
    fn label(&self) -> &str {
        "sealer"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        match inv.data.split_first() {
            Some((b's', rest)) => ctx
                .seal(&rest[1..])
                .map_err(|e| ComponentError::new(format!("seal: {e}"))),
            Some((b'u', rest)) => ctx
                .unseal(&rest[1..])
                .map_err(|e| ComponentError::new(format!("unseal: {e}"))),
            _ => Err(ComponentError::new("expected s:<data> or u:<blob>")),
        }
    }
}

/// Writes the request into private memory, reads it back, and replies
/// with what it read — exercises the domain-private memory path.
#[derive(Debug, Default)]
pub struct MemoryScribe;

impl Component for MemoryScribe {
    fn label(&self) -> &str {
        "memory-scribe"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        ctx.mem_write(0, inv.data)
            .map_err(|e| ComponentError::new(format!("write: {e}")))?;
        ctx.mem_read(0, inv.data.len())
            .map_err(|e| ComponentError::new(format!("read: {e}")))
    }
}

/// Produces attestation evidence bound to the request payload, replying
/// with the serialized evidence (measurement ‖ platform_key ‖ signature).
#[derive(Debug, Default)]
pub struct Attester;

impl Component for Attester {
    fn label(&self) -> &str {
        "attester"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let ev = ctx
            .attest(inv.data)
            .map_err(|e| ComponentError::new(format!("attest: {e}")))?;
        let mut out = Vec::new();
        out.extend_from_slice(ev.measurement.as_bytes());
        out.extend_from_slice(&ev.platform_key);
        out.extend_from_slice(&ev.signature);
        Ok(out)
    }
}

/// Forwards every request over its first granted capability — the minimal
/// "proxy" shape used in chains (A → proxy → B). The capability is
/// discovered at call time via the cap-space enumeration, so the composer
/// can wire the chain after all domains exist.
#[derive(Debug, Default)]
pub struct Forwarder;

impl Component for Forwarder {
    fn label(&self) -> &str {
        "forwarder"
    }
    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let caps = ctx
            .caps()
            .map_err(|e| ComponentError::new(format!("caps: {e}")))?;
        let cap = caps
            .first()
            .ok_or_else(|| ComponentError::new("forwarder has no outbound channel"))?;
        ctx.call(cap, inv.data)
            .map_err(|e| ComponentError::new(format!("forward: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::Badge;
    use crate::software::SoftwareSubstrate;
    use crate::substrate::{DomainSpec, Substrate};

    #[test]
    fn counter_accumulates_across_calls() {
        let mut s = SoftwareSubstrate::new("tk counter");
        let c = s
            .spawn(DomainSpec::named("counter"), Box::new(Counter::default()))
            .unwrap();
        let d = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(d, c, Badge(0)).unwrap();
        for expected in 1u64..=3 {
            let r = s.invoke(d, &cap, b"").unwrap();
            assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), expected);
        }
    }

    #[test]
    fn sealer_roundtrip_on_software_substrate() {
        let mut s = SoftwareSubstrate::new("tk sealer");
        let sealer = s
            .spawn(DomainSpec::named("sealer"), Box::new(Sealer))
            .unwrap();
        let d = s.spawn(DomainSpec::named("driver"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(d, sealer, Badge(0)).unwrap();
        let sealed = s.invoke(d, &cap, b"s:top secret").unwrap();
        let mut req = b"u:".to_vec();
        req.extend_from_slice(&sealed);
        assert_eq!(s.invoke(d, &cap, &req).unwrap(), b"top secret");
    }

    #[test]
    fn memory_scribe_roundtrips() {
        let mut s = SoftwareSubstrate::new("tk scribe");
        let m = s
            .spawn(DomainSpec::named("scribe"), Box::new(MemoryScribe))
            .unwrap();
        let d = s.spawn(DomainSpec::named("driver"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(d, m, Badge(0)).unwrap();
        assert_eq!(s.invoke(d, &cap, b"hello memory").unwrap(), b"hello memory");
    }

    #[test]
    fn forwarder_relays_through_discovered_cap() {
        let mut s = SoftwareSubstrate::new("tk fwd");
        let dest = s.spawn(DomainSpec::named("dest"), Box::new(Echo)).unwrap();
        let proxy = s
            .spawn(DomainSpec::named("proxy"), Box::new(Forwarder))
            .unwrap();
        s.grant_channel(proxy, dest, Badge(5)).unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let drive_cap = s.grant_channel(driver, proxy, Badge(1)).unwrap();
        assert_eq!(
            s.invoke(driver, &drive_cap, b"two hops").unwrap(),
            b"two hops"
        );
    }

    #[test]
    fn forwarder_without_channel_reports_cleanly() {
        let mut s = SoftwareSubstrate::new("tk fwd2");
        let proxy = s
            .spawn(DomainSpec::named("proxy"), Box::new(Forwarder))
            .unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(driver, proxy, Badge(1)).unwrap();
        assert!(matches!(
            s.invoke(driver, &cap, b"x"),
            Err(crate::SubstrateError::ComponentFailure(_))
        ));
    }
}
