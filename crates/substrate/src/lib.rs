//! The unified isolation interface — the paper's central proposal.
//!
//! §III-A: *"This interface should do for isolation mechanisms what POSIX
//! did for the UNIX system call interface: allow application code to be
//! independent of the underlying implementation."* This crate is that
//! interface. Trusted components are written once against
//! [`component::Component`] and [`substrate::DomainContext`], and run
//! unmodified on every backend — the microkernel, TrustZone, SGX, SEP,
//! the Flicker late-launch substrate, or the pure-software substrate in
//! [`software`].
//!
//! The crate contains:
//!
//! * [`attacker`] — the attacker-model taxonomy of §II-D and the
//!   [`attacker::SubstrateProfile`] each backend advertises, so that
//!   "choices are made deliberately and not based on fashionability of a
//!   new hardware feature".
//! * [`cap`] — capabilities that *bundle communication right and context
//!   identification* (badges), the paper's §III-C tool against confused
//!   deputies.
//! * [`component`] — the trusted-component programming model.
//! * [`substrate`] — the [`substrate::Substrate`] trait itself plus the
//!   [`substrate::DomainContext`] services components see.
//! * [`fabric`] — the shared engine behind every backend: domain
//!   lifecycle, capability checks, reentrancy, tracing, and stats are
//!   implemented once; backends plug in via [`fabric::BackendPolicy`].
//! * [`fault`] — deterministic fault injection: a [`fault::FaultPlan`]
//!   installed into the fabric crashes, denies, or corrupts at exact
//!   logical positions, reproducibly, for the E10 recovery experiment.
//! * [`shard`] — the sharded multi-core fabric: N per-shard engines
//!   behind one [`substrate::Substrate`] surface, with deterministic
//!   placement, an explicit cross-shard crossing class, and a
//!   deterministic `(epoch, shard, seq)` trace merge (experiment E14).
//! * [`attest`] — substrate-independent attestation evidence and the
//!   verifier's trust policy.
//! * [`software`] — a reference backend isolating purely by the Rust type
//!   system (§II-B "Pure Software Isolation"; compiler in the TCB).
//! * [`conformance`] — the executable version of Figure 2: a suite that
//!   checks any backend implements the common structural template
//!   (experiment E2).
//!
//! # Example
//!
//! ```
//! use lateral_substrate::component::{Component, ComponentError, Invocation};
//! use lateral_substrate::software::SoftwareSubstrate;
//! use lateral_substrate::substrate::{DomainContext, DomainSpec, Substrate};
//!
//! struct Greeter;
//! impl Component for Greeter {
//!     fn label(&self) -> &str { "greeter" }
//!     fn on_call(
//!         &mut self,
//!         _ctx: &mut dyn DomainContext,
//!         inv: Invocation<'_>,
//!     ) -> Result<Vec<u8>, ComponentError> {
//!         Ok([b"hello, ", inv.data].concat())
//!     }
//! }
//!
//! # fn main() -> Result<(), lateral_substrate::SubstrateError> {
//! let mut sub = SoftwareSubstrate::new("demo");
//! let client = sub.spawn(DomainSpec::named("client"), Box::new(Greeter))?;
//! let server = sub.spawn(DomainSpec::named("server"), Box::new(Greeter))?;
//! let cap = sub.grant_channel(client, server, lateral_substrate::cap::Badge(1))?;
//! let reply = sub.invoke(client, &cap, b"world")?;
//! assert_eq!(reply, b"hello, world");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod attest;
pub mod cap;
pub mod component;
pub mod conformance;
pub mod fabric;
pub mod fault;
pub mod shard;
pub mod software;
pub mod substrate;
pub mod testkit;

use std::error::Error;
use std::fmt;

/// Identifies an isolated protection domain within one substrate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// Errors surfaced by the unified substrate interface.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SubstrateError {
    /// The named domain does not exist (or was destroyed).
    NoSuchDomain(DomainId),
    /// An invocation presented an invalid, foreign, or revoked capability.
    InvalidCapability(String),
    /// The isolation substrate blocked the operation (POLA violation,
    /// memory-rights violation, world mismatch, …).
    AccessDenied(String),
    /// Synchronous re-entry into a domain already on the call stack —
    /// sync IPC would deadlock here.
    Reentrancy(DomainId),
    /// The target domain fail-stopped (an injected or real crash) and
    /// awaits supervised destruction and respawn; callers see this for
    /// the bounded unavailability window.
    DomainCrashed(DomainId),
    /// The target component returned an application-level failure.
    ComponentFailure(String),
    /// The backend does not implement the requested optional feature.
    Unsupported(String),
    /// Resource exhaustion (frames, domain slots, cap slots).
    OutOfResources(String),
    /// A cryptographic check failed (unsealing, attestation).
    CryptoFailure(String),
    /// A bounded ingest queue is full — explicit backpressure. The
    /// caller must defer and retry on its own schedule; the work was
    /// *not* enqueued and will not run.
    Overloaded(String),
    /// Backend-specific failure with context.
    Platform(String),
}

impl fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateError::NoSuchDomain(d) => write!(f, "no such domain {d}"),
            SubstrateError::InvalidCapability(r) => write!(f, "invalid capability: {r}"),
            SubstrateError::AccessDenied(r) => write!(f, "access denied: {r}"),
            SubstrateError::Reentrancy(d) => write!(f, "re-entrant call into {d}"),
            SubstrateError::DomainCrashed(d) => write!(f, "{d} crashed, awaiting restart"),
            SubstrateError::ComponentFailure(r) => write!(f, "component failure: {r}"),
            SubstrateError::Unsupported(r) => write!(f, "unsupported on this substrate: {r}"),
            SubstrateError::OutOfResources(r) => write!(f, "out of resources: {r}"),
            SubstrateError::CryptoFailure(r) => write!(f, "crypto failure: {r}"),
            SubstrateError::Overloaded(r) => write!(f, "overloaded: {r}"),
            SubstrateError::Platform(r) => write!(f, "platform error: {r}"),
        }
    }
}

impl Error for SubstrateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_id_displays() {
        assert_eq!(DomainId(3).to_string(), "domain3");
    }

    #[test]
    fn errors_display() {
        assert!(SubstrateError::NoSuchDomain(DomainId(1))
            .to_string()
            .contains("domain1"));
        assert!(SubstrateError::AccessDenied("pola".into())
            .to_string()
            .contains("pola"));
    }
}
