//! Deterministic fault injection for the substrate fabric.
//!
//! A [`FaultPlan`] is a declarative schedule of failures — crash on the
//! Nth invocation, fail-stop on spawn, channel-grant denial, seal
//! corruption — installed into a [`crate::fabric::Fabric`] before a run.
//! Faults select their victim by *domain name*, not id, so a plan keeps
//! applying across respawns (a supervised restart allocates a fresh
//! [`crate::DomainId`], but the successor keeps the manifest name).
//!
//! Everything is counted on the fabric's own operation stream: the
//! "Nth invocation" is the Nth capability-validated dispatch attempt at
//! the victim, independent of wall-clock or scheduling. Combined with
//! the simulator's logical clock this makes fault schedules perfectly
//! reproducible — two identical runs inject at identical trace
//! positions and produce byte-identical fault traces
//! ([`crate::fabric::Fabric::trace_bytes`]), which `scripts/check.sh`
//! enforces for the E10 recovery sweep.
//!
//! Transient vs. permanent: a *transient* fault fires exactly once (the
//! Nth matching operation) and never again — a supervised restart then
//! sticks, modelling a heisenbug or a single-event upset. A *persistent*
//! fault keeps firing on every matching operation from the Nth onward —
//! each respawned incarnation dies again, exhausting the component's
//! restart budget and driving the supervisor's quarantine path.

/// The operation class a fault intercepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Fail-stop the victim during an invocation: the dispatch is
    /// aborted, the domain is marked crashed, and every later call into
    /// it fails with [`crate::SubstrateError::DomainCrashed`] until a
    /// supervisor destroys and respawns it.
    Crash,
    /// Abort a spawn of the victim (by name) before its component
    /// starts — models image-load and resource failures during restart.
    FailSpawn,
    /// Deny a channel grant *into* the victim — models a capability
    /// authority refusing reconnection.
    DenyGrant,
    /// Silently corrupt the output of the victim's next seal operation
    /// — the blob is returned, but unsealing it later fails its
    /// integrity check.
    CorruptSeal,
}

impl FaultKind {
    /// Stable short name (reports, traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::FailSpawn => "fail-spawn",
            FaultKind::DenyGrant => "deny-grant",
            FaultKind::CorruptSeal => "corrupt-seal",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: *which* operation class, against *which* domain
/// name, firing on the *Nth* matching operation, once or persistently.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSpec {
    /// Victim selector: the domain's diagnostic name
    /// ([`crate::substrate::DomainSpec::name`]). Name-based so the spec
    /// survives respawns, which change the id but not the name.
    pub domain: String,
    /// The operation class intercepted.
    pub kind: FaultKind,
    /// Fires on the `after`-th matching operation (1-based). `after ==
    /// 1` fires immediately on the first match.
    pub after: u64,
    /// `false`: fire exactly once (transient). `true`: fire on every
    /// matching operation from the `after`-th onward (permanent).
    pub persistent: bool,
}

impl FaultSpec {
    /// A transient crash on the `nth` invocation of `domain`.
    pub fn crash(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::Crash,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient fail-stop on the `nth` spawn of `domain`.
    pub fn fail_spawn(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::FailSpawn,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient denial of the `nth` channel grant into `domain`.
    pub fn deny_grant(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::DenyGrant,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient corruption of the `nth` seal performed by `domain`.
    pub fn corrupt_seal(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::CorruptSeal,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// Marks the fault permanent: it fires on every matching operation
    /// from the `after`-th onward (each respawn dies again).
    #[must_use]
    pub fn permanent(mut self) -> FaultSpec {
        self.persistent = true;
        self
    }
}

/// A deterministic schedule of [`FaultSpec`]s plus the per-spec match
/// counters the fabric advances as operations stream past. Installed
/// via [`crate::fabric::Fabric::install_fault_plan`].
#[derive(Clone, Default, Debug)]
pub struct FaultPlan {
    specs: Vec<(FaultSpec, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: adds a spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.push(spec);
        self
    }

    /// Adds a spec.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push((spec, 0));
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates the scheduled specs (counters not exposed).
    pub fn specs(&self) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().map(|(s, _)| s)
    }

    /// Advances every spec matching `(domain, kind)` by one observed
    /// operation and reports whether any of them fires now. Transient
    /// specs fire exactly on their `after`-th match; persistent specs
    /// fire on every match from the `after`-th onward.
    pub fn observe(&mut self, domain: &str, kind: FaultKind) -> bool {
        let mut fire = false;
        for (spec, seen) in &mut self.specs {
            if spec.kind != kind || spec.domain != domain {
                continue;
            }
            *seen += 1;
            if *seen == spec.after || (spec.persistent && *seen > spec.after) {
                fire = true;
            }
        }
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_exactly_once() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 3));
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn permanent_keeps_firing() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 2).permanent());
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn selector_is_name_and_kind() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 1));
        assert!(!plan.observe("other", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::FailSpawn));
        assert!(plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn independent_counters_per_spec() {
        let mut plan = FaultPlan::new()
            .with(FaultSpec::crash("a", 1))
            .with(FaultSpec::fail_spawn("a", 2));
        assert!(plan.observe("a", FaultKind::Crash));
        assert!(!plan.observe("a", FaultKind::FailSpawn));
        assert!(plan.observe("a", FaultKind::FailSpawn));
    }
}
