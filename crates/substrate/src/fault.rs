//! Deterministic fault injection for the substrate fabric.
//!
//! A [`FaultPlan`] is a declarative schedule of failures — crash on the
//! Nth invocation, fail-stop on spawn, channel-grant denial, seal
//! corruption — installed into a [`crate::fabric::Fabric`] before a run.
//! Faults select their victim by *domain name*, not id, so a plan keeps
//! applying across respawns (a supervised restart allocates a fresh
//! [`crate::DomainId`], but the successor keeps the manifest name).
//!
//! Everything is counted on the fabric's own operation stream: the
//! "Nth invocation" is the Nth capability-validated dispatch attempt at
//! the victim, independent of wall-clock or scheduling. Combined with
//! the simulator's logical clock this makes fault schedules perfectly
//! reproducible — two identical runs inject at identical trace
//! positions and produce byte-identical fault traces
//! ([`crate::fabric::Fabric::trace_bytes`]), which `scripts/check.sh`
//! enforces for the E10 recovery sweep.
//!
//! Transient vs. permanent: a *transient* fault fires exactly once (the
//! Nth matching operation) and never again — a supervised restart then
//! sticks, modelling a heisenbug or a single-event upset. A *persistent*
//! fault keeps firing on every matching operation from the Nth onward —
//! each respawned incarnation dies again, exhausting the component's
//! restart budget and driving the supervisor's quarantine path.

/// The operation class a fault intercepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Fail-stop the victim during an invocation: the dispatch is
    /// aborted, the domain is marked crashed, and every later call into
    /// it fails with [`crate::SubstrateError::DomainCrashed`] until a
    /// supervisor destroys and respawns it.
    Crash,
    /// Abort a spawn of the victim (by name) before its component
    /// starts — models image-load and resource failures during restart.
    FailSpawn,
    /// Deny a channel grant *into* the victim — models a capability
    /// authority refusing reconnection.
    DenyGrant,
    /// Silently corrupt the output of the victim's next seal operation
    /// — the blob is returned, but unsealing it later fails its
    /// integrity check.
    CorruptSeal,
}

impl FaultKind {
    /// Stable short name (reports, traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::FailSpawn => "fail-spawn",
            FaultKind::DenyGrant => "deny-grant",
            FaultKind::CorruptSeal => "corrupt-seal",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: *which* operation class, against *which* domain
/// name, firing on the *Nth* matching operation, once or persistently.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSpec {
    /// Victim selector: the domain's diagnostic name
    /// ([`crate::substrate::DomainSpec::name`]). Name-based so the spec
    /// survives respawns, which change the id but not the name.
    pub domain: String,
    /// The operation class intercepted.
    pub kind: FaultKind,
    /// Fires on the `after`-th matching operation (1-based). `after ==
    /// 1` fires immediately on the first match.
    pub after: u64,
    /// `false`: fire exactly once (transient). `true`: fire on every
    /// matching operation from the `after`-th onward (permanent).
    pub persistent: bool,
}

impl FaultSpec {
    /// A transient crash on the `nth` invocation of `domain`.
    pub fn crash(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::Crash,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient fail-stop on the `nth` spawn of `domain`.
    pub fn fail_spawn(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::FailSpawn,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient denial of the `nth` channel grant into `domain`.
    pub fn deny_grant(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::DenyGrant,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// A transient corruption of the `nth` seal performed by `domain`.
    pub fn corrupt_seal(domain: &str, nth: u64) -> FaultSpec {
        FaultSpec {
            domain: domain.to_string(),
            kind: FaultKind::CorruptSeal,
            after: nth.max(1),
            persistent: false,
        }
    }

    /// Marks the fault permanent: it fires on every matching operation
    /// from the `after`-th onward (each respawn dies again).
    #[must_use]
    pub fn permanent(mut self) -> FaultSpec {
        self.persistent = true;
        self
    }
}

/// A deterministic schedule of [`FaultSpec`]s plus the per-spec match
/// counters the fabric advances as operations stream past. Installed
/// via [`crate::fabric::Fabric::install_fault_plan`].
#[derive(Clone, Default, Debug)]
pub struct FaultPlan {
    specs: Vec<(FaultSpec, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: adds a spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.push(spec);
        self
    }

    /// Adds a spec.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push((spec, 0));
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates the scheduled specs (counters not exposed).
    pub fn specs(&self) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().map(|(s, _)| s)
    }

    /// Advances every spec matching `(domain, kind)` by one observed
    /// operation and reports whether any of them fires now. Transient
    /// specs fire exactly on their `after`-th match; persistent specs
    /// fire on every match from the `after`-th onward.
    pub fn observe(&mut self, domain: &str, kind: FaultKind) -> bool {
        let mut fire = false;
        for (spec, seen) in &mut self.specs {
            if spec.kind != kind || spec.domain != domain {
                continue;
            }
            *seen += 1;
            if *seen == spec.after || (spec.persistent && *seen > spec.after) {
                fire = true;
            }
        }
        fire
    }
}

/// What a fleet-scope churn event does when its tick arrives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChurnKind {
    /// Crash a deterministic fraction of the fleet, expressed in parts
    /// per million (10_000 ppm = 1%). Victim selection is a pure
    /// function of `(tick, member id)` — see [`ChurnEvent::selects`] —
    /// so two runs (and all backends) crash the same members.
    CrashFraction {
        /// Crash probability threshold in parts per million.
        ppm: u32,
    },
    /// Revoke a firmware image (by registry name) mid-fleet — the
    /// recall. The world layer resolves the name to a digest, revokes
    /// it in the registry, and quarantines every member running it.
    Recall {
        /// Registry name of the recalled image.
        image: String,
    },
    /// A web-of-trust distrust wave against a firmware image (by
    /// registry name): the world layer ingests distrust review proofs
    /// into the registry's trust graph, dropping the image's score
    /// below the admission threshold, and every member running it must
    /// quarantine — a recall driven by reputation, not by a publisher
    /// revocation.
    DistrustWave {
        /// Registry name of the distrusted image.
        image: String,
    },
}

/// One scheduled fleet-churn event: *what* happens at *which* logical
/// tick. Unlike [`FaultSpec`], which counts per-domain operations,
/// churn events fire on the world's logical clock and target the fleet
/// as a whole.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChurnEvent {
    /// The logical tick this event fires at.
    pub at: u64,
    /// What happens.
    pub kind: ChurnKind,
}

impl ChurnEvent {
    /// A crash event: at tick `at`, each fleet member independently
    /// crashes with probability `ppm`/1_000_000.
    pub fn crash_fraction(at: u64, ppm: u32) -> ChurnEvent {
        ChurnEvent {
            at,
            kind: ChurnKind::CrashFraction {
                ppm: ppm.min(1_000_000),
            },
        }
    }

    /// A firmware recall: at tick `at`, the image named `image` is
    /// revoked and every member running it must quarantine.
    pub fn recall(at: u64, image: &str) -> ChurnEvent {
        ChurnEvent {
            at,
            kind: ChurnKind::Recall {
                image: image.to_string(),
            },
        }
    }

    /// A distrust wave: at tick `at`, the reviewer cohort turns on the
    /// image named `image` and every member running it must quarantine.
    pub fn distrust_wave(at: u64, image: &str) -> ChurnEvent {
        ChurnEvent {
            at,
            kind: ChurnKind::DistrustWave {
                image: image.to_string(),
            },
        }
    }

    /// Deterministic victim selection for [`ChurnKind::CrashFraction`]:
    /// returns whether member `id` crashes in this event. A pure
    /// splitmix-style hash of `(at, id)` reduced mod 1_000_000 and
    /// compared against the ppm threshold — no RNG state, so selection
    /// is identical across runs, backends, and replay.
    #[must_use]
    pub fn selects(&self, id: u64) -> bool {
        let ChurnKind::CrashFraction { ppm } = &self.kind else {
            return false;
        };
        let mut x = self
            .at
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 29;
        (x % 1_000_000) < u64::from(*ppm)
    }
}

/// A deterministic fleet-churn schedule: [`ChurnEvent`]s ordered by
/// tick, fired exactly once each as the world clock passes them. The
/// fleet-scope sibling of [`FaultPlan`] — where a `FaultPlan` scripts
/// one domain's operation stream, a `ChurnPlan` scripts population-
/// level failure (mass crashes, firmware recalls) on the logical clock.
#[derive(Clone, Default, Debug)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn new() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// Builder-style: adds an event, keeping the schedule tick-sorted
    /// (stable for same-tick events: insertion order).
    #[must_use]
    pub fn with(mut self, event: ChurnEvent) -> ChurnPlan {
        self.push(event);
        self
    }

    /// Adds an event, keeping the schedule tick-sorted.
    pub fn push(&mut self, event: ChurnEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// Number of scheduled events (fired or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the scheduled events in tick order.
    pub fn events(&self) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter()
    }

    /// Events due at exactly `tick`, in schedule order. The world layer
    /// calls this once per tick; events are a pure schedule, so the
    /// plan needs no mutable fired-state.
    pub fn due(&self, tick: u64) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.at == tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_exactly_once() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 3));
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn permanent_keeps_firing() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 2).permanent());
        assert!(!plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
        assert!(plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn selector_is_name_and_kind() {
        let mut plan = FaultPlan::new().with(FaultSpec::crash("w", 1));
        assert!(!plan.observe("other", FaultKind::Crash));
        assert!(!plan.observe("w", FaultKind::FailSpawn));
        assert!(plan.observe("w", FaultKind::Crash));
    }

    #[test]
    fn independent_counters_per_spec() {
        let mut plan = FaultPlan::new()
            .with(FaultSpec::crash("a", 1))
            .with(FaultSpec::fail_spawn("a", 2));
        assert!(plan.observe("a", FaultKind::Crash));
        assert!(!plan.observe("a", FaultKind::FailSpawn));
        assert!(plan.observe("a", FaultKind::FailSpawn));
    }

    #[test]
    fn churn_plan_is_tick_sorted_and_due_is_exact() {
        let plan = ChurnPlan::new()
            .with(ChurnEvent::recall(20, "fw-v2"))
            .with(ChurnEvent::crash_fraction(5, 10_000))
            .with(ChurnEvent::crash_fraction(20, 50_000));
        let ticks: Vec<u64> = plan.events().map(|e| e.at).collect();
        assert_eq!(ticks, [5, 20, 20]);
        assert_eq!(plan.due(5).count(), 1);
        // Same-tick events keep insertion order: recall first.
        let at20: Vec<&ChurnEvent> = plan.due(20).collect();
        assert_eq!(at20.len(), 2);
        assert!(matches!(at20[0].kind, ChurnKind::Recall { .. }));
        assert_eq!(plan.due(6).count(), 0);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn churn_selection_is_deterministic_and_near_rate() {
        // 1% of a 100k population: the hash-based selector must pick a
        // stable set close to the nominal rate, and two evaluations
        // must agree exactly.
        let ev = ChurnEvent::crash_fraction(42, 10_000);
        let picked: Vec<u64> = (0..100_000).filter(|&id| ev.selects(id)).collect();
        let again: Vec<u64> = (0..100_000).filter(|&id| ev.selects(id)).collect();
        assert_eq!(picked, again);
        assert!(
            (800..1200).contains(&picked.len()),
            "1% of 100k should select ~1000, got {}",
            picked.len()
        );
        // Different ticks select different victim sets.
        let other = ChurnEvent::crash_fraction(43, 10_000);
        assert_ne!(
            picked,
            (0..100_000)
                .filter(|&id| other.selects(id))
                .collect::<Vec<u64>>()
        );
        // Recalls and distrust waves never select crash victims.
        assert!(!ChurnEvent::recall(1, "fw").selects(7));
        assert!(!ChurnEvent::distrust_wave(1, "fw").selects(7));
        // ppm 0 selects nobody; ppm 1_000_000 selects everybody.
        assert!(!(0..1000).any(|id| ChurnEvent::crash_fraction(9, 0).selects(id)));
        assert!((0..1000).all(|id| ChurnEvent::crash_fraction(9, 1_000_000).selects(id)));
    }
}
