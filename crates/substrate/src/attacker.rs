//! Attacker models and substrate profiles.
//!
//! §II-D: *"different solutions address different attacker models. The
//! assumed capacity to execute attacks ranges from remotely exploiting
//! software vulnerabilities to physical manipulation of the hardware."*
//! The section derives four incremental hardware requirements — basic
//! access control, memory placement/encryption, a trust anchor, and a
//! restricted secret. [`AttackerModel`] enumerates the attacker ladder and
//! [`SubstrateProfile`] records which rungs a given substrate defends
//! against, enabling the deliberate, requirement-driven substrate choice
//! the paper calls for (and the E9 matrix experiment).

use std::collections::BTreeSet;
use std::fmt;

/// The ladder of assumed attacker capabilities.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum AttackerModel {
    /// Remote attacker exploiting software vulnerabilities in *other*
    /// components of the same system (the baseline every isolation
    /// substrate must handle — requires basic access control).
    RemoteSoftware,
    /// A fully compromised legacy OS / privileged software on the same
    /// machine (the SGX data-center scenario: distrust the host OS).
    CompromisedOs,
    /// A malicious DMA-capable device or the driver commanding it.
    MaliciousDevice,
    /// Physical access to the memory bus: probing and tampering DRAM
    /// (requires memory placement control and encryption).
    PhysicalBus,
    /// Physical manipulation of the boot process / code at rest (requires
    /// an unchangeable trust anchor enforcing a launch policy).
    PhysicalBoot,
}

impl AttackerModel {
    /// All models, weakest to strongest.
    pub const ALL: [AttackerModel; 5] = [
        AttackerModel::RemoteSoftware,
        AttackerModel::CompromisedOs,
        AttackerModel::MaliciousDevice,
        AttackerModel::PhysicalBus,
        AttackerModel::PhysicalBoot,
    ];
}

impl fmt::Display for AttackerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackerModel::RemoteSoftware => "remote-software",
            AttackerModel::CompromisedOs => "compromised-os",
            AttackerModel::MaliciousDevice => "malicious-device",
            AttackerModel::PhysicalBus => "physical-bus",
            AttackerModel::PhysicalBoot => "physical-boot",
        };
        f.write_str(s)
    }
}

/// Feature set a substrate implements (§II-D's incremental requirements
/// plus the practical capabilities the composer needs to know about).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Features {
    /// Spatial isolation between domains (memory access control).
    pub spatial_isolation: bool,
    /// Temporal isolation with covert-channel mitigation (time
    /// partitioning + cache flush) — the microkernel's distinguishing
    /// strength in §II-C.
    pub temporal_isolation: bool,
    /// Memory encryption against bus-level physical attackers.
    pub memory_encryption: bool,
    /// An unchangeable trust anchor in the launch path.
    pub trust_anchor: bool,
    /// A restricted hardware secret enabling attestation.
    pub attestation: bool,
    /// Sealed storage bound to code identity.
    pub sealed_storage: bool,
    /// Maximum number of concurrently isolated trusted domains
    /// (`None` = effectively unbounded). TrustZone has exactly one secure
    /// world; SEP is a single fixed environment.
    pub max_trusted_domains: Option<usize>,
    /// Whether an entire unmodified/paravirtualized legacy OS can be
    /// hosted as one domain.
    pub hosts_legacy_os: bool,
}

/// The self-description every substrate publishes.
#[derive(Clone, Debug)]
pub struct SubstrateProfile {
    /// Substrate name ("microkernel", "trustzone", "sgx", "sep",
    /// "software").
    pub name: String,
    /// Attacker models this substrate defends trusted components against.
    pub defends: BTreeSet<AttackerModel>,
    /// Implemented features.
    pub features: Features,
    /// Approximate lines of code in the substrate's TCB — used by the E7
    /// TCB accounting. (Values for real systems: seL4 ≈ 10 kLoC; an
    /// SGX-class CPU adds "likely many thousands of lines" of microcode,
    /// §II-C.)
    pub tcb_loc: u64,
}

impl SubstrateProfile {
    /// Whether this substrate defends against `model`.
    pub fn defends_against(&self, model: AttackerModel) -> bool {
        self.defends.contains(&model)
    }

    /// Whether this substrate defends against *all* of `required`.
    pub fn satisfies(&self, required: &BTreeSet<AttackerModel>) -> bool {
        required.iter().all(|m| self.defends.contains(m))
    }
}

/// Builds an attacker-model set from a slice (convenience for manifests).
pub fn models(list: &[AttackerModel]) -> BTreeSet<AttackerModel> {
    list.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(defends: &[AttackerModel]) -> SubstrateProfile {
        SubstrateProfile {
            name: "test".into(),
            defends: models(defends),
            features: Features {
                spatial_isolation: true,
                temporal_isolation: false,
                memory_encryption: false,
                trust_anchor: false,
                attestation: false,
                sealed_storage: false,
                max_trusted_domains: None,
                hosts_legacy_os: false,
            },
            tcb_loc: 10_000,
        }
    }

    #[test]
    fn defends_against_is_exact() {
        let p = profile(&[AttackerModel::RemoteSoftware, AttackerModel::CompromisedOs]);
        assert!(p.defends_against(AttackerModel::RemoteSoftware));
        assert!(!p.defends_against(AttackerModel::PhysicalBus));
    }

    #[test]
    fn satisfies_requires_superset() {
        let p = profile(&[
            AttackerModel::RemoteSoftware,
            AttackerModel::CompromisedOs,
            AttackerModel::PhysicalBus,
        ]);
        assert!(p.satisfies(&models(&[AttackerModel::RemoteSoftware])));
        assert!(p.satisfies(&models(&[
            AttackerModel::RemoteSoftware,
            AttackerModel::PhysicalBus
        ])));
        assert!(!p.satisfies(&models(&[AttackerModel::PhysicalBoot])));
        assert!(p.satisfies(&BTreeSet::new()), "empty requirement");
    }

    #[test]
    fn ladder_is_ordered() {
        let all = AttackerModel::ALL;
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display_names_are_kebab_case() {
        assert_eq!(AttackerModel::PhysicalBus.to_string(), "physical-bus");
    }
}
