//! The substrate **fabric**: one engine owning the mechanics every
//! backend used to duplicate — domain lifecycle, capability/badge
//! checks, reentrancy guards, channel grant/revoke, sealing dispatch,
//! and attestation-evidence assembly — parameterized by the small
//! [`BackendPolicy`] hook trait through which a backend contributes
//! only *policy*: memory placement, world/transition rules, its
//! crossing-cost model, and key derivation.
//!
//! The paper's §III-A demand is a *single* unified isolation interface;
//! before this module each of the six backends re-implemented the same
//! spawn/channel/invoke/seal/attest template around a copied
//! [`DomainTable`], so the E2 conformance matrix partly measured
//! implementation accidents. With the fabric, the mechanism exists
//! once: a backend that type-checks against [`BackendPolicy`] is
//! uniform by construction.
//!
//! The engine also threads a deterministic observability layer through
//! every invocation: a [`TraceEvent`] on the logical clock (caller,
//! callee, badge, payload size, crossing kind, cost, outcome) lands in
//! a bounded ring buffer, and per-domain / per-channel / per-crossing
//! counters are exposed through [`FabricStats`]. Because the simulator
//! is fully deterministic, two identical runs produce byte-identical
//! trace buffers ([`Fabric::trace_bytes`]) — the uniform measurement
//! layer the E4 cost ladder and the repro tables read from.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use lateral_crypto::Digest;
use lateral_telemetry::profile::CrossingProfile;
use lateral_telemetry::{outcome as span_outcome, CounterId, HistogramId, LabelId, Telemetry};

use crate::attest::AttestationEvidence;
use crate::cap::{Badge, CapTable, ChannelCap};
use crate::component::{Component, ComponentError, Invocation};
use crate::fault::{FaultKind, FaultPlan};
use crate::substrate::{CallCtx, DomainRecord, DomainSpec, DomainTable, Substrate};
use crate::{DomainId, SubstrateError};

/// Default number of trace events retained in the ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Where a domain is placed: inside the backend's trusted environment
/// (secure world, enclave, coprocessor, PAL) or alongside the untrusted
/// legacy software (normal world, host process).
///
/// Backends without a trusted/untrusted split ignore the distinction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// The backend's protected environment (the default for
    /// [`Substrate::spawn`]).
    Trusted,
    /// The untrusted side — normal world, host process, legacy OS.
    Untrusted,
}

/// How an invocation crosses (or does not cross) an isolation boundary.
/// Classified by the backend's [`BackendPolicy::crossing`] hook; the
/// engine uses it for cost charging and the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CrossingKind {
    /// Same protection context — a (dynamic) function call.
    Local,
    /// Kernel-mediated synchronous IPC round trip.
    Ipc,
    /// Secure-monitor world switch (TrustZone SMC pair).
    WorldSwitch,
    /// Enclave boundary (EENTER/EEXIT pair).
    EnclaveTransition,
    /// Coprocessor mailbox round trip (SEP).
    Mailbox,
    /// DRTM late-launch session entry/exit (Flicker).
    LateLaunch,
    /// Hop between two shard engines of a [`crate::shard::ShardFabric`]:
    /// a bounded-inbox round trip between per-core fabrics, charged on
    /// the *caller's* shard clock. The cost is a property of the shard
    /// runtime, not of the intra-shard isolation mechanism, so it is
    /// identical on every backend (see [`crate::shard::xshard_cost`]).
    Shard,
}

impl CrossingKind {
    /// Stable short name (table rendering, serialization).
    pub fn name(self) -> &'static str {
        match self {
            CrossingKind::Local => "local",
            CrossingKind::Ipc => "ipc",
            CrossingKind::WorldSwitch => "smc",
            CrossingKind::EnclaveTransition => "enclave",
            CrossingKind::Mailbox => "mailbox",
            CrossingKind::LateLaunch => "late-launch",
            CrossingKind::Shard => "xshard",
        }
    }

    fn code(self) -> u8 {
        // Codes are append-only so the 50-byte TraceEvent encoding
        // stays stable across PRs.
        match self {
            CrossingKind::Local => 0,
            CrossingKind::Ipc => 1,
            CrossingKind::WorldSwitch => 2,
            CrossingKind::EnclaveTransition => 3,
            CrossingKind::Mailbox => 4,
            CrossingKind::LateLaunch => 5,
            CrossingKind::Shard => 6,
        }
    }

    /// Number of crossing kinds (sizes the fabric's metric-handle cache).
    const COUNT: usize = 7;

    /// Static metric key for this kind's crossing counter — the same
    /// string `format!("crossing.{}", kind.name())` used to build on
    /// every recorded event, now a compile-time constant the fabric
    /// interns once.
    pub fn counter_metric(self) -> &'static str {
        match self {
            CrossingKind::Local => "crossing.local",
            CrossingKind::Ipc => "crossing.ipc",
            CrossingKind::WorldSwitch => "crossing.smc",
            CrossingKind::EnclaveTransition => "crossing.enclave",
            CrossingKind::Mailbox => "crossing.mailbox",
            CrossingKind::LateLaunch => "crossing.late-launch",
            CrossingKind::Shard => "crossing.xshard",
        }
    }

    /// Static metric key for this kind's cost histogram
    /// (`crossing.<name>.cost`).
    pub fn cost_metric(self) -> &'static str {
        match self {
            CrossingKind::Local => "crossing.local.cost",
            CrossingKind::Ipc => "crossing.ipc.cost",
            CrossingKind::WorldSwitch => "crossing.smc.cost",
            CrossingKind::EnclaveTransition => "crossing.enclave.cost",
            CrossingKind::Mailbox => "crossing.mailbox.cost",
            CrossingKind::LateLaunch => "crossing.late-launch.cost",
            CrossingKind::Shard => "crossing.xshard.cost",
        }
    }
}

impl std::fmt::Display for CrossingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a backend classifies an ordinary cross-domain invoke, expressed
/// as *data* so an optimizer can predict the crossing kind of a
/// hypothetical placement without spawning anything. Mirrors the
/// [`BackendPolicy::crossing`] decision of each backend: the inputs are
/// the two endpoints' [`DomainKind`] placements (the only state those
/// decisions consult).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvokeKindRule {
    /// Every invoke is the same kind (software, microkernel, flicker).
    Always(CrossingKind),
    /// Endpoints on the same side (both trusted or both untrusted) use
    /// `same`; crossing the boundary uses `cross` (trustzone worlds,
    /// SEP processor sides).
    SameSideElse {
        /// Kind charged when both endpoints share a side.
        same: CrossingKind,
        /// Kind charged when the invoke crosses the boundary.
        cross: CrossingKind,
    },
    /// Any trusted endpoint (either side) forces `trusted`; a purely
    /// untrusted pair uses `none` (SGX enclave transitions).
    AnyTrusted {
        /// Kind charged when either endpoint is trusted.
        trusted: CrossingKind,
        /// Kind charged when neither endpoint is trusted.
        none: CrossingKind,
    },
}

impl InvokeKindRule {
    /// The crossing kind an invoke between domains of the given
    /// placements would be charged.
    #[must_use]
    pub fn kind(self, caller: DomainKind, target: DomainKind) -> CrossingKind {
        let trusted = |k: DomainKind| matches!(k, DomainKind::Trusted);
        match self {
            InvokeKindRule::Always(kind) => kind,
            InvokeKindRule::SameSideElse { same, cross } => {
                if trusted(caller) == trusted(target) {
                    same
                } else {
                    cross
                }
            }
            InvokeKindRule::AnyTrusted { trusted: t, none } => {
                if trusted(caller) || trusted(target) {
                    t
                } else {
                    none
                }
            }
        }
    }
}

/// One crossing kind's price: `base + bytes * per_byte_num /
/// per_byte_den` cycles — the same affine shape every backend's
/// [`BackendPolicy::crossing_cost`] takes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostEntry {
    /// Fixed cycles per crossing (world switch, IPC round trip, …).
    pub base: u64,
    /// Numerator of the per-byte copy cost.
    pub per_byte_num: u64,
    /// Denominator of the per-byte copy cost (non-zero).
    pub per_byte_den: u64,
}

impl CostEntry {
    /// The price of one crossing carrying `bytes` payload bytes.
    #[must_use]
    pub fn price(&self, bytes: u64) -> u64 {
        self.base + bytes * self.per_byte_num / self.per_byte_den.max(1)
    }

    /// The exact price of `calls` crossings carrying `total_bytes`
    /// between them — the bulk form an optimizer uses to price a
    /// profiled edge without the rounding loss of a per-call average.
    #[must_use]
    pub fn price_bulk(&self, calls: u64, total_bytes: u64) -> u64 {
        calls * self.base + total_bytes * self.per_byte_num / self.per_byte_den.max(1)
    }
}

/// A backend's crossing-cost table *as data*: one [`CostEntry`] per
/// [`CrossingKind`] plus the [`InvokeKindRule`] describing which kind
/// an ordinary invoke is charged. Exposed by
/// [`BackendPolicy::cost_model`] (and `Substrate::cost_model`), this is
/// the introspection surface the placement optimizer prices
/// hypothetical placements against — the same numbers
/// [`BackendPolicy::crossing_cost`] charges at run time, readable
/// without running anything.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrossingCostModel {
    backend: String,
    entries: [CostEntry; CrossingKind::COUNT],
    rule: InvokeKindRule,
}

/// Every crossing kind, in code order (the iteration order of
/// [`CrossingCostModel::entries`]).
pub const ALL_CROSSING_KINDS: [CrossingKind; CrossingKind::COUNT] = [
    CrossingKind::Local,
    CrossingKind::Ipc,
    CrossingKind::WorldSwitch,
    CrossingKind::EnclaveTransition,
    CrossingKind::Mailbox,
    CrossingKind::LateLaunch,
    CrossingKind::Shard,
];

impl CrossingCostModel {
    /// A model charging every kind the same entry — backends whose
    /// `crossing_cost` ignores the kind start here and
    /// [`CrossingCostModel::set`] the exceptions.
    #[must_use]
    pub fn uniform(
        backend: &str,
        base: u64,
        per_byte_num: u64,
        per_byte_den: u64,
        rule: InvokeKindRule,
    ) -> CrossingCostModel {
        CrossingCostModel {
            backend: backend.to_string(),
            entries: [CostEntry {
                base,
                per_byte_num,
                per_byte_den: per_byte_den.max(1),
            }; CrossingKind::COUNT],
            rule,
        }
    }

    /// Overrides the entry for one kind.
    pub fn set(&mut self, kind: CrossingKind, base: u64, per_byte_num: u64, per_byte_den: u64) {
        self.entries[kind.code() as usize] = CostEntry {
            base,
            per_byte_num,
            per_byte_den: per_byte_den.max(1),
        };
    }

    /// The backend this model describes (its profile name).
    #[must_use]
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// The invoke-kind classification rule.
    #[must_use]
    pub fn rule(&self) -> InvokeKindRule {
        self.rule
    }

    /// The entry for one kind.
    #[must_use]
    pub fn entry(&self, kind: CrossingKind) -> &CostEntry {
        &self.entries[kind.code() as usize]
    }

    /// All entries in kind-code order, paired with their kinds.
    pub fn entries(&self) -> impl Iterator<Item = (CrossingKind, &CostEntry)> {
        ALL_CROSSING_KINDS.iter().map(move |&k| (k, self.entry(k)))
    }

    /// The price of one `kind` crossing with `bytes` payload bytes.
    #[must_use]
    pub fn price(&self, kind: CrossingKind, bytes: u64) -> u64 {
        self.entry(kind).price(bytes)
    }

    /// The kind an invoke between the given placements would be
    /// charged.
    #[must_use]
    pub fn invoke_kind(&self, caller: DomainKind, target: DomainKind) -> CrossingKind {
        self.rule.kind(caller, target)
    }

    /// Prices `calls` ordinary invokes carrying `total_bytes` between
    /// domains of the given placements.
    #[must_use]
    pub fn price_invokes(
        &self,
        caller: DomainKind,
        target: DomainKind,
        calls: u64,
        total_bytes: u64,
    ) -> u64 {
        self.entry(self.invoke_kind(caller, target))
            .price_bulk(calls, total_bytes)
    }

    /// Fixed-width introspection table: one line per kind.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (kind, e) in self.entries() {
            let _ = writeln!(
                out,
                "{:12} base {:>8} per-byte {}/{}",
                kind.name(),
                e.base,
                e.per_byte_num,
                e.per_byte_den
            );
        }
        out
    }
}

/// Outcome of a traced invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOutcome {
    /// The component handled the call and replied.
    Ok,
    /// The target was already executing (synchronous re-entry).
    Reentrancy,
    /// The component (or the dispatch below it) failed.
    Failed,
    /// The engine injected a scheduled fault at this point (the
    /// [`crate::fault::FaultPlan`] fired). The event pins the exact
    /// logical position of the injection, which is what makes two
    /// identical runs produce byte-identical fault traces.
    Injected,
    /// The call targeted a domain that already fail-stopped — the
    /// bounded `Unavailable` window callers see until the supervisor
    /// respawns the victim.
    Crashed,
}

impl TraceOutcome {
    /// Stable wire code of this outcome, the last byte of the 50-byte
    /// [`TraceEvent`] encoding. Codes are append-only (new variants
    /// take the next number) so the encoding stays stable across PRs;
    /// the shard merge digest folds them in directly.
    pub fn code(self) -> u8 {
        match self {
            TraceOutcome::Ok => 0,
            TraceOutcome::Reentrancy => 1,
            TraceOutcome::Failed => 2,
            TraceOutcome::Injected => 3,
            TraceOutcome::Crashed => 4,
        }
    }
}

/// One invocation as observed by the engine. Events are recorded when
/// the dispatch completes, so nested calls appear before their parent
/// (completion order) — deterministically so.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (never wraps with the ring).
    pub seq: u64,
    /// Logical clock reading right after the crossing cost was charged.
    pub at: u64,
    /// Invoking domain.
    pub caller: DomainId,
    /// Target domain the capability designated.
    pub callee: DomainId,
    /// Badge delivered with the invocation.
    pub badge: Badge,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// How the invocation crossed (or didn't cross) an isolation
    /// boundary.
    pub crossing: CrossingKind,
    /// Cycles charged for the crossing (payload copy included).
    pub cost: u64,
    /// What happened.
    pub outcome: TraceOutcome,
}

impl TraceEvent {
    /// Appends the canonical little-endian encoding of this event to
    /// `out` — the unit of [`Fabric::trace_bytes`] determinism checks.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.at.to_le_bytes());
        out.extend_from_slice(&self.caller.0.to_le_bytes());
        out.extend_from_slice(&self.callee.0.to_le_bytes());
        out.extend_from_slice(&self.badge.0.to_le_bytes());
        out.extend_from_slice(&self.bytes.to_le_bytes());
        out.extend_from_slice(&self.cost.to_le_bytes());
        out.push(self.crossing.code());
        out.push(self.outcome.code());
    }
}

/// Counters kept per live-or-destroyed domain (attributed to the
/// *caller* side of invocations).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct DomainCounters {
    /// Invocations this domain initiated that reached dispatch.
    pub invocations: u64,
    /// Payload + reply bytes moved by those invocations.
    pub bytes: u64,
    /// Capability presentations the engine rejected (forged, foreign,
    /// revoked, or stale caps).
    pub denials: u64,
    /// Synchronous re-entry attempts that faulted.
    pub reentrancy_faults: u64,
}

/// Counters kept per granted channel, keyed by `(owner, slot)`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChannelCounters {
    /// Successful dispatches through the channel.
    pub invocations: u64,
    /// Payload + reply bytes moved through the channel.
    pub bytes: u64,
}

/// Count and byte volume per [`CrossingKind`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CrossingCounters {
    /// Crossings observed.
    pub count: u64,
    /// Request payload bytes moved across.
    pub bytes: u64,
}

/// The engine's aggregate counters — the uniform measurement layer
/// experiments read instead of instrumenting each backend separately.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FabricStats {
    domains: BTreeMap<DomainId, DomainCounters>,
    channels: BTreeMap<(DomainId, u32), ChannelCounters>,
    crossings: BTreeMap<CrossingKind, CrossingCounters>,
}

impl FabricStats {
    /// Counters for one domain (`None` if it never existed).
    pub fn domain(&self, id: DomainId) -> Option<&DomainCounters> {
        self.domains.get(&id)
    }

    /// Counters for one channel, keyed by owner and capability slot.
    pub fn channel(&self, owner: DomainId, slot: u32) -> Option<&ChannelCounters> {
        self.channels.get(&(owner, slot))
    }

    /// Counters for one crossing kind.
    pub fn crossing(&self, kind: CrossingKind) -> Option<&CrossingCounters> {
        self.crossings.get(&kind)
    }

    /// Iterates all per-domain counters in domain order.
    pub fn domains(&self) -> impl Iterator<Item = (DomainId, &DomainCounters)> {
        self.domains.iter().map(|(id, c)| (*id, c))
    }

    /// Iterates all per-channel counters in `(owner, slot)` order.
    pub fn channels(&self) -> impl Iterator<Item = ((DomainId, u32), &ChannelCounters)> {
        self.channels.iter().map(|(k, c)| (*k, c))
    }

    /// Iterates all per-crossing counters in kind order.
    pub fn crossings(&self) -> impl Iterator<Item = (CrossingKind, &CrossingCounters)> {
        self.crossings.iter().map(|(k, c)| (*k, c))
    }

    /// Total dispatched invocations across all domains.
    pub fn total_invocations(&self) -> u64 {
        self.domains.values().map(|c| c.invocations).sum()
    }

    /// Total payload + reply bytes moved across all domains.
    pub fn total_bytes(&self) -> u64 {
        self.domains.values().map(|c| c.bytes).sum()
    }

    /// Total denied capability presentations.
    pub fn total_denials(&self) -> u64 {
        self.domains.values().map(|c| c.denials).sum()
    }

    /// Total reentrancy faults.
    pub fn total_reentrancy_faults(&self) -> u64 {
        self.domains.values().map(|c| c.reentrancy_faults).sum()
    }

    /// An owned copy of the counters as they stand now — the value to
    /// keep when the fabric will keep running (a borrowed `&FabricStats`
    /// would observe later traffic).
    #[must_use]
    pub fn snapshot(&self) -> FabricStats {
        self.clone()
    }
}

impl std::fmt::Display for FabricStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invocations={} bytes={} denials={} reentrancy={}",
            self.total_invocations(),
            self.total_bytes(),
            self.total_denials(),
            self.total_reentrancy_faults()
        )?;
        for (kind, c) in &self.crossings {
            writeln!(
                f,
                "crossing {:12} count={} bytes={}",
                kind.name(),
                c.count,
                c.bytes
            )?;
        }
        Ok(())
    }
}

/// Interned span labels for one domain, precomputed once at spawn so
/// the per-invocation path never formats a span name. `Copy` — handing
/// one out does not borrow the fabric.
#[derive(Clone, Copy, Debug)]
struct DomainLabels {
    invoke: LabelId,
    destroy: LabelId,
    seal: LabelId,
    unseal: LabelId,
}

/// Cached metric handles for the `fabric.*` / `crossing.*` families.
/// Each is registered on first use (exactly when the old string-keyed
/// path would have created the row) and reused forever after, so the
/// steady-state hot path is two `Vec` index bumps instead of two
/// `format!` allocations plus four map probes.
#[derive(Clone, Copy, Default, Debug)]
struct FabricMetricIds {
    invocations: Option<CounterId>,
    bytes: Option<CounterId>,
    denials: Option<CounterId>,
    reentrancy: Option<CounterId>,
    crossings: [Option<(CounterId, HistogramId)>; CrossingKind::COUNT],
}

/// Registers-on-first-use lookup for a cached counter handle. A free
/// function (not a method) so callers can hold disjoint borrows of the
/// telemetry and the handle slot.
fn cached_counter(
    telemetry: &mut Telemetry,
    slot: &mut Option<CounterId>,
    name: &'static str,
) -> CounterId {
    match *slot {
        Some(id) => id,
        None => {
            let id = telemetry.metrics_mut().counter_id(name);
            *slot = Some(id);
            id
        }
    }
}

/// The per-substrate fabric state: the domain table (the single copy),
/// the trace ring buffer, and the aggregate counters. Each backend owns
/// exactly one `Fabric` instead of its own `DomainTable`.
pub struct Fabric {
    table: DomainTable,
    trace: VecDeque<TraceEvent>,
    trace_capacity: usize,
    next_seq: u64,
    stats: FabricStats,
    faults: FaultPlan,
    crashed: BTreeSet<DomainId>,
    telemetry: Telemetry,
    /// Per-domain interned labels, indexed by the dense `DomainId`
    /// (ids are never reused, so a slot is written at most twice:
    /// once at spawn, cleared at destroy).
    domain_labels: Vec<Option<DomainLabels>>,
    /// Interned `grant {from}->{to}` labels keyed by endpoint pair.
    grant_labels: BTreeMap<(DomainId, DomainId), LabelId>,
    metric_ids: FabricMetricIds,
}

impl Default for Fabric {
    fn default() -> Fabric {
        Fabric::new()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Fabric({} domains, {} traced events)",
            self.table.len(),
            self.next_seq
        )
    }
}

impl Fabric {
    /// An empty fabric with the default trace capacity.
    pub fn new() -> Fabric {
        Fabric::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty fabric retaining up to `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> Fabric {
        Fabric {
            table: DomainTable::new(),
            trace: VecDeque::with_capacity(capacity.min(DEFAULT_TRACE_CAPACITY)),
            trace_capacity: capacity.max(1),
            next_seq: 0,
            stats: FabricStats::default(),
            faults: FaultPlan::new(),
            crashed: BTreeSet::new(),
            telemetry: Telemetry::new(),
            domain_labels: Vec::new(),
            grant_labels: BTreeMap::new(),
            metric_ids: FabricMetricIds::default(),
        }
    }

    /// The domain table (read side).
    pub fn table(&self) -> &DomainTable {
        &self.table
    }

    /// The domain table (write side) — for backend placement hooks and
    /// tests; normal operation goes through the engine functions.
    pub fn table_mut(&mut self) -> &mut DomainTable {
        &mut self.table
    }

    /// The aggregate counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The causal telemetry collector: every engine operation lands as
    /// a span here, and higher layers (composer, supervisor) open their
    /// enclosing spans on the same collector so one flow is one tree.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The telemetry collector, writable — for opening enclosing spans
    /// and reading/merging metrics.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The retained trace events, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEvent> {
        self.trace.iter()
    }

    /// Number of events currently retained (≤ capacity).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Total events ever recorded (monotonic, unaffected by the ring).
    pub fn events_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Canonical byte serialization of the retained trace — two
    /// identical runs must produce identical output (the determinism
    /// acceptance check).
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace.len() * 50);
        for ev in &self.trace {
            ev.encode_into(&mut out);
        }
        out
    }

    /// Folds the retained trace into a [`CrossingProfile`]: one edge
    /// per `(caller name, callee name, crossing kind)` triple, holding
    /// the per-call cost histogram and total payload bytes. Every
    /// retained event contributes — the cost was charged whatever the
    /// outcome. Domains the table no longer knows (destroyed since the
    /// event was recorded) fold under the stable placeholder
    /// `domain-<id>` so the profile never silently drops traffic.
    #[must_use]
    pub fn crossing_profile(&self) -> CrossingProfile {
        let mut profile = CrossingProfile::new();
        let name_of = |id: DomainId| match self.table.get(id) {
            Ok(rec) => rec.spec.name.clone(),
            Err(_) => format!("domain-{}", id.0),
        };
        for ev in &self.trace {
            profile.observe(
                &name_of(ev.caller),
                &name_of(ev.callee),
                ev.crossing.name(),
                ev.cost,
                ev.bytes,
            );
        }
        profile
    }

    /// Installs (replacing any previous) deterministic fault schedule.
    /// The engine consults it on every spawn, invoke, grant, and seal.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault schedule (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether `id` has fail-stopped (an injected crash not yet cleared
    /// by destroying the domain).
    pub fn is_crashed(&self, id: DomainId) -> bool {
        self.crashed.contains(&id)
    }

    /// The currently crashed domains, in id order.
    pub fn crashed_domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.crashed.iter().copied()
    }

    /// Advances the fault plan for one observed operation on `id` and
    /// reports whether a fault fires now. Returns `false` for ids not
    /// in the table (nothing to match a name against).
    fn fault_fires(&mut self, id: DomainId, kind: FaultKind) -> bool {
        let Ok(rec) = self.table.get(id) else {
            return false;
        };
        self.faults.observe(&rec.spec.name, kind)
    }

    /// The interned span labels for `id`, computed (four interns, one
    /// name clone) the first time a domain is seen and a `Copy` cache
    /// hit ever after. `None` when the domain is not in the table.
    fn domain_labels(&mut self, id: DomainId) -> Option<DomainLabels> {
        let idx = id.0 as usize;
        if let Some(Some(labels)) = self.domain_labels.get(idx) {
            return Some(*labels);
        }
        let name = match self.table.get(id) {
            Ok(rec) => rec.spec.name.clone(),
            Err(_) => return None,
        };
        let labels = DomainLabels {
            invoke: self.telemetry.intern(&format!("invoke {name}")),
            destroy: self.telemetry.intern(&format!("destroy {name}")),
            seal: self.telemetry.intern(&format!("seal {name}")),
            unseal: self.telemetry.intern(&format!("unseal {name}")),
        };
        if self.domain_labels.len() <= idx {
            self.domain_labels.resize(idx + 1, None);
        }
        self.domain_labels[idx] = Some(labels);
        Some(labels)
    }

    /// Drops the cached labels for a destroyed domain so later lookups
    /// fall back to the missing-domain path (ids are never reused).
    fn clear_domain_labels(&mut self, id: DomainId) {
        if let Some(slot) = self.domain_labels.get_mut(id.0 as usize) {
            *slot = None;
        }
    }

    /// The interned `grant {from}->{to}` label. Endpoints are
    /// re-validated on every call — in the same `to` then `from` order
    /// as the original formatting code — so a cached label never masks
    /// a missing domain.
    fn grant_label(&mut self, from: DomainId, to: DomainId) -> Result<LabelId, SubstrateError> {
        let to_name = &self.table.get(to)?.spec.name;
        if let Some(&label) = self.grant_labels.get(&(from, to)) {
            self.table.get(from)?;
            return Ok(label);
        }
        let name = format!("grant {}->{}", self.table.get(from)?.spec.name, to_name);
        let label = self.telemetry.intern(&name);
        self.grant_labels.insert((from, to), label);
        Ok(label)
    }

    /// Cached `(counter, cost histogram)` handles for one crossing
    /// kind, registered on first use.
    fn crossing_ids(&mut self, kind: CrossingKind) -> (CounterId, HistogramId) {
        let idx = kind.code() as usize;
        if let Some(ids) = self.metric_ids.crossings[idx] {
            return ids;
        }
        let metrics = self.telemetry.metrics_mut();
        let ids = (
            metrics.counter_id(kind.counter_metric()),
            metrics.histogram_id(kind.cost_metric()),
        );
        self.metric_ids.crossings[idx] = Some(ids);
        ids
    }

    fn mark_crashed(&mut self, id: DomainId) {
        self.crashed.insert(id);
    }

    fn clear_crashed(&mut self, id: DomainId) {
        self.crashed.remove(&id);
    }

    /// Appends a fault-path event ([`TraceOutcome::Injected`] or
    /// [`TraceOutcome::Crashed`]) to the ring without attributing
    /// invocation/channel counters — injections are not dispatches.
    /// Public so the shard layer ([`crate::shard`]) can record its
    /// caller-side cross-shard fault events with engine semantics.
    pub fn record_fault(&mut self, event: TraceEvent) {
        if self.trace.len() == self.trace_capacity {
            self.trace.pop_front();
        }
        self.trace.push_back(event);
        self.next_seq += 1;
    }

    fn ensure_domain(&mut self, id: DomainId) {
        self.stats.domains.entry(id).or_default();
    }

    fn forget_domain(&mut self, id: DomainId) {
        // Counters survive destruction (they are history), but a domain
        // that never dispatched anything leaves no row behind.
        if let Some(c) = self.stats.domains.get(&id) {
            if *c == DomainCounters::default() {
                self.stats.domains.remove(&id);
            }
        }
    }

    /// Counts a refused capability presentation against `caller` (the
    /// `fabric.denials` metric plus the per-domain counter). Public so
    /// the shard layer can attribute cross-shard denials to the caller's
    /// shard exactly as the engine attributes intra-shard ones.
    pub fn note_denial(&mut self, caller: DomainId) {
        self.stats.domains.entry(caller).or_default().denials += 1;
        let id = cached_counter(
            &mut self.telemetry,
            &mut self.metric_ids.denials,
            "fabric.denials",
        );
        self.telemetry.metrics_mut().incr_by_id(id, 1);
    }

    /// Counts a refused synchronous re-entry against `caller` — the
    /// shard layer's cross-shard twin of the engine's own accounting.
    pub fn note_reentrancy(&mut self, caller: DomainId) {
        self.stats
            .domains
            .entry(caller)
            .or_default()
            .reentrancy_faults += 1;
        let id = cached_counter(
            &mut self.telemetry,
            &mut self.metric_ids.reentrancy,
            "fabric.reentrancy",
        );
        self.telemetry.metrics_mut().incr_by_id(id, 1);
    }

    /// Appends a completed-dispatch event to the ring and attributes
    /// every counter the engine keeps: the `fabric.*` metric family,
    /// the crossing counter/cost histogram for `event.crossing`, and
    /// the per-domain / per-channel (`caller`, `slot`) / per-crossing
    /// stats. Public so the shard layer records cross-shard dispatches
    /// with byte-identical accounting to intra-shard ones.
    pub fn record(&mut self, event: TraceEvent, slot: u32, reply_bytes: u64) {
        let moved = event.bytes + reply_bytes;
        {
            let invocations = cached_counter(
                &mut self.telemetry,
                &mut self.metric_ids.invocations,
                "fabric.invocations",
            );
            let bytes = cached_counter(
                &mut self.telemetry,
                &mut self.metric_ids.bytes,
                "fabric.bytes",
            );
            let (count, cost) = self.crossing_ids(event.crossing);
            let metrics = self.telemetry.metrics_mut();
            metrics.incr_by_id(invocations, 1);
            metrics.incr_by_id(bytes, moved);
            metrics.incr_by_id(count, 1);
            metrics.observe_by_id(cost, event.cost);
        }
        {
            let d = self.stats.domains.entry(event.caller).or_default();
            d.invocations += 1;
            d.bytes += moved;
        }
        {
            let ch = self.stats.channels.entry((event.caller, slot)).or_default();
            ch.invocations += 1;
            ch.bytes += moved;
        }
        {
            let cr = self.stats.crossings.entry(event.crossing).or_default();
            cr.count += 1;
            cr.bytes += event.bytes;
        }
        if self.trace.len() == self.trace_capacity {
            self.trace.pop_front();
        }
        self.trace.push_back(event);
        self.next_seq += 1;
    }

    /// The sequence number the next recorded event must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// The policy hooks a backend implements instead of the full mechanics.
/// Everything else — lifecycle, capability checks, reentrancy, channel
/// management, tracing — is supplied by the engine functions in this
/// module, which backends delegate their [`Substrate`] methods to.
pub trait BackendPolicy: Substrate {
    /// The backend's fabric (domain table + trace + stats).
    fn fabric(&self) -> &Fabric;

    /// Mutable access to the backend's fabric.
    fn fabric_mut(&mut self) -> &mut Fabric;

    /// Allocates backend resources (memory, address space, world or
    /// enclave assignment) for the freshly inserted domain `id`. The
    /// domain's [`DomainSpec`] is already in the table:
    /// `self.fabric().table().get(id)`.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::OutOfResources`] and friends; the engine rolls
    /// the table insertion back.
    fn place(&mut self, id: DomainId, kind: DomainKind) -> Result<(), SubstrateError>;

    /// Releases everything [`BackendPolicy::place`] allocated (and
    /// scrubs memory). Called with `id` already removed from the table.
    fn unplace(&mut self, id: DomainId);

    /// Charges the backend's domain-creation cost and performs any
    /// post-placement work (e.g. Flicker's registration launch). Runs
    /// after [`BackendPolicy::place`], before the component's
    /// `on_start`.
    ///
    /// # Errors
    ///
    /// Backend-specific; the engine rolls the spawn back.
    fn charge_spawn(&mut self, id: DomainId) -> Result<(), SubstrateError> {
        let _ = id;
        Ok(())
    }

    /// Gate executed after capability validation, before the crossing is
    /// charged — world/transition rules live here (e.g. Flicker's
    /// single-session limit, which also *enters* the session).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Reentrancy`] (counted as a fault) or any veto.
    fn begin_invoke(&mut self, caller: DomainId, target: DomainId) -> Result<(), SubstrateError> {
        let _ = (caller, target);
        Ok(())
    }

    /// Teardown mirroring [`BackendPolicy::begin_invoke`]; runs whether
    /// or not the dispatch succeeded.
    fn end_invoke(&mut self, caller: DomainId, target: DomainId) {
        let _ = (caller, target);
    }

    /// Classifies the isolation crossing `caller → target`.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`] if placement state is missing.
    fn crossing(&self, caller: DomainId, target: DomainId) -> Result<CrossingKind, SubstrateError>;

    /// Cycles a `kind` crossing costs with a `bytes`-sized payload —
    /// the backend's cost model, read by E4 through the trace.
    fn crossing_cost(&self, kind: CrossingKind, bytes: usize) -> u64;

    /// The backend's crossing-cost table *as data* — the same numbers
    /// [`BackendPolicy::crossing_cost`] charges, exposed so the
    /// placement optimizer can price a hypothetical placement without
    /// running it. Contract (pinned by the conformance suite): for
    /// every kind and payload size,
    /// `cost_model().price(kind, bytes) == crossing_cost(kind, bytes)`.
    fn cost_model(&self) -> CrossingCostModel;

    /// Advances the backend's logical clock by `cycles`.
    fn advance_clock(&mut self, cycles: u64);

    /// Seals `data` to `measurement` for `domain` — key derivation is
    /// the backend's (EGETKEY, fused root, TPM session, …).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Unsupported`] where the domain cannot seal.
    fn seal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError>;

    /// Reverses [`BackendPolicy::seal_blob`].
    ///
    /// # Errors
    ///
    /// [`SubstrateError::CryptoFailure`] on identity mismatch or
    /// tampering; [`SubstrateError::Unsupported`] where sealing is.
    fn unseal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError>;

    /// Assembles signed attestation evidence for `domain`.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Unsupported`] without a hardware secret or for
    /// unattestable domains.
    fn attest_evidence(
        &mut self,
        domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError>;
}

/// Engine: creates a domain — inserts the record, places it via the
/// backend, charges the spawn cost, and runs `on_start` through the
/// normal dispatch machinery (rolling everything back on failure).
///
/// # Errors
///
/// See [`Substrate::spawn`].
pub fn spawn<B: BackendPolicy>(
    backend: &mut B,
    spec: DomainSpec,
    component: Box<dyn Component>,
    kind: DomainKind,
) -> Result<DomainId, SubstrateError> {
    let spawn_label = backend
        .fabric_mut()
        .telemetry
        .intern(&format!("spawn {}", spec.name));
    let measurement = spec.measurement();
    let id = backend.fabric_mut().table_mut().insert(DomainRecord {
        spec,
        measurement,
        caps: CapTable::new(),
        component: Some(component),
    });
    backend.fabric_mut().ensure_domain(id);
    if let Err(e) = backend.place(id, kind) {
        let _ = backend.fabric_mut().table_mut().remove(id);
        backend.fabric_mut().forget_domain(id);
        return Err(e);
    }
    if let Err(e) = backend.charge_spawn(id) {
        let _ = backend.fabric_mut().table_mut().remove(id);
        backend.unplace(id);
        backend.fabric_mut().forget_domain(id);
        return Err(e);
    }
    // An injected spawn fault behaves exactly like a late platform
    // failure: resources were placed and charged, then the launch
    // fail-stops and everything rolls back (the id stays consumed —
    // ids are never reused, fault or no fault).
    if backend.fabric_mut().fault_fires(id, FaultKind::FailSpawn) {
        let at = backend.now();
        let fabric = backend.fabric_mut();
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller: id,
            callee: id,
            badge: Badge(0),
            bytes: 0,
            crossing: CrossingKind::Local,
            cost: 0,
            outcome: TraceOutcome::Injected,
        };
        fabric.record_fault(event);
        fabric
            .telemetry
            .instant_label(spawn_label, "fabric", at, span_outcome::INJECTED);
        let _ = fabric.table_mut().remove(id);
        backend.unplace(id);
        backend.fabric_mut().forget_domain(id);
        return Err(SubstrateError::Platform(
            "injected fault: fail-stop on spawn".into(),
        ));
    }
    // Precompute the domain's invoke/destroy/seal/unseal labels now so
    // no later hot-path operation ever formats a span name for it.
    backend.fabric_mut().domain_labels(id);
    let at = backend.now();
    let span = backend
        .fabric_mut()
        .telemetry
        .begin_span_label(spawn_label, "fabric", at);
    let mut comp = match backend.fabric_mut().table_mut().take_component(id) {
        Ok(c) => c,
        Err(e) => {
            let at = backend.now();
            backend
                .fabric_mut()
                .telemetry
                .end_span(span, at, span_outcome::FAILED);
            return Err(e);
        }
    };
    let result = {
        let mut ctx = CallCtx::new(backend as &mut dyn Substrate, id, measurement);
        comp.on_start(&mut ctx)
    };
    backend.fabric_mut().table_mut().put_component(id, comp);
    match result {
        Ok(()) => {
            let at = backend.now();
            backend
                .fabric_mut()
                .telemetry
                .end_span(span, at, span_outcome::OK);
            Ok(id)
        }
        Err(e) => {
            destroy(backend, id)?;
            let at = backend.now();
            backend
                .fabric_mut()
                .telemetry
                .end_span(span, at, span_outcome::FAILED);
            Err(SubstrateError::ComponentFailure(e.0))
        }
    }
}

/// Engine: destroys a domain. The table removal revokes every
/// capability *targeting* the domain in all other domains — identical
/// semantics on every backend (a respawned successor gets a fresh id
/// and fresh nonces, so stale caps stay dead) — then the backend frees
/// placement resources.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`].
pub fn destroy<B: BackendPolicy>(backend: &mut B, id: DomainId) -> Result<(), SubstrateError> {
    backend.fabric().table().get(id)?;
    let labels = backend
        .fabric_mut()
        .domain_labels(id)
        .expect("domain exists: just validated");
    backend.fabric_mut().table_mut().remove(id)?;
    backend.unplace(id);
    let at = backend.now();
    let fabric = backend.fabric_mut();
    fabric.forget_domain(id);
    fabric.clear_crashed(id);
    fabric.clear_domain_labels(id);
    fabric
        .telemetry
        .instant_label(labels.destroy, "fabric", at, span_outcome::OK);
    Ok(())
}

/// Engine: grants a channel `from → to` carrying `badge`.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`] for missing endpoints.
pub fn grant_channel<B: BackendPolicy>(
    backend: &mut B,
    from: DomainId,
    to: DomainId,
    badge: Badge,
) -> Result<ChannelCap, SubstrateError> {
    let span_label = backend.fabric_mut().grant_label(from, to)?;
    if backend.fabric_mut().fault_fires(to, FaultKind::DenyGrant) {
        let at = backend.now();
        let fabric = backend.fabric_mut();
        fabric.note_denial(from);
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller: from,
            callee: to,
            badge,
            bytes: 0,
            crossing: CrossingKind::Local,
            cost: 0,
            outcome: TraceOutcome::Injected,
        };
        fabric.record_fault(event);
        fabric
            .telemetry
            .instant_label(span_label, "fabric", at, span_outcome::INJECTED);
        return Err(SubstrateError::AccessDenied(
            "injected fault: channel grant denied".into(),
        ));
    }
    let at = backend.now();
    backend
        .fabric_mut()
        .telemetry
        .instant_label(span_label, "fabric", at, span_outcome::OK);
    let rec = backend.fabric_mut().table_mut().get_mut(from)?;
    Ok(rec.caps.install(from, to, badge))
}

/// Engine: revokes a channel.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`] if the owner is gone.
pub fn revoke_channel<B: BackendPolicy>(
    backend: &mut B,
    cap: &ChannelCap,
) -> Result<(), SubstrateError> {
    let rec = backend.fabric_mut().table_mut().get_mut(cap.owner)?;
    rec.caps.revoke(cap.slot);
    Ok(())
}

/// Engine: the invocation path. Validates the capability (recording
/// denials), runs the backend gate (recording reentrancy faults),
/// classifies and charges the crossing, dispatches take-out/put-back,
/// and records the trace event + counters.
///
/// # Errors
///
/// See [`Substrate::invoke`].
pub fn invoke<B: BackendPolicy>(
    backend: &mut B,
    caller: DomainId,
    cap: &ChannelCap,
    data: &[u8],
) -> Result<Vec<u8>, SubstrateError> {
    let entry = {
        let table = backend.fabric().table();
        let caller_rec = table.get(caller)?;
        match caller_rec.caps.lookup(caller, cap) {
            Ok(e) => e,
            Err(e) => {
                backend.fabric_mut().note_denial(caller);
                return Err(e);
            }
        }
    };
    let target = entry.target;
    let span_label = invoke_label(backend, target);
    // Fail-stop window: calls into an already-crashed domain fail fast
    // and land in the trace — E10 counts these as lost invocations.
    if backend.fabric().is_crashed(target) {
        // The event records the crossing the call *would* have made —
        // a crashed SGX domain is still behind an enclave boundary —
        // with zero cost (nothing was dispatched).
        let crossing = backend
            .crossing(caller, target)
            .unwrap_or(CrossingKind::Local);
        let at = backend.now();
        let fabric = backend.fabric_mut();
        fabric.note_denial(caller);
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller,
            callee: target,
            badge: entry.badge,
            bytes: data.len() as u64,
            crossing,
            cost: 0,
            outcome: TraceOutcome::Crashed,
        };
        fabric.record_fault(event);
        fabric
            .telemetry
            .instant_label(span_label, "fabric", at, span_outcome::CRASHED);
        return Err(SubstrateError::DomainCrashed(target));
    }
    // Scheduled crash: this dispatch attempt is the Nth — the component
    // never runs, the domain fail-stops until destroyed and respawned.
    if backend.fabric_mut().fault_fires(target, FaultKind::Crash) {
        let crossing = backend
            .crossing(caller, target)
            .unwrap_or(CrossingKind::Local);
        let at = backend.now();
        let fabric = backend.fabric_mut();
        fabric.mark_crashed(target);
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller,
            callee: target,
            badge: entry.badge,
            bytes: data.len() as u64,
            crossing,
            cost: 0,
            outcome: TraceOutcome::Injected,
        };
        fabric.record_fault(event);
        fabric
            .telemetry
            .instant_label(span_label, "fabric", at, span_outcome::INJECTED);
        return Err(SubstrateError::DomainCrashed(target));
    }
    if let Err(e) = backend.begin_invoke(caller, target) {
        if matches!(e, SubstrateError::Reentrancy(_)) {
            let at = backend.now();
            let fabric = backend.fabric_mut();
            fabric.note_reentrancy(caller);
            fabric
                .telemetry
                .instant_label(span_label, "fabric", at, span_outcome::REENTRANCY);
        }
        return Err(e);
    }
    let crossing = match backend.crossing(caller, target) {
        Ok(kind) => kind,
        Err(e) => {
            backend.end_invoke(caller, target);
            return Err(e);
        }
    };
    let cost = backend.crossing_cost(crossing, data.len());
    backend.advance_clock(cost);
    let at = backend.now();
    let span = backend
        .fabric_mut()
        .telemetry
        .begin_span_label(span_label, "fabric", at);
    let result = run_component(backend, target, entry.badge, data);
    backend.end_invoke(caller, target);
    let (outcome, reply_bytes) = match &result {
        Ok(reply) => (TraceOutcome::Ok, reply.len() as u64),
        Err(SubstrateError::Reentrancy(_)) => {
            backend.fabric_mut().note_reentrancy(caller);
            (TraceOutcome::Reentrancy, 0)
        }
        Err(_) => (TraceOutcome::Failed, 0),
    };
    let span_end = backend.now();
    backend
        .fabric_mut()
        .telemetry
        .end_span(span, span_end, outcome.code());
    let fabric = backend.fabric_mut();
    let event = TraceEvent {
        seq: fabric.next_seq(),
        at,
        caller,
        callee: target,
        badge: entry.badge,
        bytes: data.len() as u64,
        crossing,
        cost,
        outcome,
    };
    fabric.record(event, cap.slot, reply_bytes);
    result
}

/// The interned `invoke {name}` label for `target`, falling back to
/// `invoke domain{N}` when the domain is gone (stale-cap window).
fn invoke_label<B: BackendPolicy>(backend: &mut B, target: DomainId) -> LabelId {
    match backend.fabric_mut().domain_labels(target) {
        Some(labels) => labels.invoke,
        None => {
            let name = format!("invoke domain{}", target.0);
            backend.fabric_mut().telemetry.intern(&name)
        }
    }
}

/// Engine: the batched invocation path. Validates the capability once,
/// runs the backend gate once, classifies the crossing once, and opens
/// a *single* span for the whole batch — then dispatches each payload
/// with exactly the per-payload effects of [`invoke`]: the crossing
/// cost is charged per payload, every dispatch lands in the trace ring
/// and counters byte-identically to the loop equivalent, and scheduled
/// crash faults fire at the same dispatch attempt. On the first error
/// the batch stops (exactly where a `for` loop over [`invoke`] would
/// have stopped) and returns it.
///
/// The only observable difference from the loop is the span tree: one
/// `invoke {name}` span instead of N.
///
/// # Errors
///
/// See [`Substrate::invoke`]; the error is the first failing payload's.
pub fn invoke_batch<B: BackendPolicy>(
    backend: &mut B,
    caller: DomainId,
    cap: &ChannelCap,
    payloads: &[&[u8]],
) -> Result<Vec<Vec<u8>>, SubstrateError> {
    if payloads.is_empty() {
        return Ok(Vec::new());
    }
    let entry = {
        let table = backend.fabric().table();
        let caller_rec = table.get(caller)?;
        match caller_rec.caps.lookup(caller, cap) {
            Ok(e) => e,
            Err(e) => {
                backend.fabric_mut().note_denial(caller);
                return Err(e);
            }
        }
    };
    let target = entry.target;
    let span_label = invoke_label(backend, target);
    if backend.fabric().is_crashed(target) {
        // Identical to the single-invoke fail-stop window: one denial,
        // one Crashed event for the first payload, fail the batch fast.
        let crossing = backend
            .crossing(caller, target)
            .unwrap_or(CrossingKind::Local);
        let at = backend.now();
        let fabric = backend.fabric_mut();
        fabric.note_denial(caller);
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller,
            callee: target,
            badge: entry.badge,
            bytes: payloads[0].len() as u64,
            crossing,
            cost: 0,
            outcome: TraceOutcome::Crashed,
        };
        fabric.record_fault(event);
        fabric
            .telemetry
            .instant_label(span_label, "fabric", at, span_outcome::CRASHED);
        return Err(SubstrateError::DomainCrashed(target));
    }
    if let Err(e) = backend.begin_invoke(caller, target) {
        if matches!(e, SubstrateError::Reentrancy(_)) {
            let at = backend.now();
            let fabric = backend.fabric_mut();
            fabric.note_reentrancy(caller);
            fabric
                .telemetry
                .instant_label(span_label, "fabric", at, span_outcome::REENTRANCY);
        }
        return Err(e);
    }
    let crossing = match backend.crossing(caller, target) {
        Ok(kind) => kind,
        Err(e) => {
            backend.end_invoke(caller, target);
            return Err(e);
        }
    };
    let span_at = backend.now();
    let span = backend
        .fabric_mut()
        .telemetry
        .begin_span_label(span_label, "fabric", span_at);
    let mut replies = Vec::with_capacity(payloads.len());
    let mut batch_err = None;
    for data in payloads {
        // Scheduled crash faults advance per dispatch attempt, so the
        // Nth payload of a batch fires the same fault the Nth loop
        // iteration would.
        if backend.fabric_mut().fault_fires(target, FaultKind::Crash) {
            let at = backend.now();
            let fabric = backend.fabric_mut();
            fabric.mark_crashed(target);
            let event = TraceEvent {
                seq: fabric.next_seq(),
                at,
                caller,
                callee: target,
                badge: entry.badge,
                bytes: data.len() as u64,
                crossing,
                cost: 0,
                outcome: TraceOutcome::Injected,
            };
            fabric.record_fault(event);
            batch_err = Some(SubstrateError::DomainCrashed(target));
            break;
        }
        let cost = backend.crossing_cost(crossing, data.len());
        backend.advance_clock(cost);
        let at = backend.now();
        let result = run_component(backend, target, entry.badge, data);
        let (outcome, reply_bytes) = match &result {
            Ok(reply) => (TraceOutcome::Ok, reply.len() as u64),
            Err(SubstrateError::Reentrancy(_)) => {
                backend.fabric_mut().note_reentrancy(caller);
                (TraceOutcome::Reentrancy, 0)
            }
            Err(_) => (TraceOutcome::Failed, 0),
        };
        let fabric = backend.fabric_mut();
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller,
            callee: target,
            badge: entry.badge,
            bytes: data.len() as u64,
            crossing,
            cost,
            outcome,
        };
        fabric.record(event, cap.slot, reply_bytes);
        match result {
            Ok(reply) => replies.push(reply),
            Err(e) => {
                batch_err = Some(e);
                break;
            }
        }
    }
    backend.end_invoke(caller, target);
    let span_end = backend.now();
    let code = match &batch_err {
        None => span_outcome::OK,
        Some(SubstrateError::DomainCrashed(_)) => span_outcome::INJECTED,
        Some(SubstrateError::Reentrancy(_)) => span_outcome::REENTRANCY,
        Some(_) => span_outcome::FAILED,
    };
    backend
        .fabric_mut()
        .telemetry
        .end_span(span, span_end, code);
    match batch_err {
        Some(e) => Err(e),
        None => Ok(replies),
    }
}

/// Take-out/put-back dispatch of the target component (re-entry shows
/// up as the component being absent and becomes a clean
/// [`SubstrateError::Reentrancy`]).
fn run_component<B: BackendPolicy>(
    backend: &mut B,
    target: DomainId,
    badge: Badge,
    data: &[u8],
) -> Result<Vec<u8>, SubstrateError> {
    let (mut component, measurement) = {
        let table = backend.fabric_mut().table_mut();
        let m = table.get(target)?.measurement;
        (table.take_component(target)?, m)
    };
    let result = {
        let mut ctx = CallCtx::new(backend as &mut dyn Substrate, target, measurement);
        component.on_call(&mut ctx, Invocation { badge, data })
    };
    backend
        .fabric_mut()
        .table_mut()
        .put_component(target, component);
    result.map_err(|ComponentError(msg)| SubstrateError::ComponentFailure(msg))
}

/// Engine: a domain's code identity.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`].
pub fn measurement<B: BackendPolicy>(
    backend: &B,
    domain: DomainId,
) -> Result<Digest, SubstrateError> {
    Ok(backend.fabric().table().get(domain)?.measurement)
}

/// Engine: a domain's diagnostic name.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`].
pub fn domain_name<B: BackendPolicy>(
    backend: &B,
    domain: DomainId,
) -> Result<String, SubstrateError> {
    Ok(backend.fabric().table().get(domain)?.spec.name.clone())
}

/// Engine: seals `data` to `domain`'s identity via the backend's key
/// derivation.
///
/// # Errors
///
/// See [`Substrate::seal`].
pub fn seal<B: BackendPolicy>(
    backend: &mut B,
    domain: DomainId,
    data: &[u8],
) -> Result<Vec<u8>, SubstrateError> {
    let m = backend.fabric().table().get(domain)?.measurement;
    let labels = backend
        .fabric_mut()
        .domain_labels(domain)
        .expect("domain exists: just validated");
    let mut blob = backend.seal_blob(domain, &m, data)?;
    let at = backend.now();
    backend
        .fabric_mut()
        .telemetry
        .instant_label(labels.seal, "fabric", at, span_outcome::OK);
    if backend
        .fabric_mut()
        .fault_fires(domain, FaultKind::CorruptSeal)
    {
        // Silent corruption: the caller gets a blob back, but its
        // integrity check fails at unseal time.
        if let Some(byte) = blob.last_mut() {
            *byte ^= 0x01;
        }
        let at = backend.now();
        let fabric = backend.fabric_mut();
        let event = TraceEvent {
            seq: fabric.next_seq(),
            at,
            caller: domain,
            callee: domain,
            badge: Badge(0),
            bytes: data.len() as u64,
            crossing: CrossingKind::Local,
            cost: 0,
            outcome: TraceOutcome::Injected,
        };
        fabric.record_fault(event);
    }
    Ok(blob)
}

/// Engine: reverses [`seal`].
///
/// # Errors
///
/// See [`Substrate::unseal`].
pub fn unseal<B: BackendPolicy>(
    backend: &mut B,
    domain: DomainId,
    sealed: &[u8],
) -> Result<Vec<u8>, SubstrateError> {
    let m = backend.fabric().table().get(domain)?.measurement;
    let labels = backend
        .fabric_mut()
        .domain_labels(domain)
        .expect("domain exists: just validated");
    let result = backend.unseal_blob(domain, &m, sealed);
    let at = backend.now();
    let outcome = if result.is_ok() {
        span_outcome::OK
    } else {
        span_outcome::FAILED
    };
    backend
        .fabric_mut()
        .telemetry
        .instant_label(labels.unseal, "fabric", at, outcome);
    result
}

/// Engine: assembles attestation evidence for `domain`.
///
/// # Errors
///
/// See [`Substrate::attest`].
pub fn attest<B: BackendPolicy>(
    backend: &mut B,
    domain: DomainId,
    report_data: &[u8],
) -> Result<AttestationEvidence, SubstrateError> {
    // No span here: whether evidence assembly succeeds is a *backend
    // capability* (software cannot attest, SGX can), and fabric spans
    // must stay backend-invariant. Attestation shows up causally in the
    // remote layer's `attest.verify` / `attest.evidence` spans instead.
    let m = backend.fabric().table().get(domain)?.measurement;
    backend.attest_evidence(domain, m, report_data)
}

/// Engine: enumerates `domain`'s live capabilities.
///
/// # Errors
///
/// [`SubstrateError::NoSuchDomain`].
pub fn list_caps<B: BackendPolicy>(
    backend: &B,
    domain: DomainId,
) -> Result<Vec<ChannelCap>, SubstrateError> {
    let rec = backend.fabric().table().get(domain)?;
    Ok(rec
        .caps
        .iter()
        .map(|(slot, e)| ChannelCap {
            owner: domain,
            slot,
            nonce: e.nonce,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_encoding_is_stable() {
        let ev = TraceEvent {
            seq: 1,
            at: 2,
            caller: DomainId(3),
            callee: DomainId(4),
            badge: Badge(5),
            bytes: 6,
            crossing: CrossingKind::Ipc,
            cost: 7,
            outcome: TraceOutcome::Ok,
        };
        let mut a = Vec::new();
        ev.encode_into(&mut a);
        let mut b = Vec::new();
        ev.encode_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn ring_buffer_caps_retention_but_not_seq() {
        let mut f = Fabric::with_trace_capacity(2);
        for i in 0..5u64 {
            let seq = f.next_seq();
            f.record(
                TraceEvent {
                    seq,
                    at: i,
                    caller: DomainId(0),
                    callee: DomainId(1),
                    badge: Badge(0),
                    bytes: 0,
                    crossing: CrossingKind::Local,
                    cost: 0,
                    outcome: TraceOutcome::Ok,
                },
                0,
                0,
            );
        }
        assert_eq!(f.trace_len(), 2);
        assert_eq!(f.events_recorded(), 5);
        let seqs: Vec<u64> = f.trace().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn stats_accumulate_per_domain_channel_and_crossing() {
        let mut f = Fabric::new();
        let seq = f.next_seq();
        f.record(
            TraceEvent {
                seq,
                at: 10,
                caller: DomainId(1),
                callee: DomainId(2),
                badge: Badge(9),
                bytes: 100,
                crossing: CrossingKind::Mailbox,
                cost: 500,
                outcome: TraceOutcome::Ok,
            },
            3,
            20,
        );
        f.note_denial(DomainId(1));
        f.note_reentrancy(DomainId(2));
        let d1 = f.stats().domain(DomainId(1)).unwrap();
        assert_eq!(d1.invocations, 1);
        assert_eq!(d1.bytes, 120);
        assert_eq!(d1.denials, 1);
        let ch = f.stats().channel(DomainId(1), 3).unwrap();
        assert_eq!(ch.invocations, 1);
        assert_eq!(ch.bytes, 120);
        let cr = f.stats().crossing(CrossingKind::Mailbox).unwrap();
        assert_eq!(cr.count, 1);
        assert_eq!(cr.bytes, 100);
        assert_eq!(f.stats().total_reentrancy_faults(), 1);
    }
}
