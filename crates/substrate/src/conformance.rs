//! The executable structural template of Figure 2 (experiment E2).
//!
//! The paper claims all isolation technologies instantiate one common
//! pattern — isolation substrate, trusted components, legacy code,
//! controlled communication — and proposes a unified interface over them.
//! This module *tests* that claim: it runs an identical component suite
//! against any [`Substrate`] and reports, per feature, whether the backend
//! passes, fails, or honestly reports the feature unsupported (e.g. pure
//! software isolation cannot attest). The reproduction harness prints the
//! resulting matrix for all five backends.

use crate::attest::TrustPolicy;
use crate::cap::{Badge, ChannelCap};
use crate::substrate::{DomainSpec, Substrate};
use crate::testkit::{Attester, BadgeReporter, Counter, Echo, MemoryScribe, Sealer};
use crate::SubstrateError;

/// Result of one conformance check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The feature works as specified.
    Pass,
    /// The feature misbehaved; the string says how.
    Fail(String),
    /// The backend reports the feature as unsupported (a legitimate
    /// profile difference, e.g. no attestation without hardware).
    Unsupported,
}

impl Outcome {
    /// Whether the check did not fail (pass or honestly unsupported).
    pub fn acceptable(&self) -> bool {
        !matches!(self, Outcome::Fail(_))
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Pass => write!(f, "pass"),
            Outcome::Fail(r) => write!(f, "FAIL: {r}"),
            Outcome::Unsupported => write!(f, "unsupported"),
        }
    }
}

/// One named check result.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Feature under test.
    pub feature: String,
    /// The outcome.
    pub outcome: Outcome,
}

/// Report of a full conformance run against one substrate.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The substrate's profile name.
    pub substrate: String,
    /// Per-feature outcomes, in suite order.
    pub checks: Vec<CheckResult>,
}

impl ConformanceReport {
    /// Whether every check passed or was honestly unsupported.
    pub fn conforms(&self) -> bool {
        self.checks.iter().all(|c| c.outcome.acceptable())
    }

    /// The outcome for a named feature, if present.
    pub fn outcome(&self, feature: &str) -> Option<&Outcome> {
        self.checks
            .iter()
            .find(|c| c.feature == feature)
            .map(|c| &c.outcome)
    }
}

fn check<F>(checks: &mut Vec<CheckResult>, feature: &str, f: F)
where
    F: FnOnce() -> Result<(), Outcome>,
{
    let outcome = match f() {
        Ok(()) => Outcome::Pass,
        Err(o) => o,
    };
    checks.push(CheckResult {
        feature: feature.to_string(),
        outcome,
    });
}

fn fail(msg: impl Into<String>) -> Outcome {
    Outcome::Fail(msg.into())
}

/// Runs the conformance suite against `sub`.
///
/// The suite spawns its own domains; run it on a fresh substrate
/// instance. Domains are destroyed afterwards on a best-effort basis.
pub fn run(sub: &mut dyn Substrate) -> ConformanceReport {
    let name = sub.profile().name.clone();
    let mut checks = Vec::new();
    let mut spawned = Vec::new();

    // --- spawn + invoke ---------------------------------------------------
    let mut client = None;
    let mut server = None;
    check(&mut checks, "spawn", || {
        let c = sub
            .spawn(DomainSpec::named("conf-client"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn client: {e}")))?;
        let s = sub
            .spawn(DomainSpec::named("conf-server"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn server: {e}")))?;
        client = Some(c);
        server = Some(s);
        Ok(())
    });
    if let (Some(c), Some(s)) = (client, server) {
        spawned.push(c);
        spawned.push(s);

        check(&mut checks, "channel-invoke", || {
            let cap = sub
                .grant_channel(c, s, Badge(1))
                .map_err(|e| fail(format!("grant: {e}")))?;
            let reply = sub
                .invoke(c, &cap, b"conformance ping")
                .map_err(|e| fail(format!("invoke: {e}")))?;
            if reply == b"conformance ping" {
                Ok(())
            } else {
                Err(fail("echo reply mismatch"))
            }
        });

        // --- POLA: communication only exists when granted -----------------
        check(&mut checks, "pola-deny-undeclared", || {
            let forged = ChannelCap {
                owner: s,
                slot: 0,
                nonce: 424_242,
            };
            match sub.invoke(s, &forged, b"sneak") {
                Err(SubstrateError::InvalidCapability(_)) => Ok(()),
                Err(e) => Err(fail(format!("wrong error class: {e}"))),
                Ok(_) => Err(fail("undeclared channel was allowed")),
            }
        });

        // --- capability theft ---------------------------------------------
        check(&mut checks, "cap-unforgeable", || {
            let cap = sub
                .grant_channel(c, s, Badge(2))
                .map_err(|e| fail(format!("grant: {e}")))?;
            // The server "steals" the client's capability bits.
            match sub.invoke(s, &cap, b"steal") {
                Err(SubstrateError::InvalidCapability(_)) => Ok(()),
                Err(e) => Err(fail(format!("wrong error class: {e}"))),
                Ok(_) => Err(fail("stolen capability was honored")),
            }
        });
    }

    // --- badges identify clients ------------------------------------------
    check(&mut checks, "badge-identity", || {
        let reporter = sub
            .spawn(DomainSpec::named("conf-badge"), Box::new(BadgeReporter))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(reporter);
        let c1 = sub
            .spawn(DomainSpec::named("conf-c1"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        let c2 = sub
            .spawn(DomainSpec::named("conf-c2"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(c1);
        spawned.push(c2);
        let cap1 = sub
            .grant_channel(c1, reporter, Badge(0xA1))
            .map_err(|e| fail(format!("grant: {e}")))?;
        let cap2 = sub
            .grant_channel(c2, reporter, Badge(0xB2))
            .map_err(|e| fail(format!("grant: {e}")))?;
        let b1 = sub
            .invoke(c1, &cap1, b"")
            .map_err(|e| fail(format!("invoke: {e}")))?;
        let b2 = sub
            .invoke(c2, &cap2, b"")
            .map_err(|e| fail(format!("invoke: {e}")))?;
        if b1 == 0xA1u64.to_le_bytes() && b2 == 0xB2u64.to_le_bytes() {
            Ok(())
        } else {
            Err(fail("badges not delivered faithfully"))
        }
    });

    // --- component state survives across calls -----------------------------
    check(&mut checks, "stateful-domains", || {
        let counter = sub
            .spawn(
                DomainSpec::named("conf-counter"),
                Box::new(Counter::default()),
            )
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(counter);
        let d = sub
            .spawn(DomainSpec::named("conf-driver"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(d);
        let cap = sub
            .grant_channel(d, counter, Badge(0))
            .map_err(|e| fail(format!("grant: {e}")))?;
        sub.invoke(d, &cap, b"").map_err(|e| fail(e.to_string()))?;
        let second = sub.invoke(d, &cap, b"").map_err(|e| fail(e.to_string()))?;
        if second == 2u64.to_le_bytes() {
            Ok(())
        } else {
            Err(fail("state did not persist"))
        }
    });

    // --- private memory -----------------------------------------------------
    check(&mut checks, "private-memory", || {
        let a = sub
            .spawn(DomainSpec::named("conf-mem-a"), Box::new(MemoryScribe))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        let b = sub
            .spawn(DomainSpec::named("conf-mem-b"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(a);
        spawned.push(b);
        let d = sub
            .spawn(DomainSpec::named("conf-mem-driver"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(d);
        let cap = sub
            .grant_channel(d, a, Badge(0))
            .map_err(|e| fail(format!("grant: {e}")))?;
        let reply = sub
            .invoke(d, &cap, b"memory payload")
            .map_err(|e| fail(e.to_string()))?;
        if reply != b"memory payload" {
            return Err(fail("scribe did not read back its own write"));
        }
        // b's memory at the same offset must not contain a's data.
        let other = sub
            .mem_read(b, 0, 14)
            .map_err(|e| fail(format!("mem_read: {e}")))?;
        if other == b"memory payload" {
            Err(fail("memory leaked across domains"))
        } else {
            Ok(())
        }
    });

    // --- sealed storage ------------------------------------------------------
    check(&mut checks, "sealed-storage", || {
        let sealer = match sub.spawn(DomainSpec::named("conf-sealer"), Box::new(Sealer)) {
            Ok(s) => s,
            Err(e) => return Err(fail(format!("spawn: {e}"))),
        };
        spawned.push(sealer);
        let d = sub
            .spawn(DomainSpec::named("conf-seal-driver"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(d);
        let cap = sub
            .grant_channel(d, sealer, Badge(0))
            .map_err(|e| fail(format!("grant: {e}")))?;
        let sealed = match sub.invoke(d, &cap, b"s:sealed secret") {
            Ok(s) => s,
            Err(SubstrateError::ComponentFailure(msg)) if msg.contains("unsupported") => {
                return Err(Outcome::Unsupported)
            }
            Err(e) => return Err(fail(format!("seal: {e}"))),
        };
        let mut req = b"u:".to_vec();
        req.extend_from_slice(&sealed);
        let plain = sub.invoke(d, &cap, &req).map_err(|e| fail(e.to_string()))?;
        if plain != b"sealed secret" {
            return Err(fail("unseal returned wrong plaintext"));
        }
        // A different identity must not unseal.
        match sub.unseal(d, &sealed) {
            Err(_) => Ok(()),
            Ok(_) => Err(fail("foreign domain unsealed the blob")),
        }
    });

    // --- attestation -----------------------------------------------------------
    check(&mut checks, "attestation", || {
        let attester = sub
            .spawn(DomainSpec::named("conf-attester"), Box::new(Attester))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(attester);
        match sub.attest(attester, b"conformance-binding") {
            Ok(evidence) => {
                let platform = sub
                    .platform_verifying_key()
                    .map_err(|e| fail(format!("platform key: {e}")))?;
                let expected = sub.measurement(attester).map_err(|e| fail(e.to_string()))?;
                let mut policy = TrustPolicy::new();
                policy.trust_platform(platform);
                policy.expect_measurement(expected);
                let id = policy
                    .verify(&evidence)
                    .map_err(|e| fail(format!("verify: {e}")))?;
                if id.report_data == b"conformance-binding" {
                    Ok(())
                } else {
                    Err(fail("report data not bound"))
                }
            }
            Err(SubstrateError::Unsupported(_)) => Err(Outcome::Unsupported),
            Err(e) => Err(fail(format!("attest: {e}"))),
        }
    });

    // --- reentrancy safety -------------------------------------------------------
    check(&mut checks, "reentrancy-safe", || {
        let a = sub
            .spawn(
                DomainSpec::named("conf-reent"),
                Box::new(crate::testkit::Forwarder),
            )
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(a);
        // Give the forwarder a channel to itself: calling it must produce a
        // clean error, not a hang or crash.
        sub.grant_channel(a, a, Badge(1))
            .map_err(|e| fail(format!("grant: {e}")))?;
        let d = sub
            .spawn(DomainSpec::named("conf-reent-driver"), Box::new(Echo))
            .map_err(|e| fail(format!("spawn: {e}")))?;
        spawned.push(d);
        let cap = sub
            .grant_channel(d, a, Badge(2))
            .map_err(|e| fail(format!("grant: {e}")))?;
        match sub.invoke(d, &cap, b"loop") {
            Err(_) => Ok(()),
            Ok(_) => Err(fail("self-call unexpectedly succeeded")),
        }
    });

    // Best-effort teardown.
    for d in spawned {
        let _ = sub.destroy(d);
    }

    ConformanceReport {
        substrate: name,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareSubstrate;

    #[test]
    fn software_substrate_conforms() {
        let mut s = SoftwareSubstrate::new("conformance");
        let report = run(&mut s);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
        assert!(report.conforms());
        // Software isolation honestly reports no attestation.
        assert_eq!(report.outcome("attestation"), Some(&Outcome::Unsupported));
        assert_eq!(report.outcome("channel-invoke"), Some(&Outcome::Pass));
    }

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Pass.to_string(), "pass");
        assert!(Outcome::Fail("x".into()).to_string().contains("FAIL"));
    }
}
