//! The certification pipeline: ordered static passes over a submission.
//!
//! Certification is *static* — it never runs the image. Three passes, in
//! a fixed order, each producing a verdict that lands in the
//! [`CertificationReport`]:
//!
//! 1. **`publisher-chain`** — the manifest's publisher signature must
//!    verify, and the publisher key must be trusted: either it is a
//!    registry root itself, or a root endorsed it (one-level chain).
//! 2. **`pola-lint`** — the declared channel graph must be *closed*: no
//!    channel may target an undeclared endpoint, labels and (target,
//!    badge) pairs must be unique, and no channel may carry an
//!    ambient-authority badge (badge 0 — "anyone" — or the composer's
//!    reserved environment badge).
//! 3. **`tcb-budget`** — the E7-style accounting: for every substrate
//!    class the registry serves, declared component lines plus that
//!    class's substrate TCB must stay within the manifest's budget.
//! 4. **`wot-threshold`** — the web-of-trust gate (runs only when the
//!    registry has a trust graph attached): the digest's aggregated
//!    review score from `lateral-wot` must clear the admission
//!    threshold in force (the assembly's declared threshold, or the
//!    registry default). The score is a function of the trust graph,
//!    so verdict caching additionally keys on the trust epoch.
//!
//! The pass set is versioned ([`PASS_SET_VERSION`]); verdict caching is
//! keyed on (digest, version, trust epoch), so changing the passes —
//! or the trust graph — invalidates every memoized report.

use std::collections::BTreeSet;

use crate::manifest::SignedManifest;

/// Version of the pass set below. Bump when pass semantics change so
/// memoized verdicts from older pipelines are never reused.
/// (v2: added the `wot-threshold` pass.)
pub const PASS_SET_VERSION: u32 = 2;

/// Name of the web-of-trust pass, also surfaced in refusal errors.
pub const WOT_PASS: &str = "wot-threshold";

/// The ambient-authority badge: a capability granted to "anyone".
pub const AMBIENT_BADGE: u64 = 0;

/// The composer's reserved environment badge (`lateral_core`'s
/// `ENV_BADGE`); a manifest granting it would let a peer impersonate
/// the harness environment.
pub const ENV_RESERVED_BADGE: u64 = 0xE4F;

/// Outcome of one certification pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassVerdict {
    /// The pass accepted the submission.
    Pass,
    /// The pass rejected the submission, with the reason.
    Fail(String),
}

/// One pass's verdict inside a [`CertificationReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassResult {
    /// Stable pass name (`publisher-chain`, `pola-lint`, `tcb-budget`,
    /// `wot-threshold`).
    pub pass: &'static str,
    /// What the pass decided.
    pub verdict: PassVerdict,
}

/// The memoized product of running the pipeline over one digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificationReport {
    /// Pass-set version the report was produced under.
    pub pass_set_version: u32,
    /// Per-pass verdicts, in pipeline order.
    pub passes: Vec<PassResult>,
    /// `true` iff every pass accepted.
    pub certified: bool,
}

impl CertificationReport {
    /// The first failing pass, as `(pass, reason)`.
    pub fn first_failure(&self) -> Option<(&'static str, &str)> {
        self.passes.iter().find_map(|p| match &p.verdict {
            PassVerdict::Fail(reason) => Some((p.pass, reason.as_str())),
            PassVerdict::Pass => None,
        })
    }
}

/// Input to the `wot-threshold` pass: the digest's aggregated review
/// score and the admission threshold in force, both in milli-units
/// (1000 = one unit of trust-weighted review mass). The registry
/// computes the score from its attached `lateral-wot` trust graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WotCheck {
    /// Aggregated review score of the digest, in milli-units.
    pub score_milli: i64,
    /// Admission threshold the score must meet, in milli-units.
    pub threshold_milli: i64,
}

/// Runs the full pipeline. `roots` are the registry's trusted root
/// keys; `substrate_classes` is the (name, substrate TCB lines) table
/// the TCB-budget pass accounts against; `wot` carries the
/// web-of-trust score when the registry has a trust graph attached
/// (`None` keeps the pipeline at its three static passes).
pub fn run_pipeline(
    manifest: &SignedManifest,
    roots: &BTreeSet<[u8; 32]>,
    substrate_classes: &[(String, u64)],
    wot: Option<WotCheck>,
) -> CertificationReport {
    let mut passes = vec![
        PassResult {
            pass: "publisher-chain",
            verdict: publisher_chain(manifest, roots),
        },
        PassResult {
            pass: "pola-lint",
            verdict: pola_lint(manifest),
        },
        PassResult {
            pass: "tcb-budget",
            verdict: tcb_budget(manifest, substrate_classes),
        },
    ];
    if let Some(check) = wot {
        passes.push(PassResult {
            pass: WOT_PASS,
            verdict: wot_threshold(check),
        });
    }
    let certified = passes
        .iter()
        .all(|p| matches!(p.verdict, PassVerdict::Pass));
    CertificationReport {
        pass_set_version: PASS_SET_VERSION,
        passes,
        certified,
    }
}

fn publisher_chain(manifest: &SignedManifest, roots: &BTreeSet<[u8; 32]>) -> PassVerdict {
    if let Err(e) = manifest.verify_signature() {
        return PassVerdict::Fail(format!("manifest signature: {e}"));
    }
    if roots.contains(&manifest.publisher) {
        return PassVerdict::Pass;
    }
    match &manifest.endorsement {
        None => PassVerdict::Fail(
            "publisher key is not a trusted root and carries no endorsement".into(),
        ),
        Some(end) => {
            if !roots.contains(&end.root) {
                return PassVerdict::Fail("endorsing key is not a trusted root".into());
            }
            match end.verify(&manifest.publisher) {
                Ok(()) => PassVerdict::Pass,
                Err(e) => PassVerdict::Fail(format!("endorsement: {e}")),
            }
        }
    }
}

fn pola_lint(manifest: &SignedManifest) -> PassVerdict {
    let mut endpoints = BTreeSet::new();
    for e in &manifest.endpoints {
        if e == &manifest.component {
            return PassVerdict::Fail(format!("'{e}' declares itself as an endpoint"));
        }
        if !endpoints.insert(e.as_str()) {
            return PassVerdict::Fail(format!("duplicate endpoint '{e}'"));
        }
    }
    let mut labels = BTreeSet::new();
    let mut targets = BTreeSet::new();
    for ch in &manifest.channels {
        if !labels.insert(ch.label.as_str()) {
            return PassVerdict::Fail(format!("duplicate channel label '{}'", ch.label));
        }
        if !targets.insert((ch.to.as_str(), ch.badge)) {
            return PassVerdict::Fail(format!(
                "duplicate channel to '{}' with badge {}",
                ch.to, ch.badge
            ));
        }
        if !endpoints.contains(ch.to.as_str()) {
            return PassVerdict::Fail(format!(
                "channel '{}' targets undeclared endpoint '{}'",
                ch.label, ch.to
            ));
        }
        if ch.badge == AMBIENT_BADGE {
            return PassVerdict::Fail(format!("channel '{}' grants the ambient badge 0", ch.label));
        }
        if ch.badge == ENV_RESERVED_BADGE {
            return PassVerdict::Fail(format!(
                "channel '{}' grants the reserved environment badge",
                ch.label
            ));
        }
    }
    PassVerdict::Pass
}

fn wot_threshold(check: WotCheck) -> PassVerdict {
    if check.score_milli >= check.threshold_milli {
        PassVerdict::Pass
    } else {
        PassVerdict::Fail(format!(
            "review score {} milli below admission threshold {} milli",
            check.score_milli, check.threshold_milli
        ))
    }
}

fn tcb_budget(manifest: &SignedManifest, substrate_classes: &[(String, u64)]) -> PassVerdict {
    for (class, substrate_tcb) in substrate_classes {
        let total = manifest.loc.saturating_add(*substrate_tcb);
        if total > manifest.tcb_budget {
            return PassVerdict::Fail(format!(
                "class '{class}': {} component + {substrate_tcb} substrate = {total} lines \
                 exceeds budget {}",
                manifest.loc, manifest.tcb_budget
            ));
        }
    }
    PassVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Endorsement, ManifestDraft};
    use lateral_crypto::sign::SigningKey;

    fn roots_of(keys: &[&SigningKey]) -> BTreeSet<[u8; 32]> {
        keys.iter().map(|k| k.verifying_key().to_bytes()).collect()
    }

    fn classes() -> Vec<(String, u64)> {
        vec![("microkernel".into(), 10_000), ("enclave".into(), 12_000)]
    }

    #[test]
    fn clean_submission_certifies() {
        let root = SigningKey::from_seed(b"root");
        let m = ManifestDraft::new("svc", b"img")
            .loc(2_000)
            .budget(20_000)
            .endpoint("peer")
            .channel("ask", "peer", 3)
            .sign(&root, None);
        let report = run_pipeline(&m, &roots_of(&[&root]), &classes(), None);
        assert!(report.certified, "{report:?}");
        assert_eq!(report.passes.len(), 3);
        assert_eq!(report.first_failure(), None);
    }

    #[test]
    fn endorsed_publisher_certifies() {
        let root = SigningKey::from_seed(b"root");
        let publisher = SigningKey::from_seed(b"indie");
        let end = Endorsement::issue(&root, &publisher.verifying_key());
        let m = ManifestDraft::new("svc", b"img").sign(&publisher, Some(end));
        assert!(run_pipeline(&m, &roots_of(&[&root]), &[], None).certified);
    }

    #[test]
    fn untrusted_publisher_fails_chain() {
        let root = SigningKey::from_seed(b"root");
        let stranger = SigningKey::from_seed(b"stranger");
        let m = ManifestDraft::new("svc", b"img").sign(&stranger, None);
        let report = run_pipeline(&m, &roots_of(&[&root]), &[], None);
        assert!(!report.certified);
        assert_eq!(report.first_failure().unwrap().0, "publisher-chain");
    }

    #[test]
    fn endorsement_by_untrusted_root_fails() {
        let fake_root = SigningKey::from_seed(b"fake-root");
        let publisher = SigningKey::from_seed(b"indie");
        let end = Endorsement::issue(&fake_root, &publisher.verifying_key());
        let m = ManifestDraft::new("svc", b"img").sign(&publisher, Some(end));
        let real_roots = roots_of(&[&SigningKey::from_seed(b"root")]);
        assert!(!run_pipeline(&m, &real_roots, &[], None).certified);
    }

    #[test]
    fn open_channel_graph_fails_pola_lint() {
        let root = SigningKey::from_seed(b"root");
        let m = ManifestDraft::new("svc", b"img")
            .channel("leak", "unlisted", 5)
            .sign(&root, None);
        let report = run_pipeline(&m, &roots_of(&[&root]), &[], None);
        assert_eq!(report.first_failure().unwrap().0, "pola-lint");
    }

    #[test]
    fn ambient_badges_fail_pola_lint() {
        let root = SigningKey::from_seed(b"root");
        for badge in [AMBIENT_BADGE, ENV_RESERVED_BADGE] {
            let m = ManifestDraft::new("svc", b"img")
                .endpoint("peer")
                .channel("grab", "peer", badge)
                .sign(&root, None);
            let report = run_pipeline(&m, &roots_of(&[&root]), &[], None);
            assert!(!report.certified, "badge {badge} accepted");
            assert_eq!(report.first_failure().unwrap().0, "pola-lint");
        }
    }

    #[test]
    fn duplicate_channel_target_fails_pola_lint() {
        let root = SigningKey::from_seed(b"root");
        let m = ManifestDraft::new("svc", b"img")
            .endpoint("peer")
            .channel("a", "peer", 5)
            .channel("b", "peer", 5)
            .sign(&root, None);
        assert!(!run_pipeline(&m, &roots_of(&[&root]), &[], None).certified);
    }

    #[test]
    fn wot_threshold_gates_only_when_attached() {
        let root = SigningKey::from_seed(b"root");
        let m = ManifestDraft::new("svc", b"img").sign(&root, None);
        let roots = roots_of(&[&root]);
        let ok = run_pipeline(
            &m,
            &roots,
            &[],
            Some(WotCheck {
                score_milli: 500,
                threshold_milli: 500,
            }),
        );
        assert!(ok.certified, "{ok:?}");
        assert_eq!(ok.passes.len(), 4);
        let fail = run_pipeline(
            &m,
            &roots,
            &[],
            Some(WotCheck {
                score_milli: 499,
                threshold_milli: 500,
            }),
        );
        assert!(!fail.certified);
        assert_eq!(fail.first_failure().unwrap().0, WOT_PASS);
        // Detached graph: the pipeline stays at its three static passes.
        assert_eq!(run_pipeline(&m, &roots, &[], None).passes.len(), 3);
    }

    #[test]
    fn over_budget_fails_tcb_pass() {
        let root = SigningKey::from_seed(b"root");
        let m = ManifestDraft::new("svc", b"img")
            .loc(15_000)
            .budget(20_000)
            .sign(&root, None);
        let report = run_pipeline(&m, &roots_of(&[&root]), &classes(), None);
        assert!(!report.certified);
        let (pass, reason) = report.first_failure().unwrap();
        assert_eq!(pass, "tcb-budget");
        assert!(reason.contains("microkernel"), "{reason}");
    }
}
