//! A deterministic, content-addressed component registry with a
//! certification pipeline.
//!
//! The paper's component ecosystem (§III) presumes a trusted
//! distribution channel: components arrive as manifest-described images
//! and the composer instantiates them with only the declared channels —
//! but nothing in PRs 1–2 said *which* images deserve to be spawned at
//! all. This crate is that missing layer:
//!
//! * **Content-addressed store** — images are keyed by their measurement
//!   digest, the same `Digest::of_parts("lateral.domain.image", image)`
//!   every substrate reports at spawn, so the name a composer resolves
//!   and the measurement an attester verifies are one value.
//! * **Signed publisher manifests** ([`manifest`]) — a strict,
//!   no-partial-acceptance submission format signed with
//!   `lateral_crypto::sign`, optionally endorsed by a registry root.
//! * **Certification pipeline** ([`pipeline`]) — ordered static passes
//!   (publisher chain, POLA lint, TCB budget, and — when a
//!   `lateral-wot` trust graph is attached — the `wot-threshold`
//!   review-score gate) producing a [`CertificationReport`] that is
//!   **memoized** per (digest, pass-set version, trust epoch), with
//!   hit/miss counters in [`RegistryStats`].
//! * **Web of trust** — [`Registry::attach_wot`] replaces the single
//!   publisher chain as the admission authority: many parties' signed
//!   review proofs aggregate into a deterministic EigenTrust score,
//!   and a digest below the threshold in force is refused at
//!   resolution and demoted for running instances
//!   ([`Registry::wot_demoted`]).
//! * **Revocation** — a digest can be revoked with a reason; resolution
//!   refuses it, the supervisor quarantines running instances, and
//!   channel policies reject its attestation evidence over the network.
//! * **Deterministic trace** — every operation appends a fixed-width
//!   record to a bounded ring ([`Registry::trace_bytes`]); two identical
//!   runs produce byte-identical traces, which E11 asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod pipeline;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

use lateral_crypto::sign::VerifyingKey;
use lateral_crypto::Digest;
use lateral_telemetry::MetricsRegistry;
use lateral_wot::{Proof, TrustGraph};

pub use manifest::{ChannelSpec, Endorsement, ManifestDraft, SignedManifest};
pub use pipeline::{
    CertificationReport, PassResult, PassVerdict, WotCheck, PASS_SET_VERSION, WOT_PASS,
};

/// Computes the measurement digest a substrate would report for
/// `image` — the registry's content address. Kept in lock-step with
/// `DomainSpec::measurement` in `lateral-substrate` (same domain tag),
/// without depending on that crate.
pub fn measurement_of(image: &[u8]) -> Digest {
    Digest::of_parts(&[b"lateral.domain.image", image])
}

/// Errors from registry operations.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// A submission failed to parse.
    Decode(String),
    /// A signature or endorsement failed to verify.
    Signature(String),
    /// The submitted image does not hash to the manifest's digest.
    DigestMismatch {
        /// Digest the manifest claims.
        claimed: Digest,
        /// Digest the image actually measures to.
        actual: Digest,
    },
    /// No image/component under that key.
    NotFound(String),
    /// The digest failed certification; carries the first failing pass.
    Uncertified {
        /// The digest that failed.
        digest: Digest,
        /// Name of the first failing pass.
        pass: String,
        /// Why it failed.
        reason: String,
    },
    /// The digest has been revoked.
    Revoked {
        /// The revoked digest.
        digest: Digest,
        /// Reason recorded at revocation time.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Decode(r) => write!(f, "manifest decode: {r}"),
            RegistryError::Signature(r) => write!(f, "signature: {r}"),
            RegistryError::DigestMismatch { claimed, actual } => write!(
                f,
                "digest mismatch: manifest claims {} but image measures {}",
                claimed.short_hex(),
                actual.short_hex()
            ),
            RegistryError::NotFound(r) => write!(f, "not found: {r}"),
            RegistryError::Uncertified {
                digest,
                pass,
                reason,
            } => write!(
                f,
                "image {} is not certified: pass '{pass}' failed: {reason}",
                digest.short_hex()
            ),
            RegistryError::Revoked { digest, reason } => {
                write!(f, "image {} is revoked: {reason}", digest.short_hex())
            }
        }
    }
}

impl Error for RegistryError {}

/// Aggregate counters, in the style of the fabric engine's
/// `FabricStats`.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct RegistryStats {
    /// Images accepted into the store.
    pub published: u64,
    /// Certification requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Certification requests that ran the pipeline.
    pub cache_misses: u64,
    /// Resolutions that handed out an image.
    pub resolves: u64,
    /// Resolutions refused (uncertified, revoked, or unknown).
    pub refusals: u64,
    /// Digests revoked so far.
    pub revocations: u64,
    /// Web-of-trust proofs ingested through the registry.
    pub wot_proofs: u64,
}

impl RegistryStats {
    /// Cache hits as a fraction of all certification requests
    /// (0.0 when none were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// An owned copy of the counters as they stand now — the value to
    /// keep when the registry will keep serving (later operations would
    /// show through a borrow).
    #[must_use]
    pub fn snapshot(&self) -> RegistryStats {
        self.clone()
    }
}

impl fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "published={} hits={} misses={} resolves={} refusals={} revocations={} wot_proofs={}",
            self.published,
            self.cache_hits,
            self.cache_misses,
            self.resolves,
            self.refusals,
            self.revocations,
            self.wot_proofs
        )
    }
}

/// Operation codes in the deterministic trace (append-only; codes are
/// never renumbered).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TraceOp {
    /// An image was published.
    Publish = 0,
    /// Certification ran the pipeline (aux = 1 if certified).
    CertifyRun = 1,
    /// Certification was answered from the verdict cache.
    CertifyHit = 2,
    /// A digest was revoked.
    Revoke = 3,
    /// A resolution handed out an image.
    ResolveOk = 4,
    /// A resolution was refused (aux encodes the refusal class).
    ResolveRefused = 5,
    /// A web-of-trust proof was ingested (digest = proof id, aux = new
    /// trust epoch).
    WotIngest = 6,
}

/// One fixed-width trace record: `(seq, op, digest, aux)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Monotone per-registry sequence number.
    pub seq: u64,
    /// What happened.
    pub op: TraceOp,
    /// The digest the operation concerned (ZERO when unknown).
    pub digest: Digest,
    /// Operation-specific detail (certified flag, refusal class, …).
    pub aux: u64,
}

/// Encoded size of one trace record.
pub const TRACE_EVENT_LEN: usize = 8 + 1 + 32 + 8;

impl TraceEvent {
    /// Appends the canonical 49-byte little-endian encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.op as u8);
        out.extend_from_slice(self.digest.as_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
    }
}

/// Refusal classes recorded in [`TraceOp::ResolveRefused`] aux values.
pub mod refusal {
    /// The name or digest is unknown.
    pub const UNKNOWN: u64 = 1;
    /// The digest failed certification.
    pub const UNCERTIFIED: u64 = 2;
    /// The digest is revoked.
    pub const REVOKED: u64 = 3;
}

/// A successfully resolved image, ready to hand to a composer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedImage {
    /// Component name the image serves.
    pub component: String,
    /// Measurement digest (content address).
    pub digest: Digest,
    /// The image bytes.
    pub image: Vec<u8>,
    /// Publisher verifying key from the certified manifest.
    pub publisher: [u8; 32],
}

struct ImageEntry {
    image: Vec<u8>,
    manifest: SignedManifest,
}

/// Bound on the trace ring, mirroring the fabric engine's discipline.
const TRACE_CAPACITY: usize = 4096;

/// The registry: content-addressed image store, memoized certification,
/// and revocation.
///
/// ```
/// use lateral_crypto::sign::SigningKey;
/// use lateral_registry::{ManifestDraft, Registry};
///
/// # fn main() -> Result<(), lateral_registry::RegistryError> {
/// let mut reg = Registry::new("doc");
/// let publisher = SigningKey::from_seed(b"publisher");
/// reg.trust_root(&publisher.verifying_key());
/// let image = b"frobnicator v1";
/// let manifest = ManifestDraft::new("frobnicator", image).sign(&publisher, None);
/// let digest = reg.publish(image, manifest)?;
/// let resolved = reg.resolve("frobnicator")?;
/// assert_eq!(resolved.digest, digest);
/// assert_eq!(resolved.image, image);
/// reg.revoke(digest, "key ceremony compromised")?;
/// assert!(reg.resolve("frobnicator").is_err());
/// # Ok(())
/// # }
/// ```
pub struct Registry {
    name: String,
    roots: BTreeSet<[u8; 32]>,
    substrate_classes: Vec<(String, u64)>,
    images: BTreeMap<Digest, ImageEntry>,
    by_name: BTreeMap<String, Digest>,
    verdicts: BTreeMap<(Digest, u32, u64), CertificationReport>,
    revoked: BTreeMap<Digest, String>,
    wot: Option<TrustGraph>,
    wot_default_threshold_milli: i64,
    wot_assembly_threshold_milli: Option<i64>,
    metrics: MetricsRegistry,
    trace: VecDeque<TraceEvent>,
    next_seq: u64,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Registry('{}', {} images, {} revoked)",
            self.name,
            self.images.len(),
            self.revoked.len()
        )
    }
}

impl Registry {
    /// Creates an empty registry with no trusted roots and no substrate
    /// classes (the TCB-budget pass is then vacuous — add classes with
    /// [`Registry::with_substrate_class`]).
    pub fn new(name: &str) -> Registry {
        Registry {
            name: name.to_string(),
            roots: BTreeSet::new(),
            substrate_classes: Vec::new(),
            images: BTreeMap::new(),
            by_name: BTreeMap::new(),
            verdicts: BTreeMap::new(),
            revoked: BTreeMap::new(),
            wot: None,
            wot_default_threshold_milli: 0,
            wot_assembly_threshold_milli: None,
            metrics: MetricsRegistry::new(),
            trace: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// The registry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Trusts `root` to publish directly and to endorse publishers.
    pub fn trust_root(&mut self, root: &VerifyingKey) {
        self.roots.insert(root.to_bytes());
    }

    /// Adds a substrate class `(name, substrate TCB lines)` to the
    /// TCB-budget accounting. Changing the class table invalidates the
    /// verdict cache — earlier reports were produced against different
    /// inputs.
    #[must_use]
    pub fn with_substrate_class(mut self, class: &str, tcb_loc: u64) -> Registry {
        self.substrate_classes.push((class.to_string(), tcb_loc));
        self.verdicts.clear();
        self
    }

    /// Publishes `image` under `manifest`. Content addressing is
    /// enforced here: the image must hash to the manifest's digest.
    /// Publishing is idempotent per digest; the component name maps to
    /// the *latest* published digest. Certification is lazy — it runs
    /// (memoized) at first resolution or explicit
    /// [`Registry::certify`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::DigestMismatch`] when the bytes do not match the
    /// manifest.
    pub fn publish(
        &mut self,
        image: &[u8],
        manifest: SignedManifest,
    ) -> Result<Digest, RegistryError> {
        let actual = measurement_of(image);
        if actual != manifest.digest {
            return Err(RegistryError::DigestMismatch {
                claimed: manifest.digest,
                actual,
            });
        }
        let digest = manifest.digest;
        self.by_name.insert(manifest.component.clone(), digest);
        self.images.insert(
            digest,
            ImageEntry {
                image: image.to_vec(),
                manifest,
            },
        );
        self.metrics.incr("registry.published", 1);
        self.record(TraceOp::Publish, digest, 0);
        Ok(digest)
    }

    /// Attaches a web-of-trust graph: certification gains the fourth
    /// `wot-threshold` pass, admitting a digest only when its
    /// aggregated review score clears the threshold in force
    /// (`default_threshold_milli` unless an assembly declared its own
    /// via [`Registry::set_wot_threshold`]). Replaces any previously
    /// attached graph and invalidates the verdict cache.
    pub fn attach_wot(&mut self, graph: TrustGraph, default_threshold_milli: i64) {
        self.wot = Some(graph);
        self.wot_default_threshold_milli = default_threshold_milli;
        self.verdicts.clear();
    }

    /// The attached trust graph, for direct inspection. Prefer
    /// [`Registry::ingest_proof`] for mutation — it traces the ingest
    /// and keeps the epoch-keyed verdict cache honest.
    pub fn wot_graph_mut(&mut self) -> Option<&mut TrustGraph> {
        self.wot.as_mut()
    }

    /// The current trust epoch (0 while no graph is attached). Folded
    /// into the verdict-cache key, so every applied proof invalidates
    /// cached verdicts wholesale.
    pub fn wot_epoch(&self) -> u64 {
        self.wot.as_ref().map_or(0, TrustGraph::epoch)
    }

    /// Declares the admission threshold of the assembly being composed
    /// (`None` falls back to the registry default). Changing the value
    /// in force invalidates the verdict cache — thresholds are pipeline
    /// inputs that are not part of the cache key.
    pub fn set_wot_threshold(&mut self, threshold_milli: Option<i64>) {
        if self.wot_assembly_threshold_milli != threshold_milli {
            self.wot_assembly_threshold_milli = threshold_milli;
            self.verdicts.clear();
        }
    }

    /// The admission threshold currently in force, in milli-units.
    pub fn wot_threshold_milli(&self) -> i64 {
        self.wot_assembly_threshold_milli
            .unwrap_or(self.wot_default_threshold_milli)
    }

    /// Ingests a web-of-trust proof into the attached graph, tracing
    /// the operation. An applied proof bumps the trust epoch, which
    /// retires every cached verdict.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no graph is attached;
    /// [`RegistryError::Signature`] / [`RegistryError::Decode`] when
    /// the graph refuses the proof.
    pub fn ingest_proof(
        &mut self,
        proof: &Proof,
    ) -> Result<lateral_wot::IngestOutcome, RegistryError> {
        let Some(graph) = self.wot.as_mut() else {
            return Err(RegistryError::NotFound("no trust graph attached".into()));
        };
        let outcome = graph.ingest(proof).map_err(|e| match e {
            lateral_wot::WotError::Signature(r) => RegistryError::Signature(r),
            other => RegistryError::Decode(other.to_string()),
        })?;
        let epoch = graph.epoch();
        self.metrics.incr("registry.wot_proofs", 1);
        self.record(TraceOp::WotIngest, proof.id(), epoch);
        Ok(outcome)
    }

    /// Whether `digest`'s review score has fallen below the threshold
    /// in force — the supervisor's health-tick demotion check. Always
    /// `false` while no graph is attached.
    pub fn wot_demoted(&mut self, digest: Digest) -> bool {
        let threshold = self.wot_threshold_milli();
        match self.wot.as_mut() {
            Some(graph) => graph.subject_score_milli(digest) < threshold,
            None => false,
        }
    }

    /// Certifies `digest`, answering from the verdict cache when a
    /// report for (digest, [`PASS_SET_VERSION`], trust epoch) exists.
    /// The trust-epoch component means a score change — a distrust
    /// wave, a revoked endorsement — can never be served a stale
    /// `certified` verdict.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] for unknown digests. A *failing*
    /// report is returned as `Ok` — refusal semantics live in
    /// [`Registry::resolve`].
    pub fn certify(&mut self, digest: Digest) -> Result<CertificationReport, RegistryError> {
        if !self.images.contains_key(&digest) {
            return Err(RegistryError::NotFound(format!(
                "digest {}",
                digest.short_hex()
            )));
        }
        let key = (digest, PASS_SET_VERSION, self.wot_epoch());
        if let Some(report) = self.verdicts.get(&key) {
            let report = report.clone();
            self.metrics.incr("registry.cache_hits", 1);
            self.record(TraceOp::CertifyHit, digest, u64::from(report.certified));
            return Ok(report);
        }
        let threshold_milli = self.wot_threshold_milli();
        let wot_check = self.wot.as_mut().map(|graph| WotCheck {
            score_milli: graph.subject_score_milli(digest),
            threshold_milli,
        });
        let entry = &self.images[&digest];
        let report = pipeline::run_pipeline(
            &entry.manifest,
            &self.roots,
            &self.substrate_classes,
            wot_check,
        );
        self.verdicts.insert(key, report.clone());
        self.metrics.incr("registry.cache_misses", 1);
        self.record(TraceOp::CertifyRun, digest, u64::from(report.certified));
        Ok(report)
    }

    /// Revokes `digest` with `reason`. Idempotent; the first reason
    /// sticks.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] for digests never published.
    pub fn revoke(&mut self, digest: Digest, reason: &str) -> Result<(), RegistryError> {
        if !self.images.contains_key(&digest) {
            return Err(RegistryError::NotFound(format!(
                "digest {}",
                digest.short_hex()
            )));
        }
        if self.revoked.contains_key(&digest) {
            return Ok(());
        }
        self.revoked.insert(digest, reason.to_string());
        self.metrics.incr("registry.revocations", 1);
        self.record(TraceOp::Revoke, digest, 0);
        Ok(())
    }

    /// Whether `digest` is revoked.
    pub fn is_revoked(&self, digest: Digest) -> bool {
        self.revoked.contains_key(&digest)
    }

    /// Every revoked digest as raw bytes — the denylist handed to
    /// `lateral_net` channel policies.
    pub fn revoked_digests(&self) -> Vec<[u8; 32]> {
        self.revoked.keys().map(|d| d.0).collect()
    }

    /// The revocation epoch: a monotone count of revocations. Folded
    /// into remote session epochs, so any revocation landing after a
    /// resumption ticket was minted forces a fresh attestation
    /// handshake instead of a silent resume.
    pub fn revocation_epoch(&self) -> u64 {
        self.revoked.len() as u64
    }

    /// Raw content-addressed lookup: the stored bytes for `digest`,
    /// certification and revocation **unchecked** — this is what an
    /// untrusted mirror serves. Fetchers verify the measurement
    /// themselves and consult the authoritative registry for policy.
    pub fn image_bytes(&self, digest: Digest) -> Option<Vec<u8>> {
        self.images.get(&digest).map(|e| e.image.clone())
    }

    /// Resolves the latest published image for `component`, refusing
    /// uncertified and revoked digests.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::Uncertified`] /
    /// [`RegistryError::Revoked`].
    pub fn resolve(&mut self, component: &str) -> Result<ResolvedImage, RegistryError> {
        let Some(digest) = self.by_name.get(component).copied() else {
            self.metrics.incr("registry.refusals", 1);
            self.record(TraceOp::ResolveRefused, Digest::ZERO, refusal::UNKNOWN);
            return Err(RegistryError::NotFound(format!("component '{component}'")));
        };
        self.resolve_digest(digest)
    }

    /// Resolves an exact digest, refusing uncertified and revoked ones.
    ///
    /// # Errors
    ///
    /// Same as [`Registry::resolve`].
    pub fn resolve_digest(&mut self, digest: Digest) -> Result<ResolvedImage, RegistryError> {
        if let Some(reason) = self.revoked.get(&digest).cloned() {
            self.metrics.incr("registry.refusals", 1);
            self.record(TraceOp::ResolveRefused, digest, refusal::REVOKED);
            return Err(RegistryError::Revoked { digest, reason });
        }
        if !self.images.contains_key(&digest) {
            self.metrics.incr("registry.refusals", 1);
            self.record(TraceOp::ResolveRefused, digest, refusal::UNKNOWN);
            return Err(RegistryError::NotFound(format!(
                "digest {}",
                digest.short_hex()
            )));
        }
        let report = self.certify(digest)?;
        if !report.certified {
            let (pass, reason) = report.first_failure().expect("uncertified has a failure");
            let (pass, reason) = (pass.to_string(), reason.to_string());
            self.metrics.incr("registry.refusals", 1);
            self.record(TraceOp::ResolveRefused, digest, refusal::UNCERTIFIED);
            return Err(RegistryError::Uncertified {
                digest,
                pass,
                reason,
            });
        }
        let entry = &self.images[&digest];
        let resolved = ResolvedImage {
            component: entry.manifest.component.clone(),
            digest,
            image: entry.image.clone(),
            publisher: entry.manifest.publisher,
        };
        self.metrics.incr("registry.resolves", 1);
        self.record(TraceOp::ResolveOk, digest, 0);
        Ok(resolved)
    }

    /// Aggregate counters, rebuilt from the unified metrics registry
    /// (the single source of truth since the telemetry layer landed).
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            published: self.metrics.counter("registry.published"),
            cache_hits: self.metrics.counter("registry.cache_hits"),
            cache_misses: self.metrics.counter("registry.cache_misses"),
            resolves: self.metrics.counter("registry.resolves"),
            refusals: self.metrics.counter("registry.refusals"),
            revocations: self.metrics.counter("registry.revocations"),
            wot_proofs: self.metrics.counter("registry.wot_proofs"),
        }
    }

    /// The unified metrics registry behind [`Registry::stats`] —
    /// experiments aggregate it with the fabric's collector for a
    /// node-wide metrics table.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The trace ring, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEvent> {
        self.trace.iter()
    }

    /// Canonical byte encoding of the trace ring — byte-identical
    /// across identical runs (the E11 determinism gate).
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace.len() * TRACE_EVENT_LEN);
        for ev in &self.trace {
            ev.encode_into(&mut out);
        }
        out
    }

    fn record(&mut self, op: TraceOp, digest: Digest, aux: u64) {
        if self.trace.len() == TRACE_CAPACITY {
            self.trace.pop_front();
        }
        self.trace.push_back(TraceEvent {
            seq: self.next_seq,
            op,
            digest,
            aux,
        });
        self.next_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_crypto::sign::SigningKey;

    fn registry_with_root(seed: &[u8]) -> (Registry, SigningKey) {
        let key = SigningKey::from_seed(seed);
        let mut reg = Registry::new("test");
        reg.trust_root(&key.verifying_key());
        (reg, key)
    }

    #[test]
    fn publish_resolve_round_trip() {
        let (mut reg, key) = registry_with_root(b"root");
        let image = b"svc v1";
        let digest = reg
            .publish(image, ManifestDraft::new("svc", image).sign(&key, None))
            .unwrap();
        let r = reg.resolve("svc").unwrap();
        assert_eq!(r.digest, digest);
        assert_eq!(r.image, image);
        assert_eq!(r.component, "svc");
        assert_eq!(reg.stats().resolves, 1);
    }

    #[test]
    fn digest_mismatch_refused_at_publish() {
        let (mut reg, key) = registry_with_root(b"root");
        let manifest = ManifestDraft::new("svc", b"real image").sign(&key, None);
        let err = reg.publish(b"different bytes", manifest).unwrap_err();
        assert!(matches!(err, RegistryError::DigestMismatch { .. }));
        assert_eq!(reg.stats().published, 0);
    }

    #[test]
    fn verdict_cache_hits_on_repeat() {
        let (mut reg, key) = registry_with_root(b"root");
        let image = b"svc v1";
        let digest = reg
            .publish(image, ManifestDraft::new("svc", image).sign(&key, None))
            .unwrap();
        let first = reg.certify(digest).unwrap();
        let second = reg.certify(digest).unwrap();
        assert_eq!(first, second);
        let stats = reg.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.hit_ratio() > 0.0);
        // Resolution also rides the cache.
        reg.resolve("svc").unwrap();
        assert_eq!(reg.stats().cache_hits, 2);
    }

    #[test]
    fn uncertified_image_refused_at_resolve() {
        let (mut reg, _key) = registry_with_root(b"root");
        let stranger = SigningKey::from_seed(b"stranger");
        let image = b"rogue v1";
        reg.publish(
            image,
            ManifestDraft::new("rogue", image).sign(&stranger, None),
        )
        .unwrap();
        let err = reg.resolve("rogue").unwrap_err();
        assert!(matches!(err, RegistryError::Uncertified { .. }), "{err}");
        assert_eq!(reg.stats().refusals, 1);
    }

    #[test]
    fn revoked_image_refused_and_listed() {
        let (mut reg, key) = registry_with_root(b"root");
        let image = b"svc v1";
        let digest = reg
            .publish(image, ManifestDraft::new("svc", image).sign(&key, None))
            .unwrap();
        reg.resolve("svc").unwrap();
        reg.revoke(digest, "private key leaked").unwrap();
        reg.revoke(digest, "second reason ignored").unwrap();
        assert!(reg.is_revoked(digest));
        assert_eq!(reg.revoked_digests(), vec![digest.0]);
        assert_eq!(reg.stats().revocations, 1);
        let err = reg.resolve("svc").unwrap_err();
        assert!(matches!(err, RegistryError::Revoked { .. }));
        match err {
            RegistryError::Revoked { reason, .. } => assert_eq!(reason, "private key leaked"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn revoking_unknown_digest_fails() {
        let (mut reg, _) = registry_with_root(b"root");
        assert!(matches!(
            reg.revoke(Digest::of(b"ghost"), "nope"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn newer_publish_supersedes_by_name() {
        let (mut reg, key) = registry_with_root(b"root");
        let d1 = reg
            .publish(
                b"svc v1",
                ManifestDraft::new("svc", b"svc v1").sign(&key, None),
            )
            .unwrap();
        let d2 = reg
            .publish(
                b"svc v2",
                ManifestDraft::new("svc", b"svc v2").sign(&key, None),
            )
            .unwrap();
        assert_ne!(d1, d2);
        assert_eq!(reg.resolve("svc").unwrap().digest, d2);
        // The superseded digest remains addressable by content.
        assert_eq!(reg.resolve_digest(d1).unwrap().digest, d1);
        // Revoking v2 does not block an explicit fallback to v1.
        reg.revoke(d2, "bad release").unwrap();
        assert!(reg.resolve("svc").is_err());
        assert!(reg.resolve_digest(d1).is_ok());
    }

    #[test]
    fn trace_is_deterministic_and_bounded() {
        let run = || {
            let (mut reg, key) = registry_with_root(b"root");
            let image = b"svc v1";
            let digest = reg
                .publish(image, ManifestDraft::new("svc", image).sign(&key, None))
                .unwrap();
            reg.resolve("svc").unwrap();
            reg.resolve("svc").unwrap();
            reg.revoke(digest, "drill").unwrap();
            let _ = reg.resolve("svc");
            reg.trace_bytes()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "identical runs must trace identically");
        assert!(!a.is_empty());
        assert_eq!(a.len() % TRACE_EVENT_LEN, 0);
    }

    /// A registry whose wot gate is live: `reviewer` is the seeded
    /// trust root of the attached graph.
    fn registry_with_wot(threshold_milli: i64) -> (Registry, SigningKey, SigningKey) {
        let (mut reg, publisher) = registry_with_root(b"root");
        let reviewer = SigningKey::from_seed(b"reviewer root");
        let mut graph = lateral_wot::TrustGraph::new();
        graph.seed_root(&reviewer.verifying_key().to_bytes());
        reg.attach_wot(graph, threshold_milli);
        (reg, publisher, reviewer)
    }

    #[test]
    fn wot_pass_gates_resolution_on_review_score() {
        use lateral_wot::{Proof, Rating, ReviewProof};
        let (mut reg, publisher, reviewer) = registry_with_wot(100);
        let image = b"svc v1";
        let digest = reg
            .publish(
                image,
                ManifestDraft::new("svc", image).sign(&publisher, None),
            )
            .unwrap();
        // Unreviewed: score 0 < 100 milli, refused by the wot pass.
        let err = reg.resolve("svc").unwrap_err();
        match err {
            RegistryError::Uncertified { pass, .. } => assert_eq!(pass, WOT_PASS),
            other => panic!("expected wot refusal, got {other}"),
        }
        // A positive review from the seeded root clears the threshold.
        let review = ReviewProof::issue(&reviewer, digest, Rating::High, 1);
        reg.ingest_proof(&Proof::Review(review)).unwrap();
        reg.resolve("svc").unwrap();
        assert!(!reg.wot_demoted(digest));
        assert_eq!(reg.stats().wot_proofs, 1);
    }

    /// The satellite bugfix regression: a verdict cache keyed only on
    /// (digest, pass-set version) would keep serving `certified` after
    /// a distrust wave. The trust-epoch key component forces a miss.
    #[test]
    fn distrust_wave_cannot_be_served_a_stale_verdict() {
        use lateral_wot::{Proof, Rating, ReviewProof};
        let (mut reg, publisher, reviewer) = registry_with_wot(100);
        let image = b"svc v1";
        let digest = reg
            .publish(
                image,
                ManifestDraft::new("svc", image).sign(&publisher, None),
            )
            .unwrap();
        let review = ReviewProof::issue(&reviewer, digest, Rating::High, 1);
        reg.ingest_proof(&Proof::Review(review)).unwrap();
        assert!(reg.certify(digest).unwrap().certified);
        // Same epoch: answered from the cache.
        assert!(reg.certify(digest).unwrap().certified);
        assert_eq!(reg.stats().cache_hits, 1);
        let misses_before = reg.stats().cache_misses;
        // The reviewer recants at a later epoch: the score collapses.
        let wave = ReviewProof::issue(&reviewer, digest, Rating::Distrust, 2);
        reg.ingest_proof(&Proof::Review(wave)).unwrap();
        let report = reg.certify(digest).unwrap();
        assert_eq!(
            reg.stats().cache_misses,
            misses_before + 1,
            "epoch change must miss the verdict cache"
        );
        assert!(!report.certified, "distrusted digest must fail");
        assert_eq!(report.first_failure().unwrap().0, WOT_PASS);
        assert!(reg.wot_demoted(digest));
        assert!(matches!(
            reg.resolve("svc").unwrap_err(),
            RegistryError::Uncertified { .. }
        ));
    }

    #[test]
    fn assembly_threshold_overrides_default_and_invalidates_cache() {
        use lateral_wot::{Proof, Rating, ReviewProof};
        let (mut reg, publisher, reviewer) = registry_with_wot(100);
        let image = b"svc v1";
        let digest = reg
            .publish(
                image,
                ManifestDraft::new("svc", image).sign(&publisher, None),
            )
            .unwrap();
        let review = ReviewProof::issue(&reviewer, digest, Rating::Trust, 1);
        reg.ingest_proof(&Proof::Review(review)).unwrap();
        assert!(reg.certify(digest).unwrap().certified);
        // A stricter per-assembly threshold refuses the same score —
        // and must not be answered from the old threshold's cache.
        reg.set_wot_threshold(Some(1_000_000));
        assert!(!reg.certify(digest).unwrap().certified);
        reg.set_wot_threshold(None);
        assert!(reg.certify(digest).unwrap().certified);
    }

    #[test]
    fn tcb_budget_classes_gate_certification() {
        let key = SigningKey::from_seed(b"root");
        let mut reg = Registry::new("budget").with_substrate_class("monolith", 20_000_000);
        reg.trust_root(&key.verifying_key());
        let image = b"svc v1";
        reg.publish(
            image,
            ManifestDraft::new("svc", image)
                .loc(500)
                .budget(100_000)
                .sign(&key, None),
        )
        .unwrap();
        let err = reg.resolve("svc").unwrap_err();
        match err {
            RegistryError::Uncertified { pass, .. } => assert_eq!(pass, "tcb-budget"),
            other => panic!("expected uncertified, got {other}"),
        }
    }
}
