//! Signed publisher manifests: the registry's submission format.
//!
//! A publisher describes one component image — its measurement digest,
//! declared size, TCB budget, and the *closed* channel graph the
//! component is allowed — and signs the canonical serialization. The
//! decoder holds the same bar as `AttackReport::decode` in
//! `lateral-components`: every directive appears exactly where the
//! grammar says, exactly the right number of times, and anything else
//! is rejected outright. There is no partial acceptance — adversarial
//! bytes either parse into a complete, internally consistent manifest
//! or fail loudly.

use lateral_crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral_crypto::Digest;

use crate::{measurement_of, RegistryError};

/// Domain separator for the publisher's manifest signature.
const MANIFEST_SIG_DOMAIN: &[u8] = b"lateral.registry.manifest.v1";

/// Domain separator for a root's endorsement of a publisher key.
const ENDORSE_SIG_DOMAIN: &[u8] = b"lateral.registry.endorse.v1";

/// One channel the component is allowed to use (POLA: nothing else).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Label the component uses to refer to the channel.
    pub label: String,
    /// Target component name (must be a declared endpoint).
    pub to: String,
    /// Badge delivered to the target.
    pub badge: u64,
}

/// A root key's endorsement of a publisher key (one-level chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing root's verifying key.
    pub root: [u8; 32],
    /// Root signature over the endorsed publisher key.
    pub signature: [u8; 64],
}

impl Endorsement {
    /// Issues an endorsement of `publisher` by `root`.
    pub fn issue(root: &SigningKey, publisher: &VerifyingKey) -> Endorsement {
        let msg = endorse_message(&publisher.to_bytes());
        Endorsement {
            root: root.verifying_key().to_bytes(),
            signature: root.sign(&msg).to_bytes(),
        }
    }

    /// Verifies this endorsement covers `publisher`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Signature`] when the chain does not check out.
    pub fn verify(&self, publisher: &[u8; 32]) -> Result<(), RegistryError> {
        let vk = VerifyingKey::from_bytes(&self.root)
            .map_err(|e| RegistryError::Signature(format!("bad endorsement root key: {e}")))?;
        let sig = Signature::from_bytes(&self.signature)
            .map_err(|e| RegistryError::Signature(format!("bad endorsement signature: {e}")))?;
        vk.verify(&endorse_message(publisher), &sig)
            .map_err(|_| RegistryError::Signature("endorsement signature invalid".into()))
    }
}

fn endorse_message(publisher: &[u8; 32]) -> Vec<u8> {
    Digest::of_parts(&[ENDORSE_SIG_DOMAIN, publisher])
        .as_bytes()
        .to_vec()
}

/// A signed publisher manifest describing one component image.
///
/// Construct via [`ManifestDraft`] (which computes the digest and
/// signature) or [`SignedManifest::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedManifest {
    /// Component name the image serves.
    pub component: String,
    /// Measurement digest of the image (what a substrate would report).
    pub digest: Digest,
    /// Declared implementation size in lines of code.
    pub loc: u64,
    /// Maximum total TCB (component + substrate) the publisher accepts.
    pub tcb_budget: u64,
    /// Every peer component this one may ever talk to.
    pub endpoints: Vec<String>,
    /// The declared channel graph (must stay inside `endpoints`).
    pub channels: Vec<ChannelSpec>,
    /// Publisher verifying key.
    pub publisher: [u8; 32],
    /// Optional root endorsement of the publisher key.
    pub endorsement: Option<Endorsement>,
    /// Publisher signature over the canonical payload.
    pub signature: [u8; 64],
}

impl SignedManifest {
    /// The canonical text the publisher signs: everything up to (and
    /// excluding) the `signature` line, in grammar order.
    pub fn payload_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "publisher-manifest v1");
        let _ = writeln!(out, "component {}", self.component);
        let _ = writeln!(out, "digest {}", encode_hex(self.digest.as_bytes()));
        let _ = writeln!(out, "loc {}", self.loc);
        let _ = writeln!(out, "budget {}", self.tcb_budget);
        for e in &self.endpoints {
            let _ = writeln!(out, "endpoint {e}");
        }
        for ch in &self.channels {
            let _ = writeln!(out, "channel {} {} {}", ch.label, ch.to, ch.badge);
        }
        let _ = writeln!(out, "publisher {}", encode_hex(&self.publisher));
        if let Some(end) = &self.endorsement {
            let _ = writeln!(
                out,
                "endorsement {} {}",
                encode_hex(&end.root),
                encode_hex(&end.signature)
            );
        }
        out
    }

    /// The domain-separated message the publisher signature covers.
    pub fn signing_message(&self) -> Vec<u8> {
        Digest::of_parts(&[MANIFEST_SIG_DOMAIN, self.payload_text().as_bytes()])
            .as_bytes()
            .to_vec()
    }

    /// Serializes to the strict line format [`SignedManifest::decode`]
    /// accepts. `decode(m.to_text())` reproduces `m` exactly.
    pub fn to_text(&self) -> String {
        let mut out = self.payload_text();
        out.push_str(&format!("signature {}\n", encode_hex(&self.signature)));
        out
    }

    /// Parses the strict line format. The grammar is *positional*:
    ///
    /// ```text
    /// publisher-manifest v1
    /// component <name>
    /// digest <64 hex>
    /// loc <u64>
    /// budget <u64>
    /// endpoint <name>              (zero or more)
    /// channel <label> <to> <badge> (zero or more)
    /// publisher <64 hex>
    /// endorsement <64 hex> <128 hex>  (optional)
    /// signature <128 hex>
    /// ```
    ///
    /// No blank lines, no comments, no reordering, no repetition of
    /// scalar directives, no trailing content. Names are single tokens
    /// of `[A-Za-z0-9._-]`. Channel-graph *semantics* (closure, badge
    /// hygiene) are the certification pipeline's job, not the decoder's.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Decode`] on any deviation.
    pub fn decode(text: &str) -> Result<SignedManifest, RegistryError> {
        let bad = |why: &str| RegistryError::Decode(why.to_string());
        let mut lines = text.lines().peekable();

        if lines.next() != Some("publisher-manifest v1") {
            return Err(bad("missing 'publisher-manifest v1' header"));
        }
        let component = expect_name_line(&mut lines, "component")?;
        let digest = Digest(expect_hex_line::<32>(&mut lines, "digest")?);
        let loc = expect_u64_line(&mut lines, "loc")?;
        let tcb_budget = expect_u64_line(&mut lines, "budget")?;

        let mut endpoints = Vec::new();
        while next_directive(&mut lines) == Some("endpoint") {
            let line = lines.next().expect("peeked");
            let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
            let ["endpoint", name] = toks.as_slice() else {
                return Err(bad("expected 'endpoint <name>'"));
            };
            endpoints.push(parse_name(name)?);
        }

        let mut channels = Vec::new();
        while next_directive(&mut lines) == Some("channel") {
            let line = lines.next().expect("peeked");
            let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
            let ["channel", label, to, badge] = toks.as_slice() else {
                return Err(bad("expected 'channel <label> <to> <badge>'"));
            };
            channels.push(ChannelSpec {
                label: parse_name(label)?,
                to: parse_name(to)?,
                badge: badge.parse().map_err(|_| bad("malformed channel badge"))?,
            });
        }

        let publisher = expect_hex_line::<32>(&mut lines, "publisher")?;

        let endorsement = if next_directive(&mut lines) == Some("endorsement") {
            let line = lines.next().expect("peeked");
            let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
            let ["endorsement", root_hex, sig_hex] = toks.as_slice() else {
                return Err(bad("expected 'endorsement <root> <signature>'"));
            };
            Some(Endorsement {
                root: decode_hex_array::<32>(root_hex)
                    .ok_or_else(|| bad("malformed endorsement root hex"))?,
                signature: decode_hex_array::<64>(sig_hex)
                    .ok_or_else(|| bad("malformed endorsement signature hex"))?,
            })
        } else {
            None
        };

        let signature = expect_hex_line::<64>(&mut lines, "signature")?;
        if lines.next().is_some() {
            return Err(bad("trailing content after 'signature' line"));
        }
        Ok(SignedManifest {
            component,
            digest,
            loc,
            tcb_budget,
            endpoints,
            channels,
            publisher,
            endorsement,
            signature,
        })
    }

    /// Verifies the publisher signature over the canonical payload.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Signature`] when the key or signature is bad.
    pub fn verify_signature(&self) -> Result<(), RegistryError> {
        let vk = VerifyingKey::from_bytes(&self.publisher)
            .map_err(|e| RegistryError::Signature(format!("bad publisher key: {e}")))?;
        let sig = Signature::from_bytes(&self.signature)
            .map_err(|e| RegistryError::Signature(format!("bad manifest signature: {e}")))?;
        vk.verify(&self.signing_message(), &sig)
            .map_err(|_| RegistryError::Signature("publisher signature invalid".into()))
    }
}

/// Builder for a [`SignedManifest`]: computes the image's measurement
/// digest and the publisher signature at [`ManifestDraft::sign`] time.
#[derive(Clone, Debug)]
pub struct ManifestDraft {
    component: String,
    digest: Digest,
    loc: u64,
    tcb_budget: u64,
    endpoints: Vec<String>,
    channels: Vec<ChannelSpec>,
}

impl ManifestDraft {
    /// Starts a draft for `component` backed by `image` (defaults:
    /// 1000 LoC, effectively unbounded TCB budget, no channels).
    pub fn new(component: &str, image: &[u8]) -> ManifestDraft {
        ManifestDraft {
            component: component.to_string(),
            digest: measurement_of(image),
            loc: 1_000,
            tcb_budget: u64::MAX,
            endpoints: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Sets the declared line count.
    #[must_use]
    pub fn loc(mut self, loc: u64) -> ManifestDraft {
        self.loc = loc;
        self
    }

    /// Sets the TCB budget (component + substrate lines).
    #[must_use]
    pub fn budget(mut self, budget: u64) -> ManifestDraft {
        self.tcb_budget = budget;
        self
    }

    /// Declares a peer endpoint.
    #[must_use]
    pub fn endpoint(mut self, name: &str) -> ManifestDraft {
        self.endpoints.push(name.to_string());
        self
    }

    /// Declares a channel `label → to` with `badge`.
    #[must_use]
    pub fn channel(mut self, label: &str, to: &str, badge: u64) -> ManifestDraft {
        self.channels.push(ChannelSpec {
            label: label.to_string(),
            to: to.to_string(),
            badge,
        });
        self
    }

    /// Signs the draft with `publisher`, optionally carrying a root
    /// endorsement of the publisher key.
    pub fn sign(self, publisher: &SigningKey, endorsement: Option<Endorsement>) -> SignedManifest {
        let mut m = SignedManifest {
            component: self.component,
            digest: self.digest,
            loc: self.loc,
            tcb_budget: self.tcb_budget,
            endpoints: self.endpoints,
            channels: self.channels,
            publisher: publisher.verifying_key().to_bytes(),
            endorsement,
            signature: [0u8; 64],
        };
        m.signature = publisher.sign(&m.signing_message()).to_bytes();
        m
    }
}

// ------------------------------------------------------------- helpers

fn next_directive<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
) -> Option<&'a str> {
    lines
        .peek()
        .and_then(|l| l.split(' ').find(|t| !t.is_empty()))
}

fn expect_tokens<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    directive: &str,
) -> Result<Vec<&'a str>, RegistryError> {
    let line = lines
        .next()
        .ok_or_else(|| RegistryError::Decode(format!("missing '{directive}' line")))?;
    let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
    match toks.first() {
        Some(d) if *d == directive => Ok(toks[1..].to_vec()),
        _ => Err(RegistryError::Decode(format!(
            "expected '{directive}' line"
        ))),
    }
}

fn expect_name_line<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    directive: &str,
) -> Result<String, RegistryError> {
    let toks = expect_tokens(lines, directive)?;
    let [name] = toks.as_slice() else {
        return Err(RegistryError::Decode(format!(
            "expected '{directive} <name>'"
        )));
    };
    parse_name(name)
}

fn expect_u64_line<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    directive: &str,
) -> Result<u64, RegistryError> {
    let toks = expect_tokens(lines, directive)?;
    let [n] = toks.as_slice() else {
        return Err(RegistryError::Decode(format!(
            "expected '{directive} <number>'"
        )));
    };
    n.parse()
        .map_err(|_| RegistryError::Decode(format!("malformed {directive}")))
}

fn expect_hex_line<'a, const N: usize>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    directive: &str,
) -> Result<[u8; N], RegistryError> {
    let toks = expect_tokens(lines, directive)?;
    let [hex] = toks.as_slice() else {
        return Err(RegistryError::Decode(format!(
            "expected '{directive} <hex>'"
        )));
    };
    decode_hex_array::<N>(hex)
        .ok_or_else(|| RegistryError::Decode(format!("malformed {directive} hex")))
}

fn parse_name(s: &str) -> Result<String, RegistryError> {
    let ok = !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(s.to_string())
    } else {
        Err(RegistryError::Decode(format!("malformed name '{s}'")))
    }
}

pub(crate) fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn decode_hex_array<const N: usize>(s: &str) -> Option<[u8; N]> {
    if s.len() != 2 * N {
        return None;
    }
    let mut out = [0u8; N];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft() -> ManifestDraft {
        ManifestDraft::new("meter-agent", b"meter image v1")
            .loc(1_200)
            .budget(25_000)
            .endpoint("utility")
            .channel("report", "utility", 7)
    }

    #[test]
    fn round_trips_and_verifies() {
        let key = SigningKey::from_seed(b"publisher");
        let m = draft().sign(&key, None);
        m.verify_signature().unwrap();
        let decoded = SignedManifest::decode(&m.to_text()).unwrap();
        assert_eq!(decoded, m);
        decoded.verify_signature().unwrap();
        assert_eq!(decoded.digest, measurement_of(b"meter image v1"));
    }

    #[test]
    fn endorsed_round_trip() {
        let root = SigningKey::from_seed(b"root");
        let publisher = SigningKey::from_seed(b"pub2");
        let end = Endorsement::issue(&root, &publisher.verifying_key());
        let m = draft().sign(&publisher, Some(end));
        let decoded = SignedManifest::decode(&m.to_text()).unwrap();
        assert_eq!(decoded, m);
        decoded
            .endorsement
            .unwrap()
            .verify(&decoded.publisher)
            .unwrap();
    }

    #[test]
    fn endorsement_of_other_key_rejected() {
        let root = SigningKey::from_seed(b"root");
        let victim = SigningKey::from_seed(b"victim");
        let mallory = SigningKey::from_seed(b"mallory");
        let end = Endorsement::issue(&root, &victim.verifying_key());
        assert!(end.verify(&mallory.verifying_key().to_bytes()).is_err());
    }

    #[test]
    fn tampered_payload_fails_signature() {
        let key = SigningKey::from_seed(b"publisher");
        let mut m = draft().sign(&key, None);
        m.loc += 1;
        assert!(m.verify_signature().is_err());
    }

    #[test]
    fn decoder_rejects_structural_deviations() {
        let key = SigningKey::from_seed(b"publisher");
        let good = draft().sign(&key, None).to_text();
        // Dropping any mandatory line breaks the positional grammar
        // (endpoint/channel lines are legitimately repeatable-or-absent,
        // so removing them is a *semantic* matter for the pipeline).
        let lines: Vec<&str> = good.lines().collect();
        for skip in 0..lines.len() {
            if lines[skip].starts_with("endpoint") || lines[skip].starts_with("channel") {
                continue;
            }
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            assert!(
                SignedManifest::decode(&mutated).is_err(),
                "accepted manifest missing line {skip}: {:?}",
                lines[skip]
            );
        }
        // Duplicating a scalar line is rejected too.
        for dup in 0..lines.len() {
            let mut mutated = String::new();
            for (i, l) in lines.iter().enumerate() {
                mutated.push_str(&format!("{l}\n"));
                if i == dup && !l.starts_with("endpoint") && !l.starts_with("channel") {
                    mutated.push_str(&format!("{l}\n"));
                }
            }
            if mutated.lines().count() == lines.len() {
                continue;
            }
            assert!(
                SignedManifest::decode(&mutated).is_err(),
                "accepted duplicated line {dup}: {:?}",
                lines[dup]
            );
        }
    }

    #[test]
    fn decoder_rejects_garbage() {
        for bad in [
            "",
            "publisher-manifest v1",
            "publisher-manifest v2\ncomponent a",
            "component a\npublisher-manifest v1",
            "publisher-manifest v1\ncomponent two words\n",
            "publisher-manifest v1\ncomponent a\ndigest zz\n",
        ] {
            assert!(SignedManifest::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trailing_content_rejected() {
        let key = SigningKey::from_seed(b"publisher");
        let mut text = draft().sign(&key, None).to_text();
        text.push_str("extra junk\n");
        assert!(SignedManifest::decode(&text).is_err());
    }
}
