//! The boot ROM: the machine's immutable trust anchor.
//!
//! §II-D "Secure Launch": *"a trust anchor that cannot be altered is needed
//! in the machine's boot process. The anchor must enforce a launch policy."*
//! Two policies appear in the paper:
//!
//! * **Secure booting** — the ROM checks a digital signature on every boot
//!   stage and *refuses to run* improperly signed software.
//! * **Authenticated booting** — the ROM (acting as the TPM's Core Root of
//!   Trust for Measurement) measures each stage into a cryptographic boot
//!   log without rejecting anything, preserving the freedom to run
//!   arbitrary code on open platforms.
//!
//! The difference "is simply caused by different launch policies
//! implemented by the trust anchor" — hence one [`BootRom`] type
//! parameterized by [`LaunchPolicy`].

use lateral_crypto::sign::{Signature, VerifyingKey};
use lateral_crypto::Digest;

use crate::HwError;

/// One stage in the boot chain (boot loader, kernel, initial services…).
#[derive(Clone, Debug)]
pub struct BootStage {
    /// Human-readable stage name (recorded in the boot log).
    pub name: String,
    /// The stage's code image.
    pub image: Vec<u8>,
    /// Vendor signature over the image digest, if the stage is signed.
    pub signature: Option<Signature>,
}

impl BootStage {
    /// Creates an unsigned boot stage.
    pub fn new(name: &str, image: &[u8]) -> BootStage {
        BootStage {
            name: name.to_string(),
            image: image.to_vec(),
            signature: None,
        }
    }

    /// Creates a stage signed by the vendor's signing key.
    pub fn signed(name: &str, image: &[u8], key: &lateral_crypto::sign::SigningKey) -> BootStage {
        let digest = Digest::of(image);
        BootStage {
            name: name.to_string(),
            image: image.to_vec(),
            signature: Some(key.sign(digest.as_bytes())),
        }
    }

    /// The measurement (code identity) of this stage.
    pub fn measurement(&self) -> Digest {
        Digest::of(&self.image)
    }
}

/// The launch policy burned into the ROM.
#[derive(Clone, Debug, Default)]
pub struct LaunchPolicy {
    /// When set, every stage must carry a valid signature under this key
    /// (secure booting).
    pub verify: Option<VerifyingKey>,
    /// When true, every stage is measured into the [`Measurer`]
    /// (authenticated booting).
    pub measure: bool,
}

impl LaunchPolicy {
    /// Secure booting: verify signatures, no measurement.
    pub fn secure_boot(vendor_key: VerifyingKey) -> LaunchPolicy {
        LaunchPolicy {
            verify: Some(vendor_key),
            measure: false,
        }
    }

    /// Authenticated booting: measure everything, reject nothing.
    pub fn authenticated_boot() -> LaunchPolicy {
        LaunchPolicy {
            verify: None,
            measure: true,
        }
    }

    /// Both verify and measure (e.g. a phone vendor that also attests).
    pub fn secure_and_measured(vendor_key: VerifyingKey) -> LaunchPolicy {
        LaunchPolicy {
            verify: Some(vendor_key),
            measure: true,
        }
    }

    /// No policy: legacy open boot (measured nothing, checked nothing).
    pub fn open() -> LaunchPolicy {
        LaunchPolicy::default()
    }
}

/// Receiver of boot measurements — implemented by the TPM crate's PCR
/// bank and by the in-crate [`BootLog`].
pub trait Measurer {
    /// Records that a stage with `digest` named `name` was launched.
    fn measure(&mut self, name: &str, digest: Digest);
}

/// A minimal in-memory measurement log (for machines without a TPM).
#[derive(Clone, Debug, Default)]
pub struct BootLog {
    /// Recorded (stage name, digest) pairs in launch order.
    pub entries: Vec<(String, Digest)>,
}

impl Measurer for BootLog {
    fn measure(&mut self, name: &str, digest: Digest) {
        self.entries.push((name.to_string(), digest));
    }
}

/// Report of a completed boot.
#[derive(Clone, Debug)]
pub struct BootReport {
    /// Each booted stage: name, measurement, whether its signature was
    /// verified (only meaningful under secure boot).
    pub stages: Vec<(String, Digest, bool)>,
}

impl BootReport {
    /// The combined identity of the whole booted stack: an extend-chain
    /// over all stage measurements (order-sensitive, like a PCR).
    pub fn stack_identity(&self) -> Digest {
        let mut acc = Digest::ZERO;
        for (_, d, _) in &self.stages {
            acc = acc.extend(d.as_bytes());
        }
        acc
    }
}

/// The immutable boot ROM.
#[derive(Clone, Debug)]
pub struct BootRom {
    policy: LaunchPolicy,
}

impl BootRom {
    /// Creates a ROM with the given policy. After manufacture the policy
    /// cannot change — there is deliberately no setter.
    pub fn new(policy: LaunchPolicy) -> BootRom {
        BootRom { policy }
    }

    /// The burned-in policy.
    pub fn policy(&self) -> &LaunchPolicy {
        &self.policy
    }

    /// Runs the boot chain under the launch policy.
    ///
    /// # Errors
    ///
    /// Under secure boot, returns [`HwError::BootFailure`] at the first
    /// stage with a missing or invalid signature; nothing after that stage
    /// runs ("the machine will refuse to run improperly signed software").
    pub fn boot(
        &self,
        chain: &[BootStage],
        measurer: &mut dyn Measurer,
    ) -> Result<BootReport, HwError> {
        let mut stages = Vec::with_capacity(chain.len());
        for stage in chain {
            let digest = stage.measurement();
            let verified = if let Some(key) = &self.policy.verify {
                match &stage.signature {
                    Some(sig) => {
                        key.verify(digest.as_bytes(), sig).map_err(|_| {
                            HwError::BootFailure(format!(
                                "stage '{}' has an invalid signature",
                                stage.name
                            ))
                        })?;
                        true
                    }
                    None => {
                        return Err(HwError::BootFailure(format!(
                            "stage '{}' is unsigned under secure boot",
                            stage.name
                        )))
                    }
                }
            } else {
                false
            };
            if self.policy.measure {
                measurer.measure(&stage.name, digest);
            }
            stages.push((stage.name.clone(), digest, verified));
        }
        Ok(BootReport { stages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_crypto::rng::Drbg;
    use lateral_crypto::sign::SigningKey;

    fn vendor() -> SigningKey {
        SigningKey::from_seed(b"boot vendor")
    }

    fn chain_signed() -> Vec<BootStage> {
        let v = vendor();
        vec![
            BootStage::signed("bootloader", b"bootloader v1", &v),
            BootStage::signed("kernel", b"kernel v1", &v),
        ]
    }

    #[test]
    fn secure_boot_accepts_signed_chain() {
        let rom = BootRom::new(LaunchPolicy::secure_boot(vendor().verifying_key()));
        let mut log = BootLog::default();
        let report = rom.boot(&chain_signed(), &mut log).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert!(report.stages.iter().all(|(_, _, v)| *v));
        assert!(log.entries.is_empty(), "secure boot does not measure");
    }

    #[test]
    fn secure_boot_rejects_unsigned_stage() {
        let rom = BootRom::new(LaunchPolicy::secure_boot(vendor().verifying_key()));
        let mut chain = chain_signed();
        chain.push(BootStage::new("rootkit", b"evil"));
        let mut log = BootLog::default();
        assert!(matches!(
            rom.boot(&chain, &mut log),
            Err(HwError::BootFailure(_))
        ));
    }

    #[test]
    fn secure_boot_rejects_tampered_image() {
        let rom = BootRom::new(LaunchPolicy::secure_boot(vendor().verifying_key()));
        let mut chain = chain_signed();
        chain[1].image = b"kernel v1 with implant".to_vec();
        let mut log = BootLog::default();
        assert!(rom.boot(&chain, &mut log).is_err());
    }

    #[test]
    fn secure_boot_rejects_wrong_vendor() {
        let mut rng = Drbg::from_seed(b"other vendor");
        let other = SigningKey::generate(&mut rng);
        let rom = BootRom::new(LaunchPolicy::secure_boot(other.verifying_key()));
        let mut log = BootLog::default();
        assert!(rom.boot(&chain_signed(), &mut log).is_err());
    }

    #[test]
    fn authenticated_boot_measures_but_never_rejects() {
        let rom = BootRom::new(LaunchPolicy::authenticated_boot());
        let chain = vec![
            BootStage::new("bootloader", b"any code"),
            BootStage::new("custom-os", b"hobby kernel"),
        ];
        let mut log = BootLog::default();
        let report = rom.boot(&chain, &mut log).unwrap();
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.entries[0].1, Digest::of(b"any code"));
        assert!(report.stages.iter().all(|(_, _, v)| !*v));
    }

    #[test]
    fn stack_identity_is_order_sensitive() {
        let rom = BootRom::new(LaunchPolicy::authenticated_boot());
        let a = BootStage::new("a", b"aaa");
        let b = BootStage::new("b", b"bbb");
        let mut l1 = BootLog::default();
        let mut l2 = BootLog::default();
        let r1 = rom.boot(&[a.clone(), b.clone()], &mut l1).unwrap();
        let r2 = rom.boot(&[b, a], &mut l2).unwrap();
        assert_ne!(r1.stack_identity(), r2.stack_identity());
    }

    #[test]
    fn open_boot_neither_measures_nor_verifies() {
        let rom = BootRom::new(LaunchPolicy::open());
        let mut log = BootLog::default();
        let report = rom
            .boot(&[BootStage::new("anything", b"whatever")], &mut log)
            .unwrap();
        assert!(log.entries.is_empty());
        assert_eq!(report.stages.len(), 1);
    }
}
