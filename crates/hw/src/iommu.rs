//! The IOMMU: filtering DMA by device identity.
//!
//! §II-D: "peripheral devices are also capable of direct DRAM access …
//! IOMMUs control memory access by the device the same way MMUs control
//! memory access by the CPU." Without an IOMMU mapping, a malicious device
//! (or a malicious driver commanding a benign device) can overwrite
//! arbitrary DRAM including page tables; experiment E9 exercises exactly
//! that attack with the IOMMU disabled and enabled.

use std::collections::{BTreeMap, BTreeSet};

use crate::mem::Frame;
use crate::DeviceId;

/// IOMMU state: which frames each device may touch.
#[derive(Clone, Debug, Default)]
pub struct Iommu {
    enabled: bool,
    grants: BTreeMap<DeviceId, BTreeSet<u64>>,
}

impl Iommu {
    /// Creates a disabled IOMMU (all DMA passes — the historical default).
    pub fn new() -> Iommu {
        Iommu::default()
    }

    /// Enables enforcement. With enforcement on, devices only reach frames
    /// explicitly granted to them.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables enforcement (all DMA passes).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether enforcement is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Grants `device` access to `frame`.
    pub fn grant(&mut self, device: DeviceId, frame: Frame) {
        self.grants.entry(device).or_default().insert(frame.0);
    }

    /// Revokes a grant.
    pub fn revoke(&mut self, device: DeviceId, frame: Frame) {
        if let Some(set) = self.grants.get_mut(&device) {
            set.remove(&frame.0);
        }
    }

    /// Revokes every grant held by `device`.
    pub fn revoke_all(&mut self, device: DeviceId) {
        self.grants.remove(&device);
    }

    /// Whether `device` may access `frame` under the current configuration.
    pub fn allows(&self, device: DeviceId, frame: Frame) -> bool {
        if !self.enabled {
            return true;
        }
        self.grants
            .get(&device)
            .map(|set| set.contains(&frame.0))
            .unwrap_or(false)
    }

    /// Number of frames granted to `device`.
    pub fn grant_count(&self, device: DeviceId) -> usize {
        self.grants.get(&device).map(|s| s.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: DeviceId = DeviceId(1);
    const OTHER: DeviceId = DeviceId(2);

    #[test]
    fn disabled_iommu_allows_everything() {
        let iommu = Iommu::new();
        assert!(iommu.allows(DEV, Frame(0)));
        assert!(iommu.allows(OTHER, Frame(99)));
    }

    #[test]
    fn enabled_iommu_denies_by_default() {
        let mut iommu = Iommu::new();
        iommu.enable();
        assert!(!iommu.allows(DEV, Frame(0)));
    }

    #[test]
    fn grants_are_per_device_and_per_frame() {
        let mut iommu = Iommu::new();
        iommu.enable();
        iommu.grant(DEV, Frame(3));
        assert!(iommu.allows(DEV, Frame(3)));
        assert!(!iommu.allows(DEV, Frame(4)));
        assert!(!iommu.allows(OTHER, Frame(3)));
    }

    #[test]
    fn revoke_removes_access() {
        let mut iommu = Iommu::new();
        iommu.enable();
        iommu.grant(DEV, Frame(3));
        iommu.grant(DEV, Frame(4));
        iommu.revoke(DEV, Frame(3));
        assert!(!iommu.allows(DEV, Frame(3)));
        assert!(iommu.allows(DEV, Frame(4)));
        iommu.revoke_all(DEV);
        assert!(!iommu.allows(DEV, Frame(4)));
        assert_eq!(iommu.grant_count(DEV), 0);
    }

    #[test]
    fn re_disabling_restores_open_access() {
        let mut iommu = Iommu::new();
        iommu.enable();
        assert!(!iommu.allows(DEV, Frame(0)));
        iommu.disable();
        assert!(iommu.allows(DEV, Frame(0)));
    }
}
