//! eFuses: per-device secrets burned in at manufacturing.
//!
//! The smart-meter scenario (§III-C) depends on this: "A per-device AES
//! key is fused into the chip by the manufacturer and is only accessible
//! to the secure world, allowing the attestation component to prove its
//! identity to the utility." §II-D generalizes it: attestation requires a
//! *tamper-resistant secret with restricted access*.

use crate::{HwError, Initiator, World};

/// Who may read a fuse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuseAccess {
    /// Only the TrustZone secure world.
    SecureWorldOnly,
    /// Only the SEP coprocessor.
    SepOnly,
    /// Only the SGX-style hardware itself (exposed to enclaves indirectly
    /// through key-derivation instructions, never raw).
    SgxHardwareOnly,
}

/// One fused secret.
#[derive(Clone)]
struct Fuse {
    name: String,
    value: [u8; 32],
    access: FuseAccess,
}

/// The fuse bank of one machine.
#[derive(Clone, Default)]
pub struct FuseBank {
    fuses: Vec<Fuse>,
    locked: bool,
}

impl std::fmt::Debug for FuseBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FuseBank({} fuses, locked={})",
            self.fuses.len(),
            self.locked
        )
    }
}

impl FuseBank {
    /// Creates an empty, unlocked fuse bank (the manufacturing state).
    pub fn new() -> FuseBank {
        FuseBank::default()
    }

    /// Burns a new fuse. Only possible before [`FuseBank::lock`] — i.e. in
    /// the factory.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::FuseDenied`] after the bank is locked.
    pub fn burn(&mut self, name: &str, value: [u8; 32], access: FuseAccess) -> Result<(), HwError> {
        if self.locked {
            return Err(HwError::FuseDenied(
                "fuse bank is locked (device left the factory)".into(),
            ));
        }
        self.fuses.push(Fuse {
            name: name.to_string(),
            value,
            access,
        });
        Ok(())
    }

    /// Locks the bank: no further burning. Models the device shipping.
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Whether the bank is locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Reads a fuse, enforcing the access policy against the initiator.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::FuseDenied`] when the fuse does not exist or
    /// the initiator is not permitted by the fuse's [`FuseAccess`].
    pub fn read(&self, initiator: Initiator, name: &str) -> Result<[u8; 32], HwError> {
        let fuse = self
            .fuses
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| HwError::FuseDenied(format!("no fuse named '{name}'")))?;
        let ok = match fuse.access {
            FuseAccess::SecureWorldOnly => matches!(
                initiator,
                Initiator::Cpu {
                    world: World::Secure,
                    enclave: None,
                }
            ),
            FuseAccess::SepOnly => matches!(initiator, Initiator::Sep),
            // Raw reads are never allowed; the SGX model derives keys from
            // the fuse internally.
            FuseAccess::SgxHardwareOnly => false,
        };
        if ok {
            Ok(fuse.value)
        } else {
            Err(HwError::FuseDenied(format!(
                "fuse '{name}' not readable by {initiator}"
            )))
        }
    }

    /// Internal key derivation for hardware models (SGX EGETKEY, SEP key
    /// vault): derives a key from the named fuse without exposing it.
    /// Available to hardware model code regardless of [`FuseAccess`]; the
    /// crates modeling the hardware keep this out of software reach.
    pub fn derive(&self, name: &str, context: &[u8]) -> Result<[u8; 32], HwError> {
        let fuse = self
            .fuses
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| HwError::FuseDenied(format!("no fuse named '{name}'")))?;
        Ok(lateral_crypto::hmac::hkdf(
            b"lateral.fuse.derive",
            &fuse.value,
            context,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> FuseBank {
        let mut b = FuseBank::new();
        b.burn("device-key", [7u8; 32], FuseAccess::SecureWorldOnly)
            .unwrap();
        b.burn("sep-key", [8u8; 32], FuseAccess::SepOnly).unwrap();
        b.burn("sgx-root", [9u8; 32], FuseAccess::SgxHardwareOnly)
            .unwrap();
        b.lock();
        b
    }

    #[test]
    fn secure_world_reads_its_fuse() {
        let b = bank();
        assert_eq!(
            b.read(Initiator::cpu(World::Secure), "device-key").unwrap(),
            [7u8; 32]
        );
    }

    #[test]
    fn normal_world_cannot_read_fuses() {
        let b = bank();
        assert!(b.read(Initiator::cpu(World::Normal), "device-key").is_err());
        assert!(b.read(Initiator::cpu(World::Normal), "sep-key").is_err());
    }

    #[test]
    fn sep_fuse_is_sep_exclusive() {
        let b = bank();
        assert!(b.read(Initiator::Sep, "sep-key").is_ok());
        assert!(b.read(Initiator::cpu(World::Secure), "sep-key").is_err());
    }

    #[test]
    fn sgx_root_never_raw_readable() {
        let b = bank();
        for init in [
            Initiator::cpu(World::Secure),
            Initiator::cpu(World::Normal),
            Initiator::Sep,
            Initiator::Probe,
        ] {
            assert!(b.read(init, "sgx-root").is_err());
        }
        // But derivation works for the hardware model.
        let k1 = b.derive("sgx-root", b"enclave 1 seal").unwrap();
        let k2 = b.derive("sgx-root", b"enclave 2 seal").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn burning_after_lock_fails() {
        let mut b = bank();
        assert!(b
            .burn("late", [0u8; 32], FuseAccess::SecureWorldOnly)
            .is_err());
    }

    #[test]
    fn missing_fuse_is_an_error() {
        let b = bank();
        assert!(b.read(Initiator::cpu(World::Secure), "nope").is_err());
        assert!(b.derive("nope", b"ctx").is_err());
    }

    #[test]
    fn probe_cannot_read_fuses() {
        // Fuses are on-die; the DRAM probe never sees them.
        let b = bank();
        assert!(b.read(Initiator::Probe, "device-key").is_err());
    }
}
