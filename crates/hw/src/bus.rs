//! The memory bus: the single point where every access is checked.
//!
//! Real isolation hardware works precisely this way — TrustZone conveys an
//! NS bit with each bus request, SGX's memory encryption engine sits
//! between cache and DRAM, the IOMMU filters device traffic. The
//! [`policy`] function is the access-control matrix of the whole machine:
//! given *who* ([`Initiator`]) touches *what* ([`FrameOwner`]), it decides
//! deny, allow-plaintext, or allow-ciphertext.
//!
//! The paper's §II-D argument ("different solutions address different
//! attacker models") is directly encoded here: a physical [`Initiator::
//! Probe`] sees TrustZone secure memory in plaintext but EPC/SEP memory
//! only as ciphertext.

use crate::mem::FrameOwner;
use crate::{HwError, Initiator, PhysAddr, World};

/// Direction of a bus access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

/// What the initiator gets to see / do, when the access is allowed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Visibility {
    /// The access proceeds on plaintext data.
    Plain,
    /// The access proceeds, but the initiator only observes ciphertext
    /// (reads), or its writes corrupt protected memory and will be
    /// detected by the owner's integrity check (writes).
    Ciphertext,
}

/// A record of a *denied* access, kept for the experiment reports.
#[derive(Clone, Debug)]
pub struct DeniedAccess {
    /// Who attempted the access.
    pub initiator: Initiator,
    /// Target address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// The rule that fired.
    pub reason: String,
}

/// Result of consulting the bus policy: how the access may proceed.
///
/// `iommu_allows` reports whether the IOMMU (when configured) maps the
/// target frame for the requesting device; it is ignored for non-device
/// initiators.
///
/// # Errors
///
/// Returns [`HwError::AccessDenied`] when the access-control matrix
/// forbids the access outright.
pub fn policy(
    initiator: Initiator,
    owner: FrameOwner,
    // The matrix is currently direction-symmetric; the parameter keeps the
    // signature honest for models where it is not.
    _kind: AccessKind,
    addr: PhysAddr,
    iommu_allows: bool,
) -> Result<Visibility, HwError> {
    let deny = |reason: &str| {
        Err(HwError::AccessDenied {
            initiator,
            addr,
            reason: reason.to_string(),
        })
    };
    match owner {
        // Free frames behave like ordinary DRAM (they are zeroed anyway).
        FrameOwner::Free | FrameOwner::Normal => match initiator {
            Initiator::Cpu { .. } | Initiator::Sep => Ok(Visibility::Plain),
            Initiator::Device(_) => {
                if iommu_allows {
                    Ok(Visibility::Plain)
                } else {
                    deny("IOMMU blocks device access to unmapped frame")
                }
            }
            // DRAM on the open bus: the probe sees everything.
            Initiator::Probe => Ok(Visibility::Plain),
        },
        FrameOwner::Secure => match initiator {
            Initiator::Cpu {
                world: World::Secure,
                enclave: None,
            } => Ok(Visibility::Plain),
            Initiator::Cpu { .. } => deny("TrustZone: normal world cannot access secure frame"),
            Initiator::Sep => deny("TrustZone: coprocessor port blocked from secure frame"),
            Initiator::Device(_) => deny("TZASC blocks device DMA to secure frame"),
            // TrustZone does NOT encrypt DRAM: a physical attacker reads
            // and corrupts secure-world memory. This is the decisive
            // difference from SGX/SEP in experiment E9.
            Initiator::Probe => Ok(Visibility::Plain),
        },
        FrameOwner::Epc(owner_id) => match initiator {
            Initiator::Cpu {
                enclave: Some(e), ..
            } if e == owner_id => Ok(Visibility::Plain),
            Initiator::Cpu { .. } => deny("SGX: EPC frame belongs to another execution context"),
            Initiator::Sep => deny("SGX: EPC not accessible to coprocessor"),
            Initiator::Device(_) => deny("SGX: EPC not DMA-able"),
            // The memory encryption engine: the probe sees ciphertext and
            // its writes are detected by the integrity MAC.
            Initiator::Probe => Ok(Visibility::Ciphertext),
        },
        FrameOwner::SepPrivate => match initiator {
            Initiator::Sep => Ok(Visibility::Plain),
            Initiator::Probe => Ok(Visibility::Ciphertext),
            _ => deny("SEP private memory is reserved for the coprocessor"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnclaveId;

    const A: PhysAddr = PhysAddr(0x1000);

    fn allowed(i: Initiator, o: FrameOwner, k: AccessKind) -> Option<Visibility> {
        policy(i, o, k, A, true).ok()
    }

    #[test]
    fn normal_world_cannot_touch_secure() {
        assert!(allowed(
            Initiator::cpu(World::Normal),
            FrameOwner::Secure,
            AccessKind::Read
        )
        .is_none());
        assert_eq!(
            allowed(
                Initiator::cpu(World::Secure),
                FrameOwner::Secure,
                AccessKind::Read
            ),
            Some(Visibility::Plain)
        );
    }

    #[test]
    fn enclave_cannot_cross_into_other_enclave() {
        let e1 = Initiator::enclave(EnclaveId(1));
        let owner2 = FrameOwner::Epc(EnclaveId(2));
        assert!(allowed(e1, owner2, AccessKind::Read).is_none());
        assert_eq!(
            allowed(e1, FrameOwner::Epc(EnclaveId(1)), AccessKind::Write),
            Some(Visibility::Plain)
        );
    }

    #[test]
    fn os_cannot_read_enclave_memory() {
        // The operating system (plain CPU, no enclave) cannot see EPC — the
        // paper's data-center use case: the cloud operator has no
        // visibility into the customer enclave.
        assert!(allowed(
            Initiator::cpu(World::Normal),
            FrameOwner::Epc(EnclaveId(7)),
            AccessKind::Read
        )
        .is_none());
        assert!(allowed(
            Initiator::cpu(World::Secure),
            FrameOwner::Epc(EnclaveId(7)),
            AccessKind::Read
        )
        .is_none());
    }

    #[test]
    fn probe_sees_plaintext_dram_but_ciphertext_epc() {
        assert_eq!(
            allowed(Initiator::Probe, FrameOwner::Normal, AccessKind::Read),
            Some(Visibility::Plain)
        );
        assert_eq!(
            allowed(Initiator::Probe, FrameOwner::Secure, AccessKind::Read),
            Some(Visibility::Plain),
            "TrustZone does not encrypt DRAM"
        );
        assert_eq!(
            allowed(
                Initiator::Probe,
                FrameOwner::Epc(EnclaveId(1)),
                AccessKind::Read
            ),
            Some(Visibility::Ciphertext)
        );
        assert_eq!(
            allowed(Initiator::Probe, FrameOwner::SepPrivate, AccessKind::Read),
            Some(Visibility::Ciphertext)
        );
    }

    #[test]
    fn device_dma_gated_by_iommu() {
        let dev = Initiator::Device(crate::DeviceId(0));
        assert!(policy(dev, FrameOwner::Normal, AccessKind::Write, A, false).is_err());
        assert!(policy(dev, FrameOwner::Normal, AccessKind::Write, A, true).is_ok());
        // Even with an IOMMU mapping, secure and EPC frames stay closed.
        assert!(policy(dev, FrameOwner::Secure, AccessKind::Read, A, true).is_err());
        assert!(policy(
            dev,
            FrameOwner::Epc(EnclaveId(1)),
            AccessKind::Read,
            A,
            true
        )
        .is_err());
    }

    #[test]
    fn sep_private_is_exclusive() {
        assert_eq!(
            allowed(Initiator::Sep, FrameOwner::SepPrivate, AccessKind::Read),
            Some(Visibility::Plain)
        );
        assert!(allowed(
            Initiator::cpu(World::Secure),
            FrameOwner::SepPrivate,
            AccessKind::Read
        )
        .is_none());
    }
}
