//! On-chip scratchpad memory.
//!
//! §II-D "Physical Exposure of Data": "some memory may be on-chip and can
//! be used as is, whereas data going to off-chip memory over an exposed
//! bus must be encrypted … a software implementation of such memory
//! encryption is conceivable using on-chip scratchpad memory." The
//! scratchpad is reachable only by the CPU — the DRAM probe has no port to
//! it — and the `spill`/`fill` helpers implement exactly the
//! software-managed encrypted eviction the paper sketches.

use lateral_crypto::aead::Aead;

use crate::{HwError, Initiator, PhysAddr};

/// On-chip scratchpad: a small SRAM invisible to the bus probe.
pub struct Scratchpad {
    data: Vec<u8>,
}

impl std::fmt::Debug for Scratchpad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scratchpad({} bytes)", self.data.len())
    }
}

impl Scratchpad {
    /// Creates a scratchpad of `size` bytes.
    pub fn new(size: usize) -> Scratchpad {
        Scratchpad {
            data: vec![0u8; size],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn check_initiator(&self, initiator: Initiator) -> Result<(), HwError> {
        match initiator {
            Initiator::Cpu { .. } | Initiator::Sep => Ok(()),
            other => Err(HwError::AccessDenied {
                initiator: other,
                addr: PhysAddr(0),
                reason: "scratchpad is on-chip; no bus port".into(),
            }),
        }
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::AccessDenied`] for devices and the probe, or
    /// [`HwError::BadAddress`] for out-of-range offsets.
    pub fn read(
        &self,
        initiator: Initiator,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, HwError> {
        self.check_initiator(initiator)?;
        let end = offset
            .checked_add(len)
            .filter(|e| *e <= self.data.len())
            .ok_or(HwError::BadAddress(PhysAddr(offset as u64)))?;
        Ok(self.data[offset..end].to_vec())
    }

    /// Writes `bytes` at `offset`.
    ///
    /// # Errors
    ///
    /// Same as [`Scratchpad::read`].
    pub fn write(
        &mut self,
        initiator: Initiator,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), HwError> {
        self.check_initiator(initiator)?;
        let end = offset
            .checked_add(bytes.len())
            .filter(|e| *e <= self.data.len())
            .ok_or(HwError::BadAddress(PhysAddr(offset as u64)))?;
        self.data[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Software memory encryption: encrypts a scratchpad region for
    /// spilling to exposed DRAM. Returns the sealed bytes (ciphertext +
    /// tag) the caller writes to DRAM through the bus.
    ///
    /// # Errors
    ///
    /// Propagates range and access errors from [`Scratchpad::read`].
    pub fn spill(
        &self,
        initiator: Initiator,
        offset: usize,
        len: usize,
        key: &[u8; 32],
        spill_id: u64,
    ) -> Result<Vec<u8>, HwError> {
        let plain = self.read(initiator, offset, len)?;
        Ok(Aead::new(key).seal(spill_id, b"scratchpad.spill", &plain))
    }

    /// Reloads a previously spilled region, verifying integrity.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IntegrityViolation`] when the DRAM copy was
    /// tampered with, plus the range/access errors of [`Scratchpad::write`].
    pub fn fill(
        &mut self,
        initiator: Initiator,
        offset: usize,
        sealed: &[u8],
        key: &[u8; 32],
        spill_id: u64,
    ) -> Result<(), HwError> {
        let plain = Aead::new(key)
            .open(spill_id, b"scratchpad.spill", sealed)
            .map_err(|_| HwError::IntegrityViolation(PhysAddr(offset as u64)))?;
        self.write(initiator, offset, &plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn cpu_reads_and_writes() {
        let mut sp = Scratchpad::new(256);
        let cpu = Initiator::cpu(World::Normal);
        sp.write(cpu, 10, b"on-chip secret").unwrap();
        assert_eq!(sp.read(cpu, 10, 14).unwrap(), b"on-chip secret");
    }

    #[test]
    fn probe_and_devices_have_no_port() {
        let sp = Scratchpad::new(64);
        assert!(sp.read(Initiator::Probe, 0, 1).is_err());
        assert!(sp
            .read(Initiator::Device(crate::DeviceId(0)), 0, 1)
            .is_err());
    }

    #[test]
    fn bounds_are_checked() {
        let mut sp = Scratchpad::new(16);
        let cpu = Initiator::cpu(World::Secure);
        assert!(sp.read(cpu, 10, 10).is_err());
        assert!(sp.write(cpu, 15, b"ab").is_err());
        assert!(sp.read(cpu, usize::MAX, 2).is_err());
    }

    #[test]
    fn spill_fill_roundtrip() {
        let mut sp = Scratchpad::new(64);
        let cpu = Initiator::cpu(World::Secure);
        sp.write(cpu, 0, b"spill me to dram").unwrap();
        let key = [3u8; 32];
        let sealed = sp.spill(cpu, 0, 16, &key, 1).unwrap();
        // Overwrite, then restore from the sealed DRAM copy.
        sp.write(cpu, 0, &[0u8; 16]).unwrap();
        sp.fill(cpu, 0, &sealed, &key, 1).unwrap();
        assert_eq!(sp.read(cpu, 0, 16).unwrap(), b"spill me to dram");
    }

    #[test]
    fn tampered_spill_is_detected() {
        let mut sp = Scratchpad::new(64);
        let cpu = Initiator::cpu(World::Secure);
        sp.write(cpu, 0, b"sensitive").unwrap();
        let key = [3u8; 32];
        let mut sealed = sp.spill(cpu, 0, 9, &key, 1).unwrap();
        sealed[2] ^= 0xff; // physical attacker flips DRAM bits
        assert!(matches!(
            sp.fill(cpu, 0, &sealed, &key, 1),
            Err(HwError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn spill_ciphertext_hides_content() {
        let mut sp = Scratchpad::new(64);
        let cpu = Initiator::cpu(World::Secure);
        sp.write(cpu, 0, b"AAAAAAAAAAAAAAAA").unwrap();
        let sealed = sp.spill(cpu, 0, 16, &[1u8; 32], 0).unwrap();
        assert!(!sealed.windows(4).any(|w| w == b"AAAA"));
    }
}
