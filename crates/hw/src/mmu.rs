//! The MMU: per-address-space page tables with access rights.
//!
//! The MMU is deliberately *policy-free* hardware — it enforces whatever
//! mappings privileged software installs. The paper's point (§II-D "Basic
//! Access Control"): the software that programs the MMU is part of the
//! isolation substrate and therefore of every component's TCB. In this
//! workspace that software is the `lateral-microkernel` crate.

use std::collections::BTreeMap;

use crate::mem::Frame;
use crate::{HwError, PhysAddr, VirtAddr, PAGE_SIZE};

/// Access rights of a mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rights {
    /// Mapping permits reads.
    pub read: bool,
    /// Mapping permits writes.
    pub write: bool,
    /// Mapping permits instruction fetch.
    pub execute: bool,
}

impl Rights {
    /// Read-only data.
    pub const R: Rights = Rights {
        read: true,
        write: false,
        execute: false,
    };
    /// Read-write data.
    pub const RW: Rights = Rights {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-execute (code).
    pub const RX: Rights = Rights {
        read: true,
        write: false,
        execute: true,
    };

    /// Whether these rights permit `kind`-style access.
    pub fn permits(&self, kind: crate::bus::AccessKind) -> bool {
        match kind {
            crate::bus::AccessKind::Read => self.read,
            crate::bus::AccessKind::Write => self.write,
        }
    }
}

impl std::fmt::Display for Rights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { "r" } else { "-" },
            if self.write { "w" } else { "-" },
            if self.execute { "x" } else { "-" }
        )
    }
}

/// One page-table entry.
#[derive(Clone, Copy, Debug)]
pub struct Mapping {
    /// Backing physical frame.
    pub frame: Frame,
    /// Access rights.
    pub rights: Rights,
}

/// A page table: one virtual address space.
///
/// ```
/// use lateral_hw::mmu::{AddressSpace, Rights};
/// use lateral_hw::mem::Frame;
/// use lateral_hw::VirtAddr;
///
/// let mut aspace = AddressSpace::new();
/// aspace.map(VirtAddr(0x1000), Frame(7), Rights::RW);
/// let (pa, _) = aspace.translate(VirtAddr(0x1004), lateral_hw::bus::AccessKind::Read).unwrap();
/// assert_eq!(pa.frame(), 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AddressSpace {
    pages: BTreeMap<u64, Mapping>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Installs (or replaces) a mapping for the page containing `va`.
    pub fn map(&mut self, va: VirtAddr, frame: Frame, rights: Rights) {
        self.pages.insert(va.page(), Mapping { frame, rights });
    }

    /// Removes the mapping for the page containing `va`, returning it.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<Mapping> {
        self.pages.remove(&va.page())
    }

    /// Looks up the mapping for the page containing `va`.
    pub fn mapping(&self, va: VirtAddr) -> Option<&Mapping> {
        self.pages.get(&va.page())
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates over `(virtual page number, mapping)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Mapping)> {
        self.pages.iter().map(|(k, v)| (*k, v))
    }

    /// Translates `va` for a `kind` access, checking rights.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::PageFault`] when the page is unmapped or the
    /// rights do not permit the access.
    pub fn translate(
        &self,
        va: VirtAddr,
        kind: crate::bus::AccessKind,
    ) -> Result<(PhysAddr, Rights), HwError> {
        let mapping = self
            .pages
            .get(&va.page())
            .ok_or_else(|| HwError::PageFault {
                addr: va,
                reason: "unmapped page".into(),
            })?;
        if !mapping.rights.permits(kind) {
            return Err(HwError::PageFault {
                addr: va,
                reason: format!("rights {} do not permit {:?}", mapping.rights, kind),
            });
        }
        Ok((mapping.frame.base().add(va.offset() as u64), mapping.rights))
    }

    /// Translates a byte range, yielding per-page physical spans.
    ///
    /// Accesses may cross page boundaries; each returned span lies within
    /// one page.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::PageFault`] on the first page lacking a suitable
    /// mapping.
    pub fn translate_range(
        &self,
        va: VirtAddr,
        len: usize,
        kind: crate::bus::AccessKind,
    ) -> Result<Vec<(PhysAddr, usize)>, HwError> {
        let mut spans = Vec::new();
        let mut cur = va;
        let mut remaining = len;
        while remaining > 0 {
            let (pa, _) = self.translate(cur, kind)?;
            let in_page = PAGE_SIZE - cur.offset();
            let take = remaining.min(in_page);
            spans.push((pa, take));
            cur = cur.add(take as u64);
            remaining -= take;
        }
        Ok(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::AccessKind;

    #[test]
    fn unmapped_page_faults() {
        let aspace = AddressSpace::new();
        let err = aspace.translate(VirtAddr(0), AccessKind::Read).unwrap_err();
        assert!(matches!(err, HwError::PageFault { .. }));
    }

    #[test]
    fn rights_are_enforced() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(0), Frame(1), Rights::R);
        assert!(aspace.translate(VirtAddr(0), AccessKind::Read).is_ok());
        assert!(aspace.translate(VirtAddr(0), AccessKind::Write).is_err());
    }

    #[test]
    fn translation_preserves_offset() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(2 * PAGE_SIZE as u64), Frame(5), Rights::RW);
        let (pa, _) = aspace
            .translate(VirtAddr(2 * PAGE_SIZE as u64 + 123), AccessKind::Write)
            .unwrap();
        assert_eq!(pa, PhysAddr(5 * PAGE_SIZE as u64 + 123));
    }

    #[test]
    fn range_crossing_pages() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(0), Frame(1), Rights::RW);
        aspace.map(VirtAddr(PAGE_SIZE as u64), Frame(9), Rights::RW);
        let spans = aspace
            .translate_range(VirtAddr(PAGE_SIZE as u64 - 10), 20, AccessKind::Read)
            .unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].1, 10);
        assert_eq!(spans[1].0, PhysAddr(9 * PAGE_SIZE as u64));
        assert_eq!(spans[1].1, 10);
    }

    #[test]
    fn range_fails_on_hole() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(0), Frame(1), Rights::RW);
        // Page 1 is unmapped.
        assert!(aspace
            .translate_range(VirtAddr(PAGE_SIZE as u64 - 10), 20, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn unmap_removes_access() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(0), Frame(1), Rights::RW);
        assert!(aspace.unmap(VirtAddr(0)).is_some());
        assert!(aspace.translate(VirtAddr(0), AccessKind::Read).is_err());
        assert!(aspace.unmap(VirtAddr(0)).is_none());
    }

    #[test]
    fn remap_replaces() {
        let mut aspace = AddressSpace::new();
        aspace.map(VirtAddr(0), Frame(1), Rights::RW);
        aspace.map(VirtAddr(0), Frame(2), Rights::R);
        let (pa, r) = aspace.translate(VirtAddr(0), AccessKind::Read).unwrap();
        assert_eq!(pa.frame(), 2);
        assert!(!r.write);
        assert_eq!(aspace.mapped_pages(), 1);
    }
}
