//! Physical memory: frames tagged with a security owner.
//!
//! Every frame of simulated DRAM carries a [`FrameOwner`] tag. The tag is
//! the hardware ground truth that the [`crate::bus`] checks on every
//! access — it models TrustZone's per-region NS configuration (TZASC),
//! SGX's EPC ownership, and the SEP's private carve-out.

use crate::{EnclaveId, HwError, PhysAddr, PAGE_SIZE};

/// Security owner of a physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameOwner {
    /// Unallocated.
    Free,
    /// Ordinary DRAM visible to the normal world.
    Normal,
    /// TrustZone secure-world memory (blocked for normal-world CPU and all
    /// devices; *visible to a physical probe* — TrustZone does not encrypt).
    Secure,
    /// SGX-style enclave page cache frame owned by one enclave. The memory
    /// encryption engine makes non-owner reads return ciphertext.
    Epc(EnclaveId),
    /// Private memory of the security coprocessor, inline-encrypted.
    SepPrivate,
}

/// A handle to one allocated physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Frame(pub u64);

impl Frame {
    /// Physical base address of the frame.
    pub fn base(&self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE as u64)
    }
}

struct FrameState {
    owner: FrameOwner,
    /// Set when a physical probe wrote to an integrity-protected frame;
    /// the next owner access detects the violation, modeling the MAC
    /// check of SGX's memory encryption engine.
    tampered: bool,
}

/// All physical memory of one machine.
pub struct PhysMem {
    data: Vec<u8>,
    frames: Vec<FrameState>,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PhysMem({} frames)", self.frames.len())
    }
}

impl PhysMem {
    /// Creates `frames` frames of zeroed memory, all [`FrameOwner::Free`].
    pub fn new(frames: usize) -> PhysMem {
        PhysMem {
            data: vec![0u8; frames * PAGE_SIZE],
            frames: (0..frames)
                .map(|_| FrameState {
                    owner: FrameOwner::Free,
                    tampered: false,
                })
                .collect(),
        }
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames currently free.
    pub fn free_frames(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.owner == FrameOwner::Free)
            .count()
    }

    /// Allocates a free frame for `owner`, zeroing its contents.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfFrames`] when no frame is free.
    pub fn alloc(&mut self, owner: FrameOwner) -> Result<Frame, HwError> {
        assert_ne!(owner, FrameOwner::Free, "cannot allocate a Free frame");
        for (i, st) in self.frames.iter_mut().enumerate() {
            if st.owner == FrameOwner::Free {
                st.owner = owner;
                st.tampered = false;
                let base = i * PAGE_SIZE;
                self.data[base..base + PAGE_SIZE].fill(0);
                return Ok(Frame(i as u64));
            }
        }
        Err(HwError::OutOfFrames)
    }

    /// Allocates `n` frames with the same owner.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfFrames`] if fewer than `n` frames are free;
    /// no frames are leaked in that case.
    pub fn alloc_n(&mut self, owner: FrameOwner, n: usize) -> Result<Vec<Frame>, HwError> {
        if self.free_frames() < n {
            return Err(HwError::OutOfFrames);
        }
        (0..n).map(|_| self.alloc(owner)).collect()
    }

    /// Releases a frame back to the free pool, scrubbing its contents
    /// (real secure kernels scrub on free to prevent data leaks through
    /// reallocation).
    pub fn free(&mut self, frame: Frame) {
        let i = frame.0 as usize;
        if i < self.frames.len() {
            self.frames[i].owner = FrameOwner::Free;
            self.frames[i].tampered = false;
            let base = i * PAGE_SIZE;
            self.data[base..base + PAGE_SIZE].fill(0);
        }
    }

    /// Changes the owner tag of a frame (e.g. the SGX driver converting
    /// ordinary memory into EPC, or the secure monitor reassigning a
    /// TrustZone region). The *caller* is responsible for authorization —
    /// substrates only expose this to their trusted configuration paths.
    pub fn retag(&mut self, frame: Frame, owner: FrameOwner) -> Result<(), HwError> {
        let i = frame.0 as usize;
        let st = self
            .frames
            .get_mut(i)
            .ok_or(HwError::BadAddress(frame.base()))?;
        st.owner = owner;
        Ok(())
    }

    /// Returns the owner tag of the frame containing `addr`.
    pub fn owner_of(&self, addr: PhysAddr) -> Result<FrameOwner, HwError> {
        self.frames
            .get(addr.frame() as usize)
            .map(|s| s.owner)
            .ok_or(HwError::BadAddress(addr))
    }

    /// Marks the frame containing `addr` as physically tampered.
    pub(crate) fn mark_tampered(&mut self, addr: PhysAddr) {
        if let Some(st) = self.frames.get_mut(addr.frame() as usize) {
            st.tampered = true;
        }
    }

    /// Whether the frame containing `addr` was physically tampered.
    pub(crate) fn is_tampered(&self, addr: PhysAddr) -> bool {
        self.frames
            .get(addr.frame() as usize)
            .map(|s| s.tampered)
            .unwrap_or(false)
    }

    /// Raw read without any access check. Only the bus may call this.
    pub(crate) fn raw_read(&self, addr: PhysAddr, len: usize) -> Result<&[u8], HwError> {
        let start = addr.0 as usize;
        let end = start.checked_add(len).ok_or(HwError::BadAddress(addr))?;
        if end > self.data.len() {
            return Err(HwError::BadAddress(addr));
        }
        Ok(&self.data[start..end])
    }

    /// Raw write without any access check. Only the bus may call this.
    pub(crate) fn raw_write(&mut self, addr: PhysAddr, bytes: &[u8]) -> Result<(), HwError> {
        let start = addr.0 as usize;
        let end = start
            .checked_add(bytes.len())
            .ok_or(HwError::BadAddress(addr))?;
        if end > self.data.len() {
            return Err(HwError::BadAddress(addr));
        }
        self.data[start..end].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_cycle() {
        let mut m = PhysMem::new(4);
        assert_eq!(m.free_frames(), 4);
        let f = m.alloc(FrameOwner::Normal).unwrap();
        assert_eq!(m.free_frames(), 3);
        assert_eq!(m.owner_of(f.base()).unwrap(), FrameOwner::Normal);
        m.free(f);
        assert_eq!(m.free_frames(), 4);
        assert_eq!(m.owner_of(f.base()).unwrap(), FrameOwner::Free);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut m = PhysMem::new(2);
        m.alloc(FrameOwner::Normal).unwrap();
        m.alloc(FrameOwner::Normal).unwrap();
        assert_eq!(m.alloc(FrameOwner::Normal), Err(HwError::OutOfFrames));
    }

    #[test]
    fn alloc_n_is_atomic() {
        let mut m = PhysMem::new(3);
        m.alloc(FrameOwner::Normal).unwrap();
        assert_eq!(m.alloc_n(FrameOwner::Normal, 3), Err(HwError::OutOfFrames));
        assert_eq!(m.free_frames(), 2, "failed alloc_n must not leak");
        assert_eq!(m.alloc_n(FrameOwner::Normal, 2).unwrap().len(), 2);
    }

    #[test]
    fn free_scrubs_contents() {
        let mut m = PhysMem::new(2);
        let f = m.alloc(FrameOwner::Secure).unwrap();
        m.raw_write(f.base(), b"secret").unwrap();
        m.free(f);
        let f2 = m.alloc(FrameOwner::Normal).unwrap();
        assert_eq!(f2, f, "allocator reuses the scrubbed frame");
        assert_eq!(m.raw_read(f2.base(), 6).unwrap(), &[0u8; 6]);
    }

    #[test]
    fn raw_access_bounds_checked() {
        let mut m = PhysMem::new(1);
        assert!(m.raw_read(PhysAddr(PAGE_SIZE as u64), 1).is_err());
        assert!(m.raw_write(PhysAddr(PAGE_SIZE as u64 - 2), b"abc").is_err());
        assert!(m.raw_write(PhysAddr(PAGE_SIZE as u64 - 3), b"abc").is_ok());
    }

    #[test]
    fn tamper_flag_tracks_frame() {
        let mut m = PhysMem::new(2);
        let f = m.alloc(FrameOwner::Epc(EnclaveId(1))).unwrap();
        assert!(!m.is_tampered(f.base()));
        m.mark_tampered(f.base().add(100));
        assert!(m.is_tampered(f.base()));
        m.free(f);
        let f2 = m.alloc(FrameOwner::Normal).unwrap();
        assert!(!m.is_tampered(f2.base()), "free clears tamper flag");
    }
}
