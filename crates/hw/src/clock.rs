//! Logical time and the cycle-cost model.
//!
//! All latency experiments (E4 invocation costs, E6 covert channel) run on
//! a *logical* clock: operations advance simulated cycles according to the
//! [`CostModel`]. The default costs follow the relative magnitudes reported
//! in the systems literature (function call ≪ IPC < world switch ≈ enclave
//! transition < coprocessor mailbox ≪ network), which is what the paper's
//! qualitative cost argument needs — absolute cycle counts are not claimed.

/// Simulated cycle costs for primitive operations.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// A plain intra-component function call (the vertical-design baseline).
    pub function_call: u64,
    /// One DRAM access through the bus.
    pub mem_access: u64,
    /// Microkernel synchronous IPC (two context switches + transfer setup).
    pub ipc_round_trip: u64,
    /// Address-space context switch.
    pub context_switch: u64,
    /// TrustZone secure monitor call (world switch), one way.
    pub smc: u64,
    /// SGX enclave entry or exit (EENTER/EEXIT analogue), one way.
    pub enclave_transition: u64,
    /// SEP mailbox message, one way (cross-processor interrupt + copy).
    pub sep_mailbox: u64,
    /// Per-byte cost of copying message payloads.
    pub copy_per_byte_num: u64,
    /// Denominator for per-byte cost (cycles = len * num / den).
    pub copy_per_byte_den: u64,
    /// Fixed overhead of one network packet between machines.
    pub network_packet: u64,
    /// Whole-cache flush (covert-channel mitigation cost).
    pub cache_flush: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            function_call: 5,
            mem_access: 100,
            ipc_round_trip: 1_000,
            context_switch: 400,
            smc: 1_500,
            enclave_transition: 1_800,
            sep_mailbox: 6_000,
            copy_per_byte_num: 1,
            copy_per_byte_den: 8,
            network_packet: 500_000,
            cache_flush: 2_000,
        }
    }
}

impl CostModel {
    /// Cycles to copy `len` payload bytes.
    pub fn copy_cost(&self, len: usize) -> u64 {
        (len as u64 * self.copy_per_byte_num) / self.copy_per_byte_den.max(1)
    }
}

/// The logical clock of one machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn default_costs_are_ordered_as_the_literature_reports() {
        let m = CostModel::default();
        assert!(m.function_call < m.ipc_round_trip);
        assert!(m.ipc_round_trip < m.smc);
        assert!(m.smc <= m.enclave_transition);
        assert!(m.enclave_transition < m.sep_mailbox);
        assert!(m.sep_mailbox < m.network_packet);
    }

    #[test]
    fn copy_cost_scales_with_length() {
        let m = CostModel::default();
        assert_eq!(m.copy_cost(0), 0);
        assert!(m.copy_cost(4096) > m.copy_cost(16));
    }
}
