//! A set-associative cache model shared between security domains.
//!
//! §II-C of the paper: "Hardware … is leaky; even high-profile security
//! technologies such as SGX suffer from … cache side-channel attacks",
//! while "using time partitioning … microkernels provide strong temporal
//! isolation by mitigating covert channels." This model makes that claim
//! measurable: cache lines record which *domain* loaded them, a prime+probe
//! covert channel is demonstrably decodable when domains share the cache,
//! and flushing on partition switch (the microkernel's time-partitioned
//! scheduler) destroys the channel. Experiment E6 quantifies the bandwidth.

/// A security domain for cache attribution (address space, enclave, world).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CacheDomain(pub u32);

/// Geometry and timing of the cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_size: usize,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency of a miss (DRAM fill), in cycles.
    pub miss_latency: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_size: 64,
            hit_latency: 4,
            miss_latency: 100,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    domain: CacheDomain,
    last_used: u64,
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Cycles the access took.
    pub latency: u64,
    /// Domain whose line was evicted to make room, if any — the physical
    /// mechanism behind cache-contention covert channels.
    pub evicted: Option<CacheDomain>,
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Evictions that displaced a *different* domain's line.
    pub cross_domain_evictions: u64,
    /// Whole-cache flushes performed.
    pub flushes: u64,
}

/// The shared cache.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Option<Line>>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or any dimension is zero.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two() && config.sets > 0);
        assert!(config.ways > 0 && config.line_size > 0);
        Cache {
            config,
            sets: vec![vec![None; config.ways]; config.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The set index an address maps to.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.config.line_size as u64) % self.config.sets as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.config.line_size as u64 * self.config.sets as u64)
    }

    /// Performs one access by `domain` to `addr`, updating LRU state.
    pub fn access(&mut self, domain: CacheDomain, addr: u64) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let set_idx = self.set_index(addr);
        let tag = self.tag_of(addr);
        let set = &mut self.sets[set_idx];

        // Hit?
        for line in set.iter_mut().flatten() {
            if line.tag == tag && line.domain == domain {
                line.last_used = self.tick;
                self.stats.hits += 1;
                return CacheOutcome {
                    hit: true,
                    latency: self.config.hit_latency,
                    evicted: None,
                };
            }
        }

        // Miss: fill into an empty way or evict LRU.
        let mut victim: Option<usize> = None;
        for (i, slot) in set.iter().enumerate() {
            match slot {
                None => {
                    victim = Some(i);
                    break;
                }
                Some(line) => match victim {
                    None => victim = Some(i),
                    Some(v) => {
                        if let Some(vl) = &set[v] {
                            if line.last_used < vl.last_used {
                                victim = Some(i);
                            }
                        }
                    }
                },
            }
        }
        let v = victim.expect("ways > 0");
        let evicted = set[v].map(|l| l.domain).filter(|d| *d != domain);
        if evicted.is_some() {
            self.stats.cross_domain_evictions += 1;
        }
        set[v] = Some(Line {
            tag,
            domain,
            last_used: self.tick,
        });
        CacheOutcome {
            hit: false,
            latency: self.config.miss_latency,
            evicted,
        }
    }

    /// Flushes the entire cache — the covert-channel mitigation performed
    /// by the time-partitioned scheduler on every partition switch.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                *line = None;
            }
        }
        self.stats.flushes += 1;
    }

    /// Evicts all lines belonging to `domain` (e.g. on domain teardown).
    pub fn flush_domain(&mut self, domain: CacheDomain) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.map(|l| l.domain == domain).unwrap_or(false) {
                    *line = None;
                }
            }
        }
    }

    /// Counts lines currently held by `domain` in the set for `addr`
    /// (test/diagnostic aid).
    pub fn occupancy(&self, domain: CacheDomain, addr: u64) -> usize {
        self.sets[self.set_index(addr)]
            .iter()
            .flatten()
            .filter(|l| l.domain == domain)
            .count()
    }

    /// Returns `ways` distinct addresses that all map to the same set as
    /// `addr` — the eviction set used by prime+probe.
    pub fn eviction_set(&self, addr: u64) -> Vec<u64> {
        let stride = (self.config.line_size * self.config.sets) as u64;
        let base = (addr / self.config.line_size as u64) * self.config.line_size as u64;
        (0..self.config.ways as u64)
            .map(|i| base + (i + 1) * stride)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: CacheDomain = CacheDomain(1);
    const D2: CacheDomain = CacheDomain(2);

    fn small() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_size: 64,
            hit_latency: 1,
            miss_latency: 10,
        })
    }

    #[test]
    fn second_access_hits() {
        let mut c = small();
        assert!(!c.access(D1, 0x100).hit);
        let o = c.access(D1, 0x100);
        assert!(o.hit);
        assert_eq!(o.latency, 1);
    }

    #[test]
    fn same_line_different_domain_misses() {
        // Domains never share lines (no flush-based cross-domain *reuse*),
        // but they do *contend* for ways.
        let mut c = small();
        c.access(D1, 0x100);
        assert!(!c.access(D2, 0x100).hit);
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut c = small();
        // Three distinct tags in the same set with 2 ways.
        let stride = 64 * 4; // line_size * sets
        c.access(D1, 0x0);
        c.access(D1, stride);
        c.access(D1, 0x0); // refresh LRU of tag 0
        let o = c.access(D1, 2 * stride); // evicts tag `stride`
        assert!(!o.hit);
        assert!(c.access(D1, 0x0).hit, "recently used line survives");
        assert!(!c.access(D1, stride).hit, "LRU line was evicted");
    }

    #[test]
    fn cross_domain_eviction_is_observable() {
        let mut c = small();
        // D1 fills a set; D2 floods the same set; D1 then misses.
        c.access(D1, 0x0);
        let stride = 64 * 4;
        c.access(D2, stride);
        c.access(D2, 2 * stride);
        assert!(!c.access(D1, 0x0).hit, "victim line evicted by attacker");
        assert!(c.stats().cross_domain_evictions > 0);
    }

    #[test]
    fn flush_destroys_all_lines() {
        let mut c = small();
        c.access(D1, 0x0);
        c.access(D2, 0x40);
        c.flush();
        assert!(!c.access(D1, 0x0).hit);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn flush_domain_is_selective() {
        let mut c = small();
        c.access(D1, 0x0);
        c.access(D2, 0x40);
        c.flush_domain(D1);
        assert!(!c.access(D1, 0x0).hit);
        assert!(c.access(D2, 0x40).hit);
    }

    #[test]
    fn eviction_set_maps_to_same_set() {
        let c = small();
        let addr = 0x140;
        let set = c.set_index(addr);
        let ev = c.eviction_set(addr);
        assert_eq!(ev.len(), 2);
        for a in ev {
            assert_eq!(c.set_index(a), set);
            assert_ne!(c.tag_of(a), c.tag_of(addr));
        }
    }

    #[test]
    fn occupancy_counts_domain_lines() {
        let mut c = small();
        c.access(D1, 0x0);
        let stride = 64 * 4;
        c.access(D1, stride);
        assert_eq!(c.occupancy(D1, 0x0), 2);
        assert_eq!(c.occupancy(D2, 0x0), 0);
    }
}
