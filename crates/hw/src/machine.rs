//! The simulated machine: memory, bus, cache, devices, fuses, clock.
//!
//! [`Machine`] wires the pieces together and exposes the two operations
//! everything else builds on: [`Machine::bus_read`] and
//! [`Machine::bus_write`], each checked against the [`crate::bus::policy`]
//! access-control matrix. Denied accesses are recorded in a log that the
//! attack experiments read out.

use lateral_crypto::chacha;
use lateral_crypto::Digest;

use crate::bootrom::BootRom;
use crate::bus::{policy, AccessKind, DeniedAccess, Visibility};
use crate::cache::{Cache, CacheConfig, CacheDomain, CacheOutcome};
use crate::clock::{Clock, CostModel};
use crate::device::{DeviceKind, DeviceRegistry};
use crate::fuse::FuseBank;
use crate::iommu::Iommu;
use crate::mem::{Frame, FrameOwner, PhysMem};
use crate::scratchpad::Scratchpad;
use crate::{DeviceId, HwError, Initiator, PhysAddr, PAGE_SIZE};

/// Builder for [`Machine`].
///
/// ```
/// use lateral_hw::machine::MachineBuilder;
///
/// let machine = MachineBuilder::new()
///     .name("smart-meter")
///     .frames(256)
///     .scratchpad_bytes(8192)
///     .build();
/// assert_eq!(machine.mem.frame_count(), 256);
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    frames: usize,
    scratchpad_bytes: usize,
    cache_config: CacheConfig,
    costs: CostModel,
    boot_rom: Option<BootRom>,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder {
            name: "machine".to_string(),
            frames: 1024,
            scratchpad_bytes: 16 * 1024,
            cache_config: CacheConfig::default(),
            costs: CostModel::default(),
            boot_rom: None,
        }
    }
}

impl MachineBuilder {
    /// Starts a builder with defaults (1024 frames, 16 KiB scratchpad).
    pub fn new() -> MachineBuilder {
        MachineBuilder::default()
    }

    /// Sets the machine name (appears in logs and attestation evidence).
    pub fn name(mut self, name: &str) -> MachineBuilder {
        self.name = name.to_string();
        self
    }

    /// Sets the number of physical frames.
    pub fn frames(mut self, frames: usize) -> MachineBuilder {
        self.frames = frames;
        self
    }

    /// Sets the scratchpad size in bytes.
    pub fn scratchpad_bytes(mut self, bytes: usize) -> MachineBuilder {
        self.scratchpad_bytes = bytes;
        self
    }

    /// Sets the cache geometry.
    pub fn cache(mut self, config: CacheConfig) -> MachineBuilder {
        self.cache_config = config;
        self
    }

    /// Sets the cycle-cost model.
    pub fn costs(mut self, costs: CostModel) -> MachineBuilder {
        self.costs = costs;
        self
    }

    /// Installs a boot ROM with a launch policy.
    pub fn boot_rom(mut self, rom: BootRom) -> MachineBuilder {
        self.boot_rom = Some(rom);
        self
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        // The memory-encryption-engine key is derived per machine; it
        // models the random key an MEE generates at reset.
        let mee_key = *Digest::of_parts(&[b"lateral.mee", self.name.as_bytes()]).as_bytes();
        Machine {
            name: self.name,
            mem: PhysMem::new(self.frames),
            iommu: Iommu::new(),
            cache: Cache::new(self.cache_config),
            clock: Clock::new(),
            costs: self.costs,
            fuses: FuseBank::new(),
            scratchpad: Scratchpad::new(self.scratchpad_bytes),
            devices: DeviceRegistry::new(),
            boot_rom: self.boot_rom,
            mee_key,
            denied_log: Vec::new(),
        }
    }
}

/// One simulated machine.
pub struct Machine {
    /// Machine name.
    pub name: String,
    /// Physical memory.
    pub mem: PhysMem,
    /// The IOMMU filtering device DMA.
    pub iommu: Iommu,
    /// The shared cache (covert-channel experiments).
    pub cache: Cache,
    /// Logical clock.
    pub clock: Clock,
    /// Cycle-cost model.
    pub costs: CostModel,
    /// Fused secrets.
    pub fuses: FuseBank,
    /// On-chip scratchpad.
    pub scratchpad: Scratchpad,
    /// Peripheral registry.
    pub devices: DeviceRegistry,
    /// Boot ROM, if installed.
    pub boot_rom: Option<BootRom>,
    mee_key: [u8; 32],
    denied_log: Vec<DeniedAccess>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine('{}', {} frames, t={})",
            self.name,
            self.mem.frame_count(),
            self.clock.now()
        )
    }
}

impl Machine {
    /// Encrypts/decrypts a byte view at absolute position — the memory
    /// encryption engine's keystream as seen by a bus probe.
    fn mee_xor(&self, addr: PhysAddr, data: &mut [u8]) {
        let nonce = [0u8; 12];
        for (i, b) in data.iter_mut().enumerate() {
            let pos = addr.0 + i as u64;
            let block = chacha::block(&self.mee_key, (pos / 64) as u32, &nonce);
            *b ^= block[(pos % 64) as usize];
        }
    }

    fn check_span(
        &mut self,
        initiator: Initiator,
        addr: PhysAddr,
        kind: AccessKind,
    ) -> Result<Visibility, HwError> {
        let owner = self.mem.owner_of(addr)?;
        let iommu_allows = match initiator {
            Initiator::Device(dev) => self.iommu.allows(dev, Frame(addr.frame())),
            _ => true,
        };
        match policy(initiator, owner, kind, addr, iommu_allows) {
            Ok(vis) => Ok(vis),
            Err(e) => {
                if let HwError::AccessDenied { reason, .. } = &e {
                    self.denied_log.push(DeniedAccess {
                        initiator,
                        addr,
                        kind,
                        reason: reason.clone(),
                    });
                }
                Err(e)
            }
        }
    }

    /// Splits `[addr, addr+len)` into per-frame spans.
    fn spans(addr: PhysAddr, len: usize) -> Vec<(PhysAddr, usize)> {
        let mut out = Vec::new();
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let in_frame = PAGE_SIZE - cur.offset();
            let take = remaining.min(in_frame);
            out.push((cur, take));
            cur = cur.add(take as u64);
            remaining -= take;
        }
        out
    }

    /// Whether `initiator` is the integrity-protected owner of `owner`.
    fn is_protected_owner(initiator: Initiator, owner: FrameOwner) -> bool {
        matches!(
            (initiator, owner),
            (
                Initiator::Cpu {
                    enclave: Some(e),
                    ..
                },
                FrameOwner::Epc(o)
            ) if e == o
        ) || matches!((initiator, owner), (Initiator::Sep, FrameOwner::SepPrivate))
    }

    /// Reads `len` bytes at `addr` on behalf of `initiator`.
    ///
    /// # Errors
    ///
    /// * [`HwError::AccessDenied`] when the bus policy forbids the access
    ///   (also recorded in the denied-access log).
    /// * [`HwError::IntegrityViolation`] when an integrity-protected owner
    ///   reads a frame a physical probe has tampered with.
    /// * [`HwError::BadAddress`] for out-of-range addresses.
    pub fn bus_read(
        &mut self,
        initiator: Initiator,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, HwError> {
        let mut out = Vec::with_capacity(len);
        for (span_addr, span_len) in Self::spans(addr, len) {
            let vis = self.check_span(initiator, span_addr, AccessKind::Read)?;
            let owner = self.mem.owner_of(span_addr)?;
            if Self::is_protected_owner(initiator, owner) && self.mem.is_tampered(span_addr) {
                return Err(HwError::IntegrityViolation(span_addr));
            }
            let mut bytes = self.mem.raw_read(span_addr, span_len)?.to_vec();
            if vis == Visibility::Ciphertext {
                // The MEE: the probe observes only ciphertext.
                self.mee_xor(span_addr, &mut bytes);
            }
            out.extend_from_slice(&bytes);
        }
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(len));
        Ok(out)
    }

    /// Writes `bytes` at `addr` on behalf of `initiator`.
    ///
    /// A ciphertext-visibility write (physical probe into EPC/SEP memory)
    /// lands raw in DRAM and marks the frame tampered; the owner's next
    /// read fails its integrity check — the MEE MAC in real silicon.
    ///
    /// # Errors
    ///
    /// Same classes as [`Machine::bus_read`].
    pub fn bus_write(
        &mut self,
        initiator: Initiator,
        addr: PhysAddr,
        bytes: &[u8],
    ) -> Result<(), HwError> {
        let mut offset = 0usize;
        for (span_addr, span_len) in Self::spans(addr, bytes.len()) {
            let vis = self.check_span(initiator, span_addr, AccessKind::Write)?;
            let chunk = &bytes[offset..offset + span_len];
            self.mem.raw_write(span_addr, chunk)?;
            if vis == Visibility::Ciphertext {
                self.mem.mark_tampered(span_addr);
            }
            offset += span_len;
        }
        self.clock
            .advance(self.costs.mem_access + self.costs.copy_cost(bytes.len()));
        Ok(())
    }

    /// Performs a cache access attributed to `domain`, advancing the clock
    /// by the hit/miss latency. Returns the outcome (used by the
    /// prime+probe covert channel).
    pub fn cache_access(&mut self, domain: CacheDomain, addr: u64) -> CacheOutcome {
        let outcome = self.cache.access(domain, addr);
        self.clock.advance(outcome.latency);
        outcome
    }

    /// Flushes the cache (partition-switch mitigation), advancing the
    /// clock by the flush cost.
    pub fn cache_flush(&mut self) {
        self.cache.flush();
        self.clock.advance(self.costs.cache_flush);
    }

    /// Registers a peripheral and returns its bus identity.
    pub fn register_device(&mut self, kind: DeviceKind, name: &str) -> DeviceId {
        self.devices.register(kind, name)
    }

    /// DMA read issued by `device` (goes through IOMMU + bus policy).
    ///
    /// # Errors
    ///
    /// Same classes as [`Machine::bus_read`].
    pub fn dma_read(
        &mut self,
        device: DeviceId,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, HwError> {
        self.bus_read(Initiator::Device(device), addr, len)
    }

    /// DMA write issued by `device`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Machine::bus_write`].
    pub fn dma_write(
        &mut self,
        device: DeviceId,
        addr: PhysAddr,
        bytes: &[u8],
    ) -> Result<(), HwError> {
        self.bus_write(Initiator::Device(device), addr, bytes)
    }

    /// The denied-access log (read by attack experiments).
    pub fn denied_log(&self) -> &[DeniedAccess] {
        &self.denied_log
    }

    /// Clears and returns the denied-access log.
    pub fn take_denied_log(&mut self) -> Vec<DeniedAccess> {
        std::mem::take(&mut self.denied_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnclaveId, World};

    fn machine() -> Machine {
        MachineBuilder::new().frames(16).build()
    }

    #[test]
    fn normal_world_roundtrip() {
        let mut m = machine();
        let f = m.mem.alloc(FrameOwner::Normal).unwrap();
        let cpu = Initiator::cpu(World::Normal);
        m.bus_write(cpu, f.base(), b"hello dram").unwrap();
        assert_eq!(m.bus_read(cpu, f.base(), 10).unwrap(), b"hello dram");
    }

    #[test]
    fn secure_frame_blocks_normal_world_and_logs() {
        let mut m = machine();
        let f = m.mem.alloc(FrameOwner::Secure).unwrap();
        let secure = Initiator::cpu(World::Secure);
        let normal = Initiator::cpu(World::Normal);
        m.bus_write(secure, f.base(), b"tz secret").unwrap();
        assert!(m.bus_read(normal, f.base(), 9).is_err());
        assert_eq!(m.denied_log().len(), 1);
        assert_eq!(m.denied_log()[0].initiator, normal);
    }

    #[test]
    fn probe_reads_trustzone_plaintext_but_epc_ciphertext() {
        let mut m = machine();
        let tz = m.mem.alloc(FrameOwner::Secure).unwrap();
        let epc = m.mem.alloc(FrameOwner::Epc(EnclaveId(1))).unwrap();
        m.bus_write(Initiator::cpu(World::Secure), tz.base(), b"tz-key")
            .unwrap();
        m.bus_write(Initiator::enclave(EnclaveId(1)), epc.base(), b"sgx-key")
            .unwrap();
        // Physical probe: TrustZone leaks, SGX does not.
        assert_eq!(
            m.bus_read(Initiator::Probe, tz.base(), 6).unwrap(),
            b"tz-key"
        );
        let leaked = m.bus_read(Initiator::Probe, epc.base(), 7).unwrap();
        assert_ne!(leaked, b"sgx-key");
    }

    #[test]
    fn probe_write_to_epc_detected_on_owner_read() {
        let mut m = machine();
        let epc = m.mem.alloc(FrameOwner::Epc(EnclaveId(2))).unwrap();
        let owner = Initiator::enclave(EnclaveId(2));
        m.bus_write(owner, epc.base(), b"enclave state").unwrap();
        m.bus_write(Initiator::Probe, epc.base(), b"corruption")
            .unwrap();
        assert!(matches!(
            m.bus_read(owner, epc.base(), 13),
            Err(HwError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn probe_write_to_secure_frame_is_silent() {
        // TrustZone has no integrity protection against physical attack.
        let mut m = machine();
        let tz = m.mem.alloc(FrameOwner::Secure).unwrap();
        let secure = Initiator::cpu(World::Secure);
        m.bus_write(secure, tz.base(), b"original").unwrap();
        m.bus_write(Initiator::Probe, tz.base(), b"tampered")
            .unwrap();
        assert_eq!(m.bus_read(secure, tz.base(), 8).unwrap(), b"tampered");
    }

    #[test]
    fn dma_gated_by_iommu() {
        let mut m = machine();
        let f = m.mem.alloc(FrameOwner::Normal).unwrap();
        let dev = m.register_device(DeviceKind::Nic, "eth0");
        // IOMMU off: DMA lands anywhere in normal memory.
        m.dma_write(dev, f.base(), b"packet").unwrap();
        // IOMMU on without grant: blocked.
        m.iommu.enable();
        assert!(m.dma_write(dev, f.base(), b"packet").is_err());
        // With a grant: allowed again.
        m.iommu.grant(dev, f);
        m.dma_write(dev, f.base(), b"packet").unwrap();
        assert_eq!(m.dma_read(dev, f.base(), 6).unwrap(), b"packet");
    }

    #[test]
    fn reads_spanning_frames_check_each_frame() {
        let mut m = machine();
        let f0 = m.mem.alloc(FrameOwner::Normal).unwrap();
        let f1 = m.mem.alloc(FrameOwner::Secure).unwrap();
        assert_eq!(f1.0, f0.0 + 1, "frames are adjacent");
        let normal = Initiator::cpu(World::Normal);
        let start = PhysAddr(f1.base().0 - 4);
        // Crossing from a normal frame into a secure frame must fail.
        assert!(m.bus_read(normal, start, 8).is_err());
    }

    #[test]
    fn clock_advances_on_bus_traffic() {
        let mut m = machine();
        let f = m.mem.alloc(FrameOwner::Normal).unwrap();
        let t0 = m.clock.now();
        m.bus_write(Initiator::cpu(World::Normal), f.base(), &[0u8; 1024])
            .unwrap();
        assert!(m.clock.now() > t0);
    }

    #[test]
    fn probe_ciphertext_view_is_stable_but_unintelligible() {
        let mut m = machine();
        let epc = m.mem.alloc(FrameOwner::Epc(EnclaveId(1))).unwrap();
        m.bus_write(Initiator::enclave(EnclaveId(1)), epc.base(), b"AAAA")
            .unwrap();
        let v1 = m.bus_read(Initiator::Probe, epc.base(), 4).unwrap();
        let v2 = m.bus_read(Initiator::Probe, epc.base(), 4).unwrap();
        assert_eq!(v1, v2, "deterministic ciphertext view");
        assert_ne!(v1, b"AAAA");
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut m = machine();
        let end = PhysAddr((m.mem.frame_count() * PAGE_SIZE) as u64);
        assert!(m.bus_read(Initiator::cpu(World::Normal), end, 1).is_err());
    }
}
