//! DMA-capable peripheral devices.
//!
//! Devices matter to the paper's argument because "DMA transfers …
//! indirectly allow the driver software controlling those devices to
//! manipulate arbitrary DRAM content, including page tables, even if this
//! device driver was not privileged to program the MMU directly" (§II-D).
//! The device registry here gives every peripheral a bus identity that the
//! IOMMU can filter on; the malicious-DMA attack of experiment E9 drives a
//! registered device at a page-table frame.

use crate::DeviceId;

/// Classes of peripheral the simulation models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceKind {
    /// Network interface card.
    Nic,
    /// Block storage controller.
    Storage,
    /// Human input device (keyboard, touch).
    Input,
    /// Electricity meter sensor (smart-meter scenario).
    MeterSensor,
    /// Display controller.
    Display,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Nic => "nic",
            DeviceKind::Storage => "storage",
            DeviceKind::Input => "input",
            DeviceKind::MeterSensor => "meter-sensor",
            DeviceKind::Display => "display",
        };
        f.write_str(s)
    }
}

/// A registered device.
#[derive(Clone, Debug)]
pub struct Device {
    /// Bus identity (what the IOMMU filters on).
    pub id: DeviceId,
    /// Device class.
    pub kind: DeviceKind,
    /// Human-readable name.
    pub name: String,
}

/// The device registry of one machine.
#[derive(Clone, Debug, Default)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> DeviceRegistry {
        DeviceRegistry::default()
    }

    /// Registers a device, returning its bus identity.
    pub fn register(&mut self, kind: DeviceKind, name: &str) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind,
            name: name.to_string(),
        });
        id
    }

    /// Looks up a device by id.
    pub fn get(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.0 as usize)
    }

    /// Finds the first device of `kind`.
    pub fn find_by_kind(&self, kind: DeviceKind) -> Option<&Device> {
        self.devices.iter().find(|d| d.kind == kind)
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_sequential_ids() {
        let mut r = DeviceRegistry::new();
        let a = r.register(DeviceKind::Nic, "eth0");
        let b = r.register(DeviceKind::Storage, "disk0");
        assert_eq!(a, DeviceId(0));
        assert_eq!(b, DeviceId(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name, "eth0");
    }

    #[test]
    fn find_by_kind() {
        let mut r = DeviceRegistry::new();
        r.register(DeviceKind::Nic, "eth0");
        r.register(DeviceKind::MeterSensor, "meter0");
        assert_eq!(
            r.find_by_kind(DeviceKind::MeterSensor).unwrap().name,
            "meter0"
        );
        assert!(r.find_by_kind(DeviceKind::Display).is_none());
    }

    #[test]
    fn unknown_id_is_none() {
        let r = DeviceRegistry::new();
        assert!(r.get(DeviceId(9)).is_none());
        assert!(r.is_empty());
    }
}
