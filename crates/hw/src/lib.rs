//! Simulated hardware platform for the `lateral` trusted-component
//! ecosystem.
//!
//! The paper surveys isolation technologies that are all rooted in
//! *hardware we do not have*: ARM TrustZone's NS bit, Intel SGX's encrypted
//! EPC, Apple's SEP coprocessor, TPM chips, IOMMUs, fused keys, and boot
//! ROMs. This crate substitutes a deterministic software model that
//! preserves exactly the properties the paper's arguments depend on — the
//! *access-control matrix* between initiators and memory, the *visibility*
//! of data to a physical attacker, and the *timing interference* between
//! domains sharing a cache.
//!
//! Architecture:
//!
//! * [`mem`] — physical memory as tagged frames ([`mem::FrameOwner`]
//!   records which security domain owns each frame).
//! * [`bus`] — the single mediator for every access. Each access names an
//!   [`Initiator`] (CPU in some world / enclave, a DMA device, or a
//!   physical probe attached to the DRAM bus) and the bus enforces the
//!   rules real silicon would enforce.
//! * [`mmu`] — per-address-space page tables with read/write/execute
//!   rights; the MMU is policy-free and must be programmed by trusted
//!   software (the paper's point that an MMU-based substrate includes that
//!   software in the TCB).
//! * [`iommu`] — device-side translation and filtering, defending against
//!   malicious DMA.
//! * [`cache`] — a set-associative cache shared between domains, the
//!   vehicle for the prime+probe covert channel experiment (E6).
//! * [`fuse`] — per-device fused secrets readable only from the secure
//!   world (TrustZone's per-device AES key in the smart-meter example).
//! * [`scratchpad`] — on-chip memory invisible to the bus probe.
//! * [`bootrom`] — the immutable trust anchor implementing secure boot,
//!   authenticated boot, and late launch policies.
//! * [`device`] — DMA-capable peripherals (NIC, storage) driving the bus.
//! * [`clock`] — the logical clock and the cycle-cost model used by every
//!   latency experiment.
//! * [`machine`] — the aggregate: one simulated machine.
//!
//! # Example
//!
//! ```
//! use lateral_hw::machine::MachineBuilder;
//! use lateral_hw::{Initiator, World};
//!
//! let mut machine = MachineBuilder::new().frames(64).build();
//! let frame = machine.mem.alloc(lateral_hw::mem::FrameOwner::Secure).unwrap();
//! let addr = frame.base();
//!
//! // The secure world can write...
//! machine.bus_write(Initiator::cpu(World::Secure), addr, b"key material").unwrap();
//! // ...the normal world cannot read it back.
//! assert!(machine.bus_read(Initiator::cpu(World::Normal), addr, 12).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootrom;
pub mod bus;
pub mod cache;
pub mod clock;
pub mod device;
pub mod fuse;
pub mod iommu;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod scratchpad;

use std::error::Error;
use std::fmt;

/// Size of a physical frame / virtual page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A physical address in simulated DRAM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The frame number containing this address.
    pub fn frame(&self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// The offset within the containing frame.
    pub fn offset(&self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Address advanced by `n` bytes.
    #[must_use]
    pub fn add(&self, n: u64) -> PhysAddr {
        PhysAddr(self.0 + n)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A virtual address within some address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page number containing this address.
    pub fn page(&self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// The offset within the containing page.
    pub fn offset(&self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Address advanced by `n` bytes.
    #[must_use]
    pub fn add(&self, n: u64) -> VirtAddr {
        VirtAddr(self.0 + n)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// TrustZone-style execution world of a CPU access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum World {
    /// The untrusted normal world (legacy OS and applications).
    Normal,
    /// The secure world (trusted components, secure-world OS).
    Secure,
}

/// Identifies an SGX-style enclave.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EnclaveId(pub u32);

/// Identifies a DMA-capable device on the bus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DeviceId(pub u32);

/// The originator of a bus access — the identity the hardware checks.
///
/// This is the crux of the simulation: real isolation hardware
/// distinguishes accesses by *who issues them* (TrustZone conveys an NS
/// bit with each request; SGX tags accesses with the executing enclave;
/// the IOMMU sees device ids). All checks in [`bus`] dispatch on this
/// type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Initiator {
    /// An access issued by the main CPU.
    Cpu {
        /// TrustZone world of the executing context.
        world: World,
        /// Enclave the CPU is currently executing in, if any.
        enclave: Option<EnclaveId>,
    },
    /// The security coprocessor (SEP) — a separate CPU with its own bus
    /// port and inline memory encryption.
    Sep,
    /// A DMA access from a peripheral device.
    Device(DeviceId),
    /// A physical attacker probing the DRAM bus (cold boot, interposer).
    Probe,
}

impl Initiator {
    /// Convenience constructor for a plain CPU access in `world`, outside
    /// any enclave.
    pub fn cpu(world: World) -> Initiator {
        Initiator::Cpu {
            world,
            enclave: None,
        }
    }

    /// Convenience constructor for CPU execution inside an enclave
    /// (enclaves always execute in the normal world, as on real SGX).
    pub fn enclave(id: EnclaveId) -> Initiator {
        Initiator::Cpu {
            world: World::Normal,
            enclave: Some(id),
        }
    }
}

impl fmt::Display for Initiator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Initiator::Cpu {
                world: World::Normal,
                enclave: None,
            } => write!(f, "cpu(normal)"),
            Initiator::Cpu {
                world: World::Secure,
                enclave: None,
            } => write!(f, "cpu(secure)"),
            Initiator::Cpu {
                enclave: Some(e), ..
            } => write!(f, "cpu(enclave {})", e.0),
            Initiator::Sep => write!(f, "sep"),
            Initiator::Device(d) => write!(f, "device {}", d.0),
            Initiator::Probe => write!(f, "probe"),
        }
    }
}

/// Why an access was refused or failed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum HwError {
    /// The access violated an isolation rule; contains a human-readable
    /// reason used by the experiment reports.
    AccessDenied {
        /// Who attempted the access.
        initiator: Initiator,
        /// Target address.
        addr: PhysAddr,
        /// Which rule fired.
        reason: String,
    },
    /// Address outside of installed physical memory.
    BadAddress(PhysAddr),
    /// Virtual address had no mapping or insufficient rights.
    PageFault {
        /// Faulting virtual address.
        addr: VirtAddr,
        /// Description of the missing right or mapping.
        reason: String,
    },
    /// Integrity check on protected memory failed (physical tampering of
    /// EPC/SEP memory detected on reload).
    IntegrityViolation(PhysAddr),
    /// Physical memory is exhausted.
    OutOfFrames,
    /// A fuse operation was rejected (wrong world, already locked).
    FuseDenied(String),
    /// Boot failed (bad signature under secure boot, malformed chain).
    BootFailure(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::AccessDenied {
                initiator,
                addr,
                reason,
            } => write!(f, "access denied: {initiator} at {addr}: {reason}"),
            HwError::BadAddress(a) => write!(f, "bad physical address {a}"),
            HwError::PageFault { addr, reason } => write!(f, "page fault at {addr}: {reason}"),
            HwError::IntegrityViolation(a) => write!(f, "integrity violation at {a}"),
            HwError::OutOfFrames => write!(f, "out of physical frames"),
            HwError::FuseDenied(r) => write!(f, "fuse access denied: {r}"),
            HwError::BootFailure(r) => write!(f, "boot failure: {r}"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_split_into_frame_and_offset() {
        let a = PhysAddr(3 * PAGE_SIZE as u64 + 17);
        assert_eq!(a.frame(), 3);
        assert_eq!(a.offset(), 17);
        let v = VirtAddr(5 * PAGE_SIZE as u64 + 40);
        assert_eq!(v.page(), 5);
        assert_eq!(v.offset(), 40);
    }

    #[test]
    fn initiator_display_is_informative() {
        assert_eq!(Initiator::cpu(World::Normal).to_string(), "cpu(normal)");
        assert_eq!(
            Initiator::enclave(EnclaveId(3)).to_string(),
            "cpu(enclave 3)"
        );
        assert_eq!(Initiator::Probe.to_string(), "probe");
    }

    #[test]
    fn errors_render() {
        let e = HwError::AccessDenied {
            initiator: Initiator::Probe,
            addr: PhysAddr(0x1000),
            reason: "scratchpad is on-chip".into(),
        };
        assert!(e.to_string().contains("probe"));
    }
}
