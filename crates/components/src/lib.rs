//! The reusable trusted component toolbox.
//!
//! §III-D: *"these use cases … will likely appear in many applications
//! and should be provided as reusable components. Once a unified
//! interface for composition across substrates is in place, these
//! components must only be implemented once and can be aggregated by
//! configuring communication relationships between them."* Every
//! component here is written against `lateral-substrate` only and runs on
//! any backend.
//!
//! * [`tls`] — the TLS component: holds identity keys and account
//!   credentials; the only component that speaks the secure-channel
//!   protocol (§III-C: "cryptographic keys and the user's account
//!   passwords are shielded from all other components").
//! * [`gui`] — a nitpicker-style secure GUI with a trusted indicator
//!   (§III-D "Secure Path to the User").
//! * [`input`] — an input method owning the user dictionary (§III-B:
//!   "access to such data should be restricted to the input method code
//!   only").
//! * [`html`] — the HTML renderer: the component that parses hostile
//!   input and gets compromised in experiment E1.
//! * [`imap`] — the application-protocol engine (IMAP-flavored parsing,
//!   also exposed to hostile input).
//! * [`attachments`] — the attachment decoder ("images, videos, and
//!   other complex attachments", §III-B), a second hostile-input parser.
//! * [`addressbook`] — contact storage (a personal-data asset).
//! * [`mailstore`] — per-client mail storage over VPFS, demultiplexing
//!   clients by kernel badge — or, for experiment E8, by a client-claimed
//!   name (the confused-deputy bug).
//! * [`anonymizer`] — the utility-side aggregator of the smart-meter
//!   scenario (plus a "manipulated" variant whose different measurement
//!   attestation catches).
//! * [`gateway`] — the network gateway enforcing domain whitelists and
//!   egress budgets ("prevent the smart meter appliance from
//!   participating in distributed denial-of-service attacks").
//! * [`ftpm`] — a software TPM as a trusted component (§II-C: "Microsoft
//!   Surface tablets implement TPM functionality not using dedicated TPM
//!   security chips, but as software running within TrustZone"), the
//!   paper's evidence that hardware and software isolation are
//!   interchangeable.
//! * [`legacyos`] — the monolithic legacy codebase: one domain containing
//!   many subsystems and all their assets, the *vertical* baseline of
//!   Figure 1.
//! * [`compromise`] — the subversion harness: wraps any component so an
//!   exploit input flips it into attacker mode, after which it
//!   systematically attempts every escalation the substrate should block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressbook;
pub mod anonymizer;
pub mod attachments;
pub mod compromise;
pub mod ftpm;
pub mod gateway;
pub mod gui;
pub mod html;
pub mod imap;
pub mod input;
pub mod legacyos;
pub mod mailstore;
pub mod tls;

use lateral_substrate::component::ComponentError;

/// Splits a `cmd:payload` request at the first colon.
///
/// # Errors
///
/// Returns a [`ComponentError`] when the request has no colon separator.
pub fn split_cmd(data: &[u8]) -> Result<(&str, &[u8]), ComponentError> {
    let pos = data
        .iter()
        .position(|b| *b == b':')
        .ok_or_else(|| ComponentError::new("malformed request: expected cmd:payload"))?;
    let cmd = std::str::from_utf8(&data[..pos])
        .map_err(|_| ComponentError::new("malformed request: command not UTF-8"))?;
    Ok((cmd, &data[pos + 1..]))
}

/// Renders a payload as UTF-8 or fails cleanly.
///
/// # Errors
///
/// Returns a [`ComponentError`] on invalid UTF-8.
pub fn utf8(payload: &[u8]) -> Result<&str, ComponentError> {
    std::str::from_utf8(payload).map_err(|_| ComponentError::new("payload not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_cmd_basic() {
        let (cmd, rest) = split_cmd(b"put:hello world").unwrap();
        assert_eq!(cmd, "put");
        assert_eq!(rest, b"hello world");
    }

    #[test]
    fn split_cmd_empty_payload() {
        let (cmd, rest) = split_cmd(b"list:").unwrap();
        assert_eq!(cmd, "list");
        assert!(rest.is_empty());
    }

    #[test]
    fn split_cmd_requires_colon() {
        assert!(split_cmd(b"no separator").is_err());
    }

    #[test]
    fn payload_may_contain_colons() {
        let (cmd, rest) = split_cmd(b"send:host:port:data").unwrap();
        assert_eq!(cmd, "send");
        assert_eq!(rest, b"host:port:data");
    }
}
