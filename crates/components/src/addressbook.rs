//! The address book: a personal-data asset component.
//!
//! Contacts live only inside this domain; the mail UI asks it to resolve
//! recipients over a declared channel. In the vertical baseline the same
//! data sits in the monolith's heap, one HTML-parser bug away from
//! exfiltration.

use std::collections::BTreeMap;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Contact storage. Protocol:
///
/// * `add:<name>=<email>` — stores a contact.
/// * `lookup:<name>` — returns the email address.
/// * `complete:<prefix>` — returns comma-separated matching names.
/// * `count:` — number of contacts.
#[derive(Debug, Default)]
pub struct AddressBook {
    contacts: BTreeMap<String, String>,
}

impl AddressBook {
    /// Creates an empty address book.
    pub fn new() -> AddressBook {
        AddressBook::default()
    }

    /// Creates an address book preloaded with `entries`.
    pub fn with_contacts(entries: &[(&str, &str)]) -> AddressBook {
        AddressBook {
            contacts: entries
                .iter()
                .map(|(n, e)| (n.to_string(), e.to_string()))
                .collect(),
        }
    }
}

impl Component for AddressBook {
    fn label(&self) -> &str {
        "address-book"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "add" => {
                let text = utf8(payload)?;
                let (name, email) = text
                    .split_once('=')
                    .ok_or_else(|| ComponentError::new("expected name=email"))?;
                self.contacts.insert(name.to_string(), email.to_string());
                Ok(b"ok".to_vec())
            }
            "lookup" => {
                let name = utf8(payload)?;
                self.contacts
                    .get(name)
                    .map(|e| e.as_bytes().to_vec())
                    .ok_or_else(|| ComponentError::new(format!("no contact '{name}'")))
            }
            "complete" => {
                let prefix = utf8(payload)?;
                let matches: Vec<&str> = self
                    .contacts
                    .keys()
                    .filter(|k| k.starts_with(prefix))
                    .map(|k| k.as_str())
                    .collect();
                Ok(matches.join(",").into_bytes())
            }
            "count" => Ok(self.contacts.len().to_string().into_bytes()),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn setup() -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
        let mut s = SoftwareSubstrate::new("ab");
        let book = s
            .spawn(
                DomainSpec::named("address-book"),
                Box::new(AddressBook::with_contacts(&[(
                    "alice",
                    "alice@example.org",
                )])),
            )
            .unwrap();
        let ui = s.spawn(DomainSpec::named("ui"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(ui, book, Badge(1)).unwrap();
        (s, cap)
    }

    #[test]
    fn add_lookup_complete() {
        let (mut s, cap) = setup();
        let ui = cap.owner;
        s.invoke(ui, &cap, b"add:bob=bob@example.org").unwrap();
        assert_eq!(
            s.invoke(ui, &cap, b"lookup:bob").unwrap(),
            b"bob@example.org"
        );
        assert_eq!(s.invoke(ui, &cap, b"complete:a").unwrap(), b"alice");
        assert_eq!(s.invoke(ui, &cap, b"count:").unwrap(), b"2");
    }

    #[test]
    fn missing_contact_is_clean_error() {
        let (mut s, cap) = setup();
        assert!(s.invoke(cap.owner, &cap, b"lookup:nobody").is_err());
    }

    #[test]
    fn malformed_requests_rejected() {
        let (mut s, cap) = setup();
        assert!(s.invoke(cap.owner, &cap, b"add:no-equals").is_err());
        assert!(s.invoke(cap.owner, &cap, b"garbage").is_err());
    }
}
