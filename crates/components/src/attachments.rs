//! The attachment decoder: yet another hostile-input parser.
//!
//! §III-B: *"Messages can contain images, videos, and other complex
//! attachments, which the email client must be able to decode and
//! present to the user."* Attachment decoders are historically among the
//! most exploited codebases; in the horizontal design this one is a
//! dead-end component with no outbound channels, so E1 treats it exactly
//! like the HTML renderer.
//!
//! The toy format: `IMG1` magic, little-endian u16 width and height, a
//! length-prefixed metadata string, then `width * height` pixel bytes.

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

/// Metadata string that "exploits" the decoder.
pub const ATTACHMENT_EXPLOIT: &str = "COMMENT-OVERFLOW";

/// A decoded image summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedImage {
    /// Width in pixels.
    pub width: u16,
    /// Height in pixels.
    pub height: u16,
    /// Metadata/comment string.
    pub metadata: String,
    /// Average pixel intensity (the "thumbnail").
    pub mean_intensity: u8,
}

/// Decodes the toy image format.
///
/// # Errors
///
/// Returns a [`ComponentError`] on bad magic, truncation, oversized
/// dimensions — and a distinguished "exploit" error when the metadata
/// carries [`ATTACHMENT_EXPLOIT`] (a comment-handling memory bug).
pub fn decode_image(data: &[u8]) -> Result<DecodedImage, ComponentError> {
    if data.len() < 10 || &data[..4] != b"IMG1" {
        return Err(ComponentError::new("bad magic"));
    }
    let width = u16::from_le_bytes([data[4], data[5]]);
    let height = u16::from_le_bytes([data[6], data[7]]);
    if width == 0 || height == 0 || (width as u32) * (height as u32) > 1 << 20 {
        return Err(ComponentError::new("unreasonable dimensions"));
    }
    let meta_len = u16::from_le_bytes([data[8], data[9]]) as usize;
    let rest = &data[10..];
    if rest.len() < meta_len {
        return Err(ComponentError::new("truncated metadata"));
    }
    let metadata = std::str::from_utf8(&rest[..meta_len])
        .map_err(|_| ComponentError::new("metadata not UTF-8"))?
        .to_string();
    if metadata.contains(ATTACHMENT_EXPLOIT) {
        return Err(ComponentError::new("exploit triggered in comment handler"));
    }
    let pixels = &rest[meta_len..];
    let expected = width as usize * height as usize;
    if pixels.len() < expected {
        return Err(ComponentError::new("truncated pixel data"));
    }
    let sum: u64 = pixels[..expected].iter().map(|p| *p as u64).sum();
    Ok(DecodedImage {
        width,
        height,
        metadata,
        mean_intensity: (sum / expected as u64) as u8,
    })
}

/// Encodes an image in the toy format (test and workload helper).
pub fn encode_image(width: u16, height: u16, metadata: &str, fill: u8) -> Vec<u8> {
    let mut out = b"IMG1".to_vec();
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out.extend_from_slice(&(metadata.len() as u16).to_le_bytes());
    out.extend_from_slice(metadata.as_bytes());
    out.extend(std::iter::repeat_n(fill, width as usize * height as usize));
    out
}

/// The attachment decoder component. The raw request is the attachment;
/// the reply is `image <w>x<h> meta='<metadata>' mean=<intensity>`.
#[derive(Debug, Default)]
pub struct AttachmentDecoder {
    compromised: bool,
}

impl AttachmentDecoder {
    /// Creates a fresh decoder.
    pub fn new() -> AttachmentDecoder {
        AttachmentDecoder::default()
    }
}

impl Component for AttachmentDecoder {
    fn label(&self) -> &str {
        "attachment-decoder"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        if self.compromised {
            return Ok(b"<attacker controlled thumbnail>".to_vec());
        }
        match decode_image(inv.data) {
            Ok(img) => Ok(format!(
                "image {}x{} meta='{}' mean={}",
                img.width, img.height, img.metadata, img.mean_intensity
            )
            .into_bytes()),
            Err(e) if e.0.contains("exploit") => {
                self.compromised = true;
                Ok(b"image 0x0 meta='' mean=0".to_vec())
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_roundtrip() {
        let data = encode_image(4, 2, "holiday.jpg", 100);
        let img = decode_image(&data).unwrap();
        assert_eq!((img.width, img.height), (4, 2));
        assert_eq!(img.metadata, "holiday.jpg");
        assert_eq!(img.mean_intensity, 100);
    }

    #[test]
    fn malformed_attachments_rejected() {
        assert!(decode_image(b"PNG0").is_err());
        assert!(decode_image(&encode_image(4, 2, "x", 0)[..8]).is_err());
        // Oversized dimensions.
        let mut huge = b"IMG1".to_vec();
        huge.extend_from_slice(&u16::MAX.to_le_bytes());
        huge.extend_from_slice(&u16::MAX.to_le_bytes());
        huge.extend_from_slice(&0u16.to_le_bytes());
        assert!(decode_image(&huge).is_err());
        // Truncated pixels.
        let mut short = encode_image(10, 10, "m", 1);
        short.truncate(short.len() - 50);
        assert!(decode_image(&short).is_err());
    }

    #[test]
    fn exploit_in_metadata_compromises() {
        use lateral_substrate::cap::Badge;
        use lateral_substrate::software::SoftwareSubstrate;
        use lateral_substrate::substrate::{DomainSpec, Substrate};
        use lateral_substrate::testkit::Echo;
        let mut s = SoftwareSubstrate::new("attach");
        let dec = s
            .spawn(
                DomainSpec::named("decoder"),
                Box::new(AttachmentDecoder::new()),
            )
            .unwrap();
        let ui = s.spawn(DomainSpec::named("ui"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(ui, dec, Badge(1)).unwrap();
        let benign = encode_image(2, 2, "cat.png", 7);
        assert!(s
            .invoke(ui, &cap, &benign)
            .unwrap()
            .starts_with(b"image 2x2"));
        let evil = encode_image(2, 2, ATTACHMENT_EXPLOIT, 7);
        s.invoke(ui, &cap, &evil).unwrap();
        // Subsequent output is attacker-controlled.
        assert_eq!(
            s.invoke(ui, &cap, &benign).unwrap(),
            b"<attacker controlled thumbnail>"
        );
    }

    #[test]
    fn decoder_never_panics_on_fuzzed_input() {
        // A quick deterministic sweep (full proptest coverage lives in
        // the workspace fuzz_robustness suite).
        let mut data = encode_image(3, 3, "meta", 5);
        for i in 0..data.len() {
            let mut mutated = data.clone();
            mutated[i] ^= 0xFF;
            let _ = decode_image(&mutated);
        }
        data.truncate(5);
        let _ = decode_image(&data);
    }
}
