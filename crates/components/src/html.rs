//! The HTML renderer: the component that chews on hostile input.
//!
//! §I: "An application that reads from the network and parses HTML can be
//! subverted and its wide-ranging access privileges can compromise the
//! system." In the horizontal design the renderer is isolated and holds
//! *no* capabilities beyond its reply channel, so subverting it yields
//! nothing — experiment E1 measures exactly that.
//!
//! The renderer parses a toy HTML subset. A `<script>` tag whose body
//! contains the exploit marker models a memory-corruption bug: the
//! component flips into attacker-controlled mode (see
//! [`crate::compromise`] for what it then attempts).

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

/// The input that "exploits" the renderer, for attack experiments.
pub const EXPLOIT_MARKER: &str = "PWN-2017";

/// Result of rendering one document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rendered {
    /// Extracted visible text.
    pub text: String,
    /// Number of images referenced.
    pub images: usize,
    /// Number of links.
    pub links: usize,
}

/// Parses the toy HTML subset: text, `<b>`, `<i>`, `<p>`, `<img src=…>`,
/// `<a href=…>`, `<script>…</script>`.
///
/// # Errors
///
/// Returns a [`ComponentError`] on unbalanced angle brackets — and, for
/// a `<script>` body carrying [`EXPLOIT_MARKER`], reports the exploit
/// (the caller — the [`HtmlRenderer`] — then enters compromised mode).
pub fn parse_html(input: &str) -> Result<Rendered, ComponentError> {
    let mut text = String::new();
    let mut images = 0;
    let mut links = 0;
    let mut rest = input;
    let mut in_script = false;
    while let Some(open) = rest.find('<') {
        let before = &rest[..open];
        if !in_script {
            text.push_str(before);
        } else if before.contains(EXPLOIT_MARKER) {
            return Err(ComponentError::new("exploit triggered in script handler"));
        }
        let after = &rest[open + 1..];
        let close = after
            .find('>')
            .ok_or_else(|| ComponentError::new("unbalanced '<'"))?;
        let tag = &after[..close];
        let tag_name = tag
            .trim_start_matches('/')
            .split_whitespace()
            .next()
            .unwrap_or("");
        match tag_name {
            "img" => images += 1,
            "a" if !tag.starts_with('/') => links += 1,
            "a" => {}
            "script" => in_script = !tag.starts_with('/'),
            _ => {}
        }
        rest = &after[close + 1..];
    }
    if in_script {
        return Err(ComponentError::new("unterminated <script>"));
    }
    text.push_str(rest);
    Ok(Rendered {
        text: text.split_whitespace().collect::<Vec<_>>().join(" "),
        images,
        links,
    })
}

/// The renderer component. Protocol: the raw request *is* the HTML;
/// the reply is `text=<text>;images=<n>;links=<n>`.
///
/// After an exploit, every subsequent reply is attacker-controlled
/// garbage and [`HtmlRenderer::compromised`] turns true (queried by the
/// experiment harness through [`crate::compromise::Subverted`] when
/// wrapped, or directly in unit tests).
#[derive(Debug, Default)]
pub struct HtmlRenderer {
    compromised: bool,
    rendered_count: u64,
}

impl HtmlRenderer {
    /// Creates a fresh renderer.
    pub fn new() -> HtmlRenderer {
        HtmlRenderer::default()
    }

    /// Whether the renderer has been subverted.
    pub fn compromised(&self) -> bool {
        self.compromised
    }
}

impl Component for HtmlRenderer {
    fn label(&self) -> &str {
        "html-renderer"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let html =
            std::str::from_utf8(inv.data).map_err(|_| ComponentError::new("document not UTF-8"))?;
        if self.compromised {
            return Ok(b"<attacker controlled output>".to_vec());
        }
        match parse_html(html) {
            Ok(r) => {
                self.rendered_count += 1;
                Ok(format!("text={};images={};links={}", r.text, r.images, r.links).into_bytes())
            }
            Err(e) if e.0.contains("exploit") => {
                self.compromised = true;
                // The exploited parser "returns" as if nothing happened —
                // the stealthy compromise the paper worries about.
                Ok(b"text=;images=0;links=0".to_vec())
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passthrough() {
        let r = parse_html("hello world").unwrap();
        assert_eq!(r.text, "hello world");
        assert_eq!((r.images, r.links), (0, 0));
    }

    #[test]
    fn tags_stripped_and_counted() {
        let r = parse_html(
            "<p>Dear <b>user</b>,</p> see <a href=\"http://x\">this</a> \
             <img src=\"cat.png\"> <img src=\"dog.png\">",
        )
        .unwrap();
        assert_eq!(r.text, "Dear user, see this");
        assert_eq!(r.images, 2);
        assert_eq!(r.links, 1);
    }

    #[test]
    fn script_content_not_rendered() {
        let r = parse_html("before<script>var x = 1;</script>after").unwrap();
        assert_eq!(r.text, "beforeafter");
    }

    #[test]
    fn unbalanced_markup_rejected() {
        assert!(parse_html("broken < tag").is_err());
        assert!(parse_html("<script>never closed").is_err());
    }

    #[test]
    fn exploit_marker_compromises() {
        let mut renderer = HtmlRenderer::new();
        assert!(!renderer.compromised());
        // Drive through the component interface on a software substrate.
        use lateral_substrate::component::Invocation;
        use lateral_substrate::software::SoftwareSubstrate;
        use lateral_substrate::substrate::{CallCtx, Substrate};
        let mut sub = SoftwareSubstrate::new("html");
        let dummy = sub
            .spawn(
                lateral_substrate::substrate::DomainSpec::named("d"),
                Box::new(lateral_substrate::testkit::Echo),
            )
            .unwrap();
        let m = sub.measurement(dummy).unwrap();
        let mut ctx = CallCtx::new(&mut sub, dummy, m);
        let evil = format!("<script>{EXPLOIT_MARKER}</script>");
        renderer
            .on_call(
                &mut ctx,
                Invocation {
                    badge: lateral_substrate::cap::Badge(0),
                    data: evil.as_bytes(),
                },
            )
            .unwrap();
        assert!(renderer.compromised());
        // Subsequent output is attacker-controlled.
        let out = renderer
            .on_call(
                &mut ctx,
                Invocation {
                    badge: lateral_substrate::cap::Badge(0),
                    data: b"<p>benign</p>",
                },
            )
            .unwrap();
        assert_eq!(out, b"<attacker controlled output>");
    }

    #[test]
    fn benign_script_does_not_compromise() {
        let mut renderer = HtmlRenderer::new();
        let _ = parse_html("<script>alert(1)</script>").unwrap();
        assert!(!renderer.compromised());
        let _ = &mut renderer;
    }
}
