//! The application-protocol engine: IMAP-flavored response parsing.
//!
//! §III-C separates the email client's networking into "a component
//! handling application-level protocols such as IMAP or SMTP" and a TLS
//! component. The IMAP engine parses *server-controlled* input (another
//! hostile-input surface), so it is compromisable like the renderer —
//! but, isolated with only its reply channel, a malicious server gains
//! nothing beyond lying about mail.

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Exploit marker for the IMAP parser (server-side attacker).
pub const IMAP_EXPLOIT: &str = "LITERAL{OVERFLOW}";

/// One parsed message summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Sequence number.
    pub seq: u32,
    /// From header.
    pub from: String,
    /// Subject header.
    pub subject: String,
}

/// Parses a toy IMAP FETCH response: lines of
/// `* <seq> FETCH (FROM "<from>" SUBJECT "<subject>")`.
///
/// # Errors
///
/// Returns a [`ComponentError`] on malformed lines, and a distinguished
/// "exploit" error when [`IMAP_EXPLOIT`] appears (modelling a parser
/// memory-safety bug).
pub fn parse_fetch(response: &str) -> Result<Vec<Summary>, ComponentError> {
    if response.contains(IMAP_EXPLOIT) {
        return Err(ComponentError::new("exploit triggered in literal parser"));
    }
    let mut out = Vec::new();
    for line in response.lines().filter(|l| !l.trim().is_empty()) {
        let rest = line
            .strip_prefix("* ")
            .ok_or_else(|| ComponentError::new("line must start with '* '"))?;
        let (seq_text, rest) = rest
            .split_once(" FETCH (")
            .ok_or_else(|| ComponentError::new("missing FETCH"))?;
        let seq: u32 = seq_text
            .trim()
            .parse()
            .map_err(|_| ComponentError::new("bad sequence number"))?;
        let rest = rest
            .strip_suffix(')')
            .ok_or_else(|| ComponentError::new("missing ')'"))?;
        let quoted = |key: &str, hay: &str| -> Result<String, ComponentError> {
            let start = hay
                .find(&format!("{key} \""))
                .ok_or_else(|| ComponentError::new(format!("missing {key}")))?
                + key.len()
                + 2;
            let end = hay[start..]
                .find('"')
                .ok_or_else(|| ComponentError::new("unterminated quote"))?;
            Ok(hay[start..start + end].to_string())
        };
        out.push(Summary {
            seq,
            from: quoted("FROM", rest)?,
            subject: quoted("SUBJECT", rest)?,
        });
    }
    Ok(out)
}

/// The IMAP engine component. Protocol:
///
/// * `parse:<raw server response>` — returns one `seq|from|subject` line
///   per message.
/// * `status:` — `ok` or `compromised`.
#[derive(Debug, Default)]
pub struct ImapEngine {
    compromised: bool,
}

impl ImapEngine {
    /// Creates a fresh engine.
    pub fn new() -> ImapEngine {
        ImapEngine::default()
    }
}

impl Component for ImapEngine {
    fn label(&self) -> &str {
        "imap-engine"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "parse" => {
                if self.compromised {
                    return Ok(b"* 1 FETCH forged inbox".to_vec());
                }
                match parse_fetch(utf8(payload)?) {
                    Ok(summaries) => Ok(summaries
                        .iter()
                        .map(|s| format!("{}|{}|{}", s.seq, s.from, s.subject))
                        .collect::<Vec<_>>()
                        .join("\n")
                        .into_bytes()),
                    Err(e) if e.0.contains("exploit") => {
                        self.compromised = true;
                        Ok(Vec::new())
                    }
                    Err(e) => Err(e),
                }
            }
            "status" => Ok(if self.compromised {
                b"compromised".to_vec()
            } else {
                b"ok".to_vec()
            }),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_fetch() {
        let resp = "* 1 FETCH (FROM \"alice@example.org\" SUBJECT \"Hi\")\n\
                    * 2 FETCH (FROM \"bob@example.org\" SUBJECT \"Re: Hi\")";
        let s = parse_fetch(resp).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].seq, 1);
        assert_eq!(s[0].from, "alice@example.org");
        assert_eq!(s[1].subject, "Re: Hi");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_fetch("garbage").is_err());
        assert!(parse_fetch("* x FETCH (FROM \"a\" SUBJECT \"b\")").is_err());
        assert!(parse_fetch("* 1 FETCH (FROM \"a\" SUBJECT \"b\"").is_err());
        assert!(parse_fetch("* 1 FETCH (SUBJECT \"b\")").is_err());
    }

    #[test]
    fn exploit_marker_detected() {
        let err = parse_fetch(&format!(
            "* 1 FETCH (FROM \"{IMAP_EXPLOIT}\" SUBJECT \"x\")"
        ))
        .unwrap_err();
        assert!(err.0.contains("exploit"));
    }

    #[test]
    fn engine_flips_to_compromised() {
        use lateral_substrate::cap::Badge;
        use lateral_substrate::software::SoftwareSubstrate;
        use lateral_substrate::substrate::{DomainSpec, Substrate};
        use lateral_substrate::testkit::Echo;
        let mut s = SoftwareSubstrate::new("imap");
        let engine = s
            .spawn(DomainSpec::named("imap"), Box::new(ImapEngine::new()))
            .unwrap();
        let ui = s.spawn(DomainSpec::named("ui"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(ui, engine, Badge(1)).unwrap();
        assert_eq!(s.invoke(ui, &cap, b"status:").unwrap(), b"ok");
        let evil = format!("parse:* 1 FETCH (FROM \"{IMAP_EXPLOIT}\" SUBJECT \"x\")");
        s.invoke(ui, &cap, evil.as_bytes()).unwrap();
        assert_eq!(s.invoke(ui, &cap, b"status:").unwrap(), b"compromised");
        // Post-compromise, parsed output is attacker-controlled.
        let out = s
            .invoke(ui, &cap, b"parse:* 1 FETCH (FROM \"a\" SUBJECT \"b\")")
            .unwrap();
        assert_eq!(out, b"* 1 FETCH forged inbox");
    }
}
