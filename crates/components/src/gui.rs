//! A nitpicker-style secure GUI server with a trusted indicator.
//!
//! §III-D "Secure Path to the User": *"When multiple components in the
//! system can interact with the user, it can be important to securely
//! indicate which one is currently active. Otherwise, it is the user who
//! falls victim to a confused deputy attack by the system … Very obvious
//! indication of a secure mode, like a simple traffic-light display may
//! be advisable."*
//!
//! Clients are identified by their kernel badge — the label shown in the
//! trusted indicator is registered by the *composer*, never taken from
//! client-supplied content, so a phishing page can draw whatever it wants
//! without changing what the indicator says.

use std::collections::BTreeMap;

use lateral_substrate::cap::Badge;
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Badge reserved for the trusted input driver (focus switching).
pub const DRIVER_BADGE: Badge = Badge(0xD21F);

#[derive(Debug, Default, Clone)]
struct Window {
    label: String,
    content: String,
    security_class: SecurityClass,
    input_buffer: String,
}

/// Trust level shown on the indicator (the "traffic light").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SecurityClass {
    /// Untrusted content (red).
    #[default]
    Untrusted,
    /// Ordinary application (yellow).
    Application,
    /// Trusted component (green).
    Trusted,
}

impl SecurityClass {
    fn light(self) -> &'static str {
        match self {
            SecurityClass::Untrusted => "red",
            SecurityClass::Application => "yellow",
            SecurityClass::Trusted => "green",
        }
    }

    fn parse(s: &str) -> Result<SecurityClass, ComponentError> {
        match s {
            "untrusted" => Ok(SecurityClass::Untrusted),
            "application" => Ok(SecurityClass::Application),
            "trusted" => Ok(SecurityClass::Trusted),
            other => Err(ComponentError::new(format!("unknown class '{other}'"))),
        }
    }
}

/// The GUI server. Protocol (clients, demuxed by badge):
///
/// * `draw:<content>` — updates the caller's window content.
///
/// * `readinput:` — returns and clears the caller's input buffer (a
///   window only ever sees keystrokes routed to it while focused).
///
/// Protocol (trusted driver, badge [`DRIVER_BADGE`] only):
///
/// * `register:<badge>=<label>=<class>` — binds a badge to a trusted
///   label and security class (composer-provided, not client-chosen).
/// * `focus:<badge>` — switches focus.
/// * `keys:<text>` — keystrokes from the trusted input driver, routed
///   to the *focused* window only — the "secure path to the user" in the
///   input direction: no other window can sniff them.
/// * `indicator:` — what the user sees: `label [light]` of the focused
///   window — the truth, regardless of window contents.
/// * `screen:` — focused window's content (what an app painted).
#[derive(Debug, Default)]
pub struct SecureGui {
    windows: BTreeMap<u64, Window>,
    focused: Option<u64>,
}

impl SecureGui {
    /// Creates an empty GUI server.
    pub fn new() -> SecureGui {
        SecureGui::default()
    }

    fn require_driver(badge: Badge) -> Result<(), ComponentError> {
        if badge == DRIVER_BADGE {
            Ok(())
        } else {
            Err(ComponentError::new(
                "only the trusted input driver may perform this operation",
            ))
        }
    }
}

impl Component for SecureGui {
    fn label(&self) -> &str {
        "secure-gui"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "draw" => {
                let content = utf8(payload)?.to_string();
                let window = self.windows.entry(inv.badge.0).or_default();
                window.content = content;
                Ok(b"ok".to_vec())
            }
            "readinput" => {
                let window = self.windows.entry(inv.badge.0).or_default();
                Ok(std::mem::take(&mut window.input_buffer).into_bytes())
            }
            "register" => {
                Self::require_driver(inv.badge)?;
                let text = utf8(payload)?;
                let mut parts = text.splitn(3, '=');
                let badge: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ComponentError::new("expected badge=label=class"))?;
                let label = parts
                    .next()
                    .ok_or_else(|| ComponentError::new("expected badge=label=class"))?
                    .to_string();
                let class = SecurityClass::parse(
                    parts
                        .next()
                        .ok_or_else(|| ComponentError::new("expected badge=label=class"))?,
                )?;
                let window = self.windows.entry(badge).or_default();
                window.label = label;
                window.security_class = class;
                Ok(b"ok".to_vec())
            }
            "focus" => {
                Self::require_driver(inv.badge)?;
                let badge: u64 = utf8(payload)?
                    .parse()
                    .map_err(|_| ComponentError::new("bad badge"))?;
                if !self.windows.contains_key(&badge) {
                    return Err(ComponentError::new("no window for that badge"));
                }
                self.focused = Some(badge);
                Ok(b"ok".to_vec())
            }
            "keys" => {
                Self::require_driver(inv.badge)?;
                let text = utf8(payload)?;
                match self.focused.and_then(|b| self.windows.get_mut(&b)) {
                    Some(w) => {
                        w.input_buffer.push_str(text);
                        Ok(b"ok".to_vec())
                    }
                    None => Err(ComponentError::new("no focused window for input")),
                }
            }
            "indicator" => {
                Self::require_driver(inv.badge)?;
                match self.focused.and_then(|b| self.windows.get(&b)) {
                    Some(w) => {
                        Ok(format!("{} [{}]", w.label, w.security_class.light()).into_bytes())
                    }
                    None => Ok(b"<no focus>".to_vec()),
                }
            }
            "screen" => {
                Self::require_driver(inv.badge)?;
                match self.focused.and_then(|b| self.windows.get(&b)) {
                    Some(w) => Ok(w.content.clone().into_bytes()),
                    None => Ok(Vec::new()),
                }
            }
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    struct Setup {
        sub: SoftwareSubstrate,
        driver_cap: lateral_substrate::cap::ChannelCap,
        bank_cap: lateral_substrate::cap::ChannelCap,
        phish_cap: lateral_substrate::cap::ChannelCap,
    }

    fn setup() -> Setup {
        let mut sub = SoftwareSubstrate::new("gui");
        let gui = sub
            .spawn(DomainSpec::named("gui"), Box::new(SecureGui::new()))
            .unwrap();
        let driver = sub
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let bank = sub
            .spawn(DomainSpec::named("bank"), Box::new(Echo))
            .unwrap();
        let phish = sub
            .spawn(DomainSpec::named("phish"), Box::new(Echo))
            .unwrap();
        let driver_cap = sub.grant_channel(driver, gui, DRIVER_BADGE).unwrap();
        let bank_cap = sub.grant_channel(bank, gui, Badge(10)).unwrap();
        let phish_cap = sub.grant_channel(phish, gui, Badge(20)).unwrap();
        let mut s = Setup {
            sub,
            driver_cap,
            bank_cap,
            phish_cap,
        };
        s.sub
            .invoke(
                driver,
                &s.driver_cap,
                b"register:10=Bank of Examples=trusted",
            )
            .unwrap();
        s.sub
            .invoke(
                driver,
                &s.driver_cap,
                b"register:20=Downloaded Game=untrusted",
            )
            .unwrap();
        s
    }

    #[test]
    fn indicator_shows_composer_label_not_window_content() {
        let mut s = setup();
        let driver = s.driver_cap.owner;
        // The phishing app paints a fake bank login page.
        s.sub
            .invoke(
                s.phish_cap.owner,
                &s.phish_cap,
                b"draw:== Bank of Examples secure login ==",
            )
            .unwrap();
        s.sub.invoke(driver, &s.driver_cap, b"focus:20").unwrap();
        let indicator = s.sub.invoke(driver, &s.driver_cap, b"indicator:").unwrap();
        // The trusted indicator is not fooled.
        assert_eq!(indicator, b"Downloaded Game [red]");
        let screen = s.sub.invoke(driver, &s.driver_cap, b"screen:").unwrap();
        assert_eq!(screen, b"== Bank of Examples secure login ==");
    }

    #[test]
    fn focus_switch_updates_indicator() {
        let mut s = setup();
        let driver = s.driver_cap.owner;
        s.sub
            .invoke(s.bank_cap.owner, &s.bank_cap, b"draw:balance: 100")
            .unwrap();
        s.sub.invoke(driver, &s.driver_cap, b"focus:10").unwrap();
        assert_eq!(
            s.sub.invoke(driver, &s.driver_cap, b"indicator:").unwrap(),
            b"Bank of Examples [green]"
        );
    }

    #[test]
    fn clients_cannot_register_focus_or_read_indicator() {
        let mut s = setup();
        let phish = s.phish_cap.owner;
        for req in [
            b"register:20=Bank of Examples=trusted".as_slice(),
            b"focus:20",
            b"indicator:",
            b"screen:",
        ] {
            assert!(
                s.sub.invoke(phish, &s.phish_cap, req).is_err(),
                "client performed a driver-only operation: {}",
                String::from_utf8_lossy(req)
            );
        }
    }

    #[test]
    fn keystrokes_reach_only_the_focused_window() {
        let mut s = setup();
        let driver = s.driver_cap.owner;
        // Focus the bank; the user types a password.
        s.sub.invoke(driver, &s.driver_cap, b"focus:10").unwrap();
        s.sub
            .invoke(driver, &s.driver_cap, b"keys:hunter2")
            .unwrap();
        // The phishing window reads its buffer: empty.
        let sniffed = s
            .sub
            .invoke(s.phish_cap.owner, &s.phish_cap, b"readinput:")
            .unwrap();
        assert!(sniffed.is_empty(), "phish window sniffed input!");
        // The bank receives the keystrokes exactly once.
        let got = s
            .sub
            .invoke(s.bank_cap.owner, &s.bank_cap, b"readinput:")
            .unwrap();
        assert_eq!(got, b"hunter2");
        let again = s
            .sub
            .invoke(s.bank_cap.owner, &s.bank_cap, b"readinput:")
            .unwrap();
        assert!(again.is_empty(), "buffer is consumed on read");
    }

    #[test]
    fn clients_cannot_inject_keystrokes() {
        let mut s = setup();
        let driver = s.driver_cap.owner;
        s.sub.invoke(driver, &s.driver_cap, b"focus:10").unwrap();
        // The phishing app tries to type into the focused bank window.
        assert!(s
            .sub
            .invoke(s.phish_cap.owner, &s.phish_cap, b"keys:approve transfer")
            .is_err());
    }

    #[test]
    fn draws_are_demuxed_by_badge() {
        let mut s = setup();
        let driver = s.driver_cap.owner;
        s.sub
            .invoke(s.bank_cap.owner, &s.bank_cap, b"draw:bank content")
            .unwrap();
        s.sub
            .invoke(s.phish_cap.owner, &s.phish_cap, b"draw:phish content")
            .unwrap();
        s.sub.invoke(driver, &s.driver_cap, b"focus:10").unwrap();
        assert_eq!(
            s.sub.invoke(driver, &s.driver_cap, b"screen:").unwrap(),
            b"bank content"
        );
    }
}
