//! The input method: owner of highly personal language data.
//!
//! §III-B: input methods "can greatly benefit from highly personal data
//! such as user dictionaries for spell checking, training datasets for
//! voice recognition, or auto correction based on phrases and names
//! previously used. Access to such data should be restricted to the input
//! method code only." The component exposes *suggestions*, never the
//! dictionary itself.

use std::collections::BTreeMap;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Input method with a frequency-weighted user dictionary. Protocol:
///
/// * `learn:<word>` — records a word use.
/// * `suggest:<prefix>` — top-3 completions, comma separated.
/// * `correct:<word>` — returns the dictionary word at edit distance ≤ 1
///   with the highest frequency, or the input unchanged.
#[derive(Debug, Default)]
pub struct InputMethod {
    dictionary: BTreeMap<String, u64>,
}

impl InputMethod {
    /// Creates an empty input method.
    pub fn new() -> InputMethod {
        InputMethod::default()
    }

    /// Preloads dictionary words.
    pub fn with_words(words: &[&str]) -> InputMethod {
        InputMethod {
            dictionary: words.iter().map(|w| (w.to_string(), 1)).collect(),
        }
    }

    fn edit_distance_le1(a: &str, b: &str) -> bool {
        let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
        let (la, lb) = (a.len(), b.len());
        if la.abs_diff(lb) > 1 {
            return false;
        }
        if la == lb {
            return a.iter().zip(&b).filter(|(x, y)| x != y).count() <= 1;
        }
        // One insertion/deletion: let `long` be the longer.
        let (short, long) = if la < lb { (&a, &b) } else { (&b, &a) };
        let mut skipped = false;
        let (mut i, mut j) = (0usize, 0usize);
        while i < short.len() && j < long.len() {
            if short[i] == long[j] {
                i += 1;
                j += 1;
            } else if skipped {
                return false;
            } else {
                skipped = true;
                j += 1;
            }
        }
        true
    }
}

impl Component for InputMethod {
    fn label(&self) -> &str {
        "input-method"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "learn" => {
                let word = utf8(payload)?.trim().to_string();
                if word.is_empty() {
                    return Err(ComponentError::new("cannot learn an empty word"));
                }
                *self.dictionary.entry(word).or_insert(0) += 1;
                Ok(b"ok".to_vec())
            }
            "suggest" => {
                let prefix = utf8(payload)?;
                let mut matches: Vec<(&String, &u64)> = self
                    .dictionary
                    .iter()
                    .filter(|(w, _)| w.starts_with(prefix))
                    .collect();
                matches.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
                let top: Vec<&str> = matches.iter().take(3).map(|(w, _)| w.as_str()).collect();
                Ok(top.join(",").into_bytes())
            }
            "correct" => {
                let word = utf8(payload)?;
                let best = self
                    .dictionary
                    .iter()
                    .filter(|(w, _)| Self::edit_distance_le1(word, w))
                    .max_by_key(|(_, freq)| **freq)
                    .map(|(w, _)| w.clone())
                    .unwrap_or_else(|| word.to_string());
                Ok(best.into_bytes())
            }
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_cases() {
        assert!(InputMethod::edit_distance_le1("cat", "cat"));
        assert!(InputMethod::edit_distance_le1("cat", "cut"));
        assert!(InputMethod::edit_distance_le1("cat", "cart"));
        assert!(InputMethod::edit_distance_le1("cart", "cat"));
        assert!(!InputMethod::edit_distance_le1("cat", "dog"));
        assert!(!InputMethod::edit_distance_le1("cat", "carts"));
    }

    mod component {
        use super::super::*;
        use lateral_substrate::cap::Badge;
        use lateral_substrate::software::SoftwareSubstrate;
        use lateral_substrate::substrate::{DomainSpec, Substrate};
        use lateral_substrate::testkit::Echo;

        fn setup() -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
            let mut s = SoftwareSubstrate::new("im");
            let im = s
                .spawn(
                    DomainSpec::named("input-method"),
                    Box::new(InputMethod::with_words(&["hello", "help", "meeting"])),
                )
                .unwrap();
            let ui = s.spawn(DomainSpec::named("ui"), Box::new(Echo)).unwrap();
            let cap = s.grant_channel(ui, im, Badge(1)).unwrap();
            (s, cap)
        }

        #[test]
        fn suggestions_ranked_by_frequency() {
            let (mut s, cap) = setup();
            let ui = cap.owner;
            for _ in 0..3 {
                s.invoke(ui, &cap, b"learn:help").unwrap();
            }
            let out = s.invoke(ui, &cap, b"suggest:hel").unwrap();
            assert_eq!(out, b"help,hello");
        }

        #[test]
        fn autocorrect_uses_personal_data() {
            let (mut s, cap) = setup();
            let ui = cap.owner;
            assert_eq!(s.invoke(ui, &cap, b"correct:meetin").unwrap(), b"meeting");
            assert_eq!(s.invoke(ui, &cap, b"correct:xyzzy").unwrap(), b"xyzzy");
        }

        #[test]
        fn no_dictionary_dump_interface_exists() {
            // The API surface is suggestions only; asking for the raw
            // dictionary is not a recognized command.
            let (mut s, cap) = setup();
            assert!(s.invoke(cap.owner, &cap, b"dump:").is_err());
            assert!(s.invoke(cap.owner, &cap, b"export:all").is_err());
        }

        #[test]
        fn learning_empty_word_rejected() {
            let (mut s, cap) = setup();
            assert!(s.invoke(cap.owner, &cap, b"learn:   ").is_err());
        }
    }
}
