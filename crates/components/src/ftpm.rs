//! fTPM: a TPM implemented as a trusted component.
//!
//! §II-C ("What Is Hardware?"): *"isolation technologies are partially
//! interchangeable: Microsoft Surface tablets implement TPM functionality
//! not using dedicated TPM security chips, but as software running within
//! TrustZone."* This component wraps the [`lateral_tpm::Tpm`] model
//! behind the unified component interface; hosted in a TrustZone secure
//! world (or an SGX enclave, or anywhere else), it provides the same
//! extend / read / quote / seal / unseal services a discrete chip would —
//! and the verifier flow is byte-for-byte identical.

use lateral_net::wire::{put_field, Reader};
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;
use lateral_tpm::{Quote, SealedBlob, Tpm};

use crate::split_cmd;

/// Serializes a quote for the wire.
pub fn encode_quote(q: &Quote) -> Vec<u8> {
    let mut out = Vec::new();
    let sel: Vec<u8> = q
        .selection
        .iter()
        .flat_map(|i| (*i as u32).to_le_bytes())
        .collect();
    put_field(&mut out, &sel);
    put_field(&mut out, q.composite.as_bytes());
    put_field(&mut out, &q.nonce);
    put_field(&mut out, &q.signature);
    out
}

/// Parses a quote from the wire.
///
/// # Errors
///
/// Returns a [`ComponentError`] on malformed input.
pub fn decode_quote(bytes: &[u8]) -> Result<Quote, ComponentError> {
    fn read(r: &mut Reader<'_>, what: &str) -> Result<Vec<u8>, ComponentError> {
        r.field()
            .map(|f| f.to_vec())
            .map_err(|e| ComponentError::new(format!("{what}: {e}")))
    }
    let mut r = Reader::new(bytes);
    let sel_raw = read(&mut r, "selection")?;
    if sel_raw.len() % 4 != 0 {
        return Err(ComponentError::new("selection not word-aligned"));
    }
    let selection = sel_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")) as usize)
        .collect();
    let composite_raw = read(&mut r, "composite")?;
    let composite = lateral_crypto::Digest(
        composite_raw
            .as_slice()
            .try_into()
            .map_err(|_| ComponentError::new("composite must be 32 bytes"))?,
    );
    let nonce = read(&mut r, "nonce")?;
    let signature: [u8; 64] = read(&mut r, "signature")?
        .as_slice()
        .try_into()
        .map_err(|_| ComponentError::new("signature must be 64 bytes"))?;
    // Strict finish: trailing bytes after the last field mean the blob
    // is not a quote encoding, and a verifier must not accept it.
    r.finish()
        .map_err(|e| ComponentError::new(format!("quote trailer: {e}")))?;
    Ok(Quote {
        selection,
        composite,
        nonce,
        signature,
    })
}

/// The fTPM component. Protocol:
///
/// * `extend:<pcr>,<data>` — extends a PCR.
/// * `read:<pcr>` — hex PCR value.
/// * `quote:<pcr>,<nonce bytes>` — serialized signed quote.
/// * `seal:<pcr>;<data>` — sealed blob (policy = that PCR's value now).
/// * `unseal:<pcr>;<blob>` — plaintext, if the PCR still matches.
/// * `aik:` — the attestation public key (32 bytes).
pub struct FTpm {
    tpm: Tpm,
}

impl std::fmt::Debug for FTpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FTpm({:?})", self.tpm)
    }
}

impl FTpm {
    /// Creates an fTPM whose identity derives from `seed` (on a real
    /// Surface this would be the TrustZone fused key).
    pub fn new(seed: &[u8]) -> FTpm {
        FTpm {
            tpm: Tpm::new(&[b"ftpm.", seed].concat()),
        }
    }

    fn parse_pcr_prefix(payload: &[u8], sep: u8) -> Result<(usize, &[u8]), ComponentError> {
        let pos = payload
            .iter()
            .position(|b| *b == sep)
            .ok_or_else(|| ComponentError::new("expected <pcr><sep><payload>"))?;
        let pcr: usize = std::str::from_utf8(&payload[..pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ComponentError::new("bad PCR index"))?;
        Ok((pcr, &payload[pos + 1..]))
    }
}

impl Component for FTpm {
    fn label(&self) -> &str {
        "ftpm"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "extend" => {
                let (pcr, data) = Self::parse_pcr_prefix(payload, b',')?;
                if pcr >= lateral_tpm::PCR_COUNT {
                    return Err(ComponentError::new("PCR index out of range"));
                }
                self.tpm.extend(pcr, data);
                Ok(b"ok".to_vec())
            }
            "read" => {
                let pcr: usize = crate::utf8(payload)?
                    .parse()
                    .map_err(|_| ComponentError::new("bad PCR index"))?;
                let value = self
                    .tpm
                    .read_pcr(pcr)
                    .map_err(|e| ComponentError::new(e.to_string()))?;
                Ok(value.to_hex().into_bytes())
            }
            "quote" => {
                let (pcr, nonce) = Self::parse_pcr_prefix(payload, b',')?;
                Ok(encode_quote(&self.tpm.quote(&[pcr], nonce)))
            }
            "seal" => {
                let (pcr, data) = Self::parse_pcr_prefix(payload, b';')?;
                let blob = self.tpm.seal(&[pcr], data);
                Ok(blob.ciphertext)
            }
            "unseal" => {
                let (pcr, ciphertext) = Self::parse_pcr_prefix(payload, b';')?;
                let blob = SealedBlob {
                    selection: vec![pcr],
                    ciphertext: ciphertext.to_vec(),
                };
                self.tpm
                    .unseal(&blob)
                    .map_err(|e| ComponentError::new(e.to_string()))
            }
            "aik" => Ok(self.tpm.attestation_key().to_bytes().to_vec()),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_crypto::sign::VerifyingKey;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn setup() -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
        let mut s = SoftwareSubstrate::new("ftpm");
        let ftpm = s
            .spawn(DomainSpec::named("ftpm"), Box::new(FTpm::new(b"surface-1")))
            .unwrap();
        let os = s.spawn(DomainSpec::named("os"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(os, ftpm, Badge(1)).unwrap();
        (s, cap)
    }

    #[test]
    fn extend_and_read() {
        let (mut s, cap) = setup();
        let os = cap.owner;
        let zero = s.invoke(os, &cap, b"read:0").unwrap();
        s.invoke(os, &cap, b"extend:0,bootloader").unwrap();
        let after = s.invoke(os, &cap, b"read:0").unwrap();
        assert_ne!(zero, after);
        assert_eq!(after.len(), 64); // hex digest
    }

    #[test]
    fn quote_verifies_with_the_standard_tpm_verifier() {
        // The whole point of §II-C: the verifier cannot tell (and need
        // not care) that the TPM is software.
        let (mut s, cap) = setup();
        let os = cap.owner;
        s.invoke(os, &cap, b"extend:0,kernel v1").unwrap();
        let quote_bytes = s.invoke(os, &cap, b"quote:0,fresh-nonce").unwrap();
        let quote = decode_quote(&quote_bytes).unwrap();
        let aik_bytes = s.invoke(os, &cap, b"aik:").unwrap();
        let aik = VerifyingKey::from_bytes(&aik_bytes.try_into().unwrap()).unwrap();
        assert!(quote.verify(&aik, b"fresh-nonce").is_ok());
        assert!(quote.verify(&aik, b"stale-nonce").is_err());
    }

    #[test]
    fn seal_respects_pcr_policy() {
        let (mut s, cap) = setup();
        let os = cap.owner;
        s.invoke(os, &cap, b"extend:1,good state").unwrap();
        let blob = s.invoke(os, &cap, b"seal:1;disk key").unwrap();
        let mut req = b"unseal:1;".to_vec();
        req.extend_from_slice(&blob);
        assert_eq!(s.invoke(os, &cap, &req).unwrap(), b"disk key");
        // Change the platform state: the key stays locked.
        s.invoke(os, &cap, b"extend:1,rootkit").unwrap();
        assert!(s.invoke(os, &cap, &req).is_err());
    }

    // The "runs inside TrustZone like on a Surface" integration lives in
    // the workspace-level test `tests/ftpm_in_trustzone.rs` (the
    // components crate does not depend on substrate backends).

    #[test]
    fn distinct_devices_have_distinct_identities() {
        let a = FTpm::new(b"device-a");
        let b = FTpm::new(b"device-b");
        // Peek via direct TPM construction equality of attestation keys.
        assert_ne!(
            Tpm::new(b"ftpm.device-a").attestation_key(),
            Tpm::new(b"ftpm.device-b").attestation_key()
        );
        let _ = (a, b);
    }

    #[test]
    fn quote_wire_roundtrip() {
        let tpm = Tpm::new(b"wire");
        let q = tpm.quote(&[0, 5], b"n");
        let decoded = decode_quote(&encode_quote(&q)).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn malformed_requests_rejected() {
        let (mut s, cap) = setup();
        let os = cap.owner;
        assert!(s.invoke(os, &cap, b"extend:99,data").is_err());
        assert!(s.invoke(os, &cap, b"read:notanumber").is_err());
        assert!(s.invoke(os, &cap, b"quote:no-comma").is_err());
    }
}
