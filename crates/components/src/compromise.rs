//! The subversion harness: what a compromised component actually tries.
//!
//! §I claims that under POLA-confined horizontal design "a subversion of
//! one component can often be contained and does not infect other
//! components." To *measure* that (experiment E1), any component can be
//! wrapped in [`Subverted`]: when an input containing the exploit marker
//! arrives, the wrapper flips into attacker mode and, on every subsequent
//! invocation, systematically attempts the escalations available to
//! arbitrary code inside the domain:
//!
//! 1. read outside its own memory (must fault at the MMU/bounds check);
//! 2. *use* every capability it legitimately holds (these succeed — POLA
//!    determines how much that is worth);
//! 3. *forge* capabilities — guessed slots/nonces and capabilities owned
//!    by other domains (all must be rejected by the substrate);
//! 4. abuse sealed storage (works only for its own identity, so nothing
//!    foreign leaks).
//!
//! The recorded [`AttackReport`] is the blast radius in mechanism terms;
//! `lateral-core`'s flow analysis translates reachable channels into
//! reachable *assets*.

use lateral_substrate::cap::ChannelCap;
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;
use lateral_substrate::{DomainId, SubstrateError};

/// Query returning the attack report from a subverted component.
pub const REPORT_QUERY: &[u8] = b"__attack_report__:";

/// What the attacker inside the domain managed to do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttackReport {
    /// Whether the component has been exploited at all.
    pub active: bool,
    /// Out-of-bounds memory reads attempted / succeeded.
    pub oob_reads_attempted: u32,
    /// Out-of-bounds reads that the substrate wrongly allowed.
    pub oob_reads_succeeded: u32,
    /// Channels the component legitimately holds (abusable by POLA).
    pub granted_channels: u32,
    /// Granted channels over which an exfiltration message was accepted.
    pub exfil_successes: u32,
    /// Forged capability uses attempted.
    pub forged_attempted: u32,
    /// Forged capability uses the substrate wrongly honored.
    pub forged_succeeded: u32,
}

impl AttackReport {
    /// Serializes the report for the wire.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "active={};oob={}/{};granted={};exfil={};forged={}/{}",
            self.active,
            self.oob_reads_succeeded,
            self.oob_reads_attempted,
            self.granted_channels,
            self.exfil_successes,
            self.forged_succeeded,
            self.forged_attempted,
        )
        .into_bytes()
    }

    /// Parses a report produced by [`AttackReport::encode`]. Strict:
    /// every field must appear exactly once and parse fully — truncated
    /// or partial reports are rejected, never silently defaulted (an
    /// attacker in the reporting path must not be able to shrink their
    /// own audit trail).
    ///
    /// # Errors
    ///
    /// Returns a [`ComponentError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<AttackReport, ComponentError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| ComponentError::new("report not UTF-8"))?;
        let mut report = AttackReport::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in text.split(';') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| ComponentError::new("malformed report field"))?;
            if seen.contains(&key) {
                return Err(ComponentError::new(format!("duplicate field '{key}'")));
            }
            let parse_pair = |v: &str| -> Result<(u32, u32), ComponentError> {
                let (a, b) = v
                    .split_once('/')
                    .ok_or_else(|| ComponentError::new("malformed ratio"))?;
                Ok((
                    a.parse().map_err(|_| ComponentError::new("bad number"))?,
                    b.parse().map_err(|_| ComponentError::new("bad number"))?,
                ))
            };
            match key {
                "active" => {
                    report.active = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(ComponentError::new("bad boolean")),
                    }
                }
                "oob" => {
                    let (s, a) = parse_pair(value)?;
                    report.oob_reads_succeeded = s;
                    report.oob_reads_attempted = a;
                }
                "granted" => {
                    report.granted_channels = value
                        .parse()
                        .map_err(|_| ComponentError::new("bad number"))?
                }
                "exfil" => {
                    report.exfil_successes = value
                        .parse()
                        .map_err(|_| ComponentError::new("bad number"))?
                }
                "forged" => {
                    let (s, a) = parse_pair(value)?;
                    report.forged_succeeded = s;
                    report.forged_attempted = a;
                }
                _ => return Err(ComponentError::new(format!("unknown field '{key}'"))),
            }
            seen.push(key);
        }
        if seen.len() != 5 {
            return Err(ComponentError::new("incomplete report"));
        }
        Ok(report)
    }

    /// Whether the substrate contained the attacker perfectly: nothing
    /// succeeded that was not explicitly granted.
    pub fn contained(&self) -> bool {
        self.oob_reads_succeeded == 0 && self.forged_succeeded == 0
    }
}

/// Wraps a component so it can be exploited and then audited.
pub struct Subverted<C> {
    inner: C,
    markers: Vec<Vec<u8>>,
    report: AttackReport,
}

impl<C: Component> std::fmt::Debug for Subverted<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Subverted({}, active={})",
            self.inner.label(),
            self.report.active
        )
    }
}

impl<C: Component> Subverted<C> {
    /// Wraps `inner`; any request containing `marker` exploits it.
    pub fn new(inner: C, marker: &[u8]) -> Subverted<C> {
        Subverted {
            inner,
            markers: vec![marker.to_vec()],
            report: AttackReport::default(),
        }
    }

    /// Wraps `inner` with several exploit markers (components that parse
    /// multiple hostile formats have multiple bug classes).
    pub fn with_markers(inner: C, markers: &[&[u8]]) -> Subverted<C> {
        Subverted {
            inner,
            markers: markers.iter().map(|m| m.to_vec()).collect(),
            report: AttackReport::default(),
        }
    }

    /// Wraps with the standard markers of every hostile-input parser in
    /// the toolbox (HTML, IMAP, attachment).
    pub fn with_default_marker(inner: C) -> Subverted<C> {
        Self::with_markers(
            inner,
            &[
                crate::html::EXPLOIT_MARKER.as_bytes(),
                crate::imap::IMAP_EXPLOIT.as_bytes(),
                crate::attachments::ATTACHMENT_EXPLOIT.as_bytes(),
            ],
        )
    }

    fn contains_marker(&self, data: &[u8]) -> bool {
        self.markers.iter().any(|marker| {
            !marker.is_empty() && data.windows(marker.len()).any(|w| w == marker.as_slice())
        })
    }

    /// Runs the escalation attempts against the substrate.
    fn rampage(&mut self, ctx: &mut dyn DomainContext) {
        // 1. Out-of-bounds memory reads at escalating offsets.
        for offset in [1 << 20, 1 << 24, usize::MAX - 4096] {
            self.report.oob_reads_attempted += 1;
            if ctx.mem_read(offset, 16).is_ok() {
                self.report.oob_reads_succeeded += 1;
            }
        }
        // 2. Abuse every granted channel for exfiltration.
        let caps = ctx.caps().unwrap_or_default();
        self.report.granted_channels = caps.len() as u32;
        self.report.exfil_successes = 0;
        for cap in &caps {
            if ctx.call(cap, b"EXFIL:stolen-data").is_ok() {
                self.report.exfil_successes += 1;
            }
        }
        // 3. Forge capabilities: other owners, guessed slots and nonces.
        let me = ctx.self_id();
        for owner in 0..8u32 {
            for slot in 0..4u32 {
                let forged = ChannelCap {
                    owner: DomainId(owner),
                    slot,
                    nonce: 1,
                };
                // Skip caps we legitimately hold.
                if caps.iter().any(|c| c == &forged) {
                    continue;
                }
                self.report.forged_attempted += 1;
                match ctx.call(&forged, b"EXFIL:forged") {
                    Ok(_) => self.report.forged_succeeded += 1,
                    Err(SubstrateError::ComponentFailure(_)) => {
                        // The call went through and the target merely
                        // disliked the payload: the forgery *worked*.
                        self.report.forged_succeeded += 1;
                    }
                    Err(_) => {}
                }
            }
        }
        let _ = me;
    }
}

impl<C: Component> Component for Subverted<C> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn on_start(&mut self, ctx: &mut dyn DomainContext) -> Result<(), ComponentError> {
        self.inner.on_start(ctx)
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        if inv.data.starts_with(REPORT_QUERY) {
            return Ok(self.report.encode());
        }
        if !self.report.active && self.contains_marker(inv.data) {
            self.report.active = true;
        }
        if self.report.active {
            self.rampage(ctx);
            // Keep up appearances: still answer like the inner component
            // would, so the compromise stays stealthy.
            return self
                .inner
                .on_call(ctx, inv)
                .or_else(|_| Ok(b"<attacker controlled output>".to_vec()));
        }
        self.inner.on_call(ctx, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    #[test]
    fn report_roundtrip() {
        let r = AttackReport {
            active: true,
            oob_reads_attempted: 3,
            oob_reads_succeeded: 0,
            granted_channels: 2,
            exfil_successes: 2,
            forged_attempted: 30,
            forged_succeeded: 0,
        };
        assert_eq!(AttackReport::decode(&r.encode()).unwrap(), r);
        assert!(r.contained());
    }

    #[test]
    fn benign_traffic_passes_through() {
        let mut s = SoftwareSubstrate::new("sv1");
        let victim = s
            .spawn(
                DomainSpec::named("victim"),
                Box::new(Subverted::new(Echo, b"MARKER")),
            )
            .unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(driver, victim, Badge(0)).unwrap();
        assert_eq!(s.invoke(driver, &cap, b"benign").unwrap(), b"benign");
        let report = AttackReport::decode(&s.invoke(driver, &cap, REPORT_QUERY).unwrap()).unwrap();
        assert!(!report.active);
    }

    #[test]
    fn exploit_activates_and_substrate_contains() {
        let mut s = SoftwareSubstrate::new("sv2");
        let victim = s
            .spawn(
                DomainSpec::named("victim"),
                Box::new(Subverted::new(Echo, b"MARKER")),
            )
            .unwrap();
        // Give the victim one legitimate outbound channel.
        let sink = s.spawn(DomainSpec::named("sink"), Box::new(Echo)).unwrap();
        s.grant_channel(victim, sink, Badge(7)).unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(driver, victim, Badge(0)).unwrap();
        s.invoke(driver, &cap, b"payload with MARKER inside")
            .unwrap();
        let report = AttackReport::decode(&s.invoke(driver, &cap, REPORT_QUERY).unwrap()).unwrap();
        assert!(report.active);
        assert_eq!(report.oob_reads_succeeded, 0, "memory isolation held");
        assert_eq!(report.forged_succeeded, 0, "capability forgery failed");
        assert_eq!(report.granted_channels, 1);
        assert_eq!(report.exfil_successes, 1, "POLA channel remains usable");
        assert!(report.contained());
    }

    #[test]
    fn zero_channel_component_has_zero_exfil_paths() {
        // The renderer configuration of E1: no outbound channels at all.
        let mut s = SoftwareSubstrate::new("sv3");
        let victim = s
            .spawn(
                DomainSpec::named("renderer"),
                Box::new(Subverted::new(Echo, b"MARKER")),
            )
            .unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(driver, victim, Badge(0)).unwrap();
        s.invoke(driver, &cap, b"MARKER").unwrap();
        let report = AttackReport::decode(&s.invoke(driver, &cap, REPORT_QUERY).unwrap()).unwrap();
        assert_eq!(report.granted_channels, 0);
        assert_eq!(report.exfil_successes, 0);
        assert!(report.contained());
    }
}
