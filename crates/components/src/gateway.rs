//! The network gateway: egress filtering for legacy subsystems.
//!
//! §III-C: *"Network access of the Android subsystem can be filtered by
//! an isolated gateway component. If this gateway has exclusive access to
//! the network hardware, it can reliably enforce domain whitelists and
//! bandwidth policies to prevent the smart meter appliance from
//! participating in distributed denial-of-service attacks — an
//! unfortunate reality with today's IoT devices."*

use std::collections::BTreeSet;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// The gateway component. Protocol:
///
/// * `send:<destination>:<bytes>` — requests egress of `bytes` bytes to
///   `destination`; allowed only for whitelisted destinations within the
///   bandwidth budget. Returns `sent` or fails.
/// * `stats:` — `allowed=<n>;denied=<n>;bytes=<n>`.
#[derive(Debug)]
pub struct Gateway {
    whitelist: BTreeSet<String>,
    budget_bytes: u64,
    used_bytes: u64,
    allowed: u64,
    denied: u64,
}

impl Gateway {
    /// Creates a gateway allowing `whitelist` destinations within a total
    /// egress budget of `budget_bytes`.
    pub fn new(whitelist: &[&str], budget_bytes: u64) -> Gateway {
        Gateway {
            whitelist: whitelist.iter().map(|s| s.to_string()).collect(),
            budget_bytes,
            used_bytes: 0,
            allowed: 0,
            denied: 0,
        }
    }

    /// Bytes of budget remaining.
    pub fn remaining(&self) -> u64 {
        self.budget_bytes.saturating_sub(self.used_bytes)
    }
}

impl Component for Gateway {
    fn label(&self) -> &str {
        "gateway"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "send" => {
                let text = utf8(payload)?;
                let (dest, size_text) = text
                    .rsplit_once(':')
                    .ok_or_else(|| ComponentError::new("expected destination:bytes"))?;
                let size: u64 = size_text
                    .parse()
                    .map_err(|_| ComponentError::new("bad byte count"))?;
                if !self.whitelist.contains(dest) {
                    self.denied += 1;
                    return Err(ComponentError::new(format!(
                        "destination '{dest}' not whitelisted"
                    )));
                }
                if self.used_bytes + size > self.budget_bytes {
                    self.denied += 1;
                    return Err(ComponentError::new("egress bandwidth budget exhausted"));
                }
                self.used_bytes += size;
                self.allowed += 1;
                Ok(b"sent".to_vec())
            }
            "stats" => Ok(format!(
                "allowed={};denied={};bytes={}",
                self.allowed, self.denied, self.used_bytes
            )
            .into_bytes()),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn setup() -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
        let mut s = SoftwareSubstrate::new("gw");
        let gw = s
            .spawn(
                DomainSpec::named("gateway"),
                Box::new(Gateway::new(&["utility.example.org"], 10_000)),
            )
            .unwrap();
        let android = s
            .spawn(DomainSpec::named("android"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(android, gw, Badge(1)).unwrap();
        (s, cap)
    }

    #[test]
    fn whitelisted_destination_allowed() {
        let (mut s, cap) = setup();
        assert_eq!(
            s.invoke(cap.owner, &cap, b"send:utility.example.org:512")
                .unwrap(),
            b"sent"
        );
    }

    #[test]
    fn non_whitelisted_destination_denied() {
        let (mut s, cap) = setup();
        assert!(s
            .invoke(cap.owner, &cap, b"send:ddos-target.example.net:64")
            .is_err());
        let stats = s.invoke(cap.owner, &cap, b"stats:").unwrap();
        assert_eq!(stats, b"allowed=0;denied=1;bytes=0");
    }

    #[test]
    fn ddos_flood_hits_bandwidth_budget() {
        // A compromised Android floods the (whitelisted!) utility — the
        // budget still caps its contribution to a DDoS.
        let (mut s, cap) = setup();
        let mut sent = 0;
        let mut denied = 0;
        for _ in 0..30 {
            match s.invoke(cap.owner, &cap, b"send:utility.example.org:1000") {
                Ok(_) => sent += 1,
                Err(_) => denied += 1,
            }
        }
        assert_eq!(sent, 10, "budget of 10k bytes = 10 sends of 1000");
        assert_eq!(denied, 20);
    }

    #[test]
    fn malformed_requests_rejected() {
        let (mut s, cap) = setup();
        assert!(s.invoke(cap.owner, &cap, b"send:no-size").is_err());
        assert!(s
            .invoke(cap.owner, &cap, b"send:utility.example.org:NaN")
            .is_err());
    }
}
