//! The mail store: multi-client storage and the confused-deputy testbed.
//!
//! §III-C: *"The confused deputy problem occurs when the same trusted
//! component instance may serve multiple clients and thereby handle
//! multiple trust domains within itself. If the code of the component is
//! not carefully written, it may inadvertently confuse one client for
//! another."* The store runs in one of two modes:
//!
//! * [`ClientIdSource::KernelBadge`] — the correct design: mailbox
//!   selection uses the unforgeable badge the substrate delivers.
//! * [`ClientIdSource::MessageField`] — the bug: mailbox selection
//!   parses a client-claimed `user` field out of the request, so any
//!   client can name any mailbox. Experiment E8 measures the attack
//!   success rate in both modes.
//!
//! Messages are persisted through [`lateral_vpfs::Vpfs`] — the mail store
//! *is* the paper's trusted-wrapper consumer: it never hands plaintext to
//! the legacy storage stack.

use std::collections::BTreeMap;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;
use lateral_vpfs::{LegacyFs, MemBlockDevice, Vpfs};

use crate::{split_cmd, utf8};

/// How the store identifies its clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientIdSource {
    /// Use the kernel-delivered badge (confused-deputy safe).
    KernelBadge,
    /// Trust a `user=<name>;` prefix inside the message (vulnerable).
    MessageField,
}

/// The mail store component. Protocol:
///
/// * `put:user=<name>;<message>` — appends a message.
/// * `list:user=<name>;` — returns the number of messages.
/// * `get:user=<name>;<index>` — returns one message.
///
/// Under [`ClientIdSource::KernelBadge`] the `user=` field is ignored for
/// authorization: the badge picks the mailbox.
pub struct MailStore {
    id_source: ClientIdSource,
    vpfs: Vpfs,
    /// badge → mailbox name, provisioned by the composer.
    badge_directory: BTreeMap<u64, String>,
    counts: BTreeMap<String, u64>,
}

impl std::fmt::Debug for MailStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MailStore({:?})", self.id_source)
    }
}

impl MailStore {
    /// Creates a store; `badges` maps kernel badges to mailbox names.
    ///
    /// # Panics
    ///
    /// Panics only if the in-memory VPFS cannot be formatted, which
    /// indicates a programming error in the fixed geometry.
    pub fn new(id_source: ClientIdSource, badges: &[(u64, &str)]) -> MailStore {
        let legacy = LegacyFs::format(MemBlockDevice::new(1024)).expect("fixed geometry");
        let vpfs = Vpfs::format(legacy, &[0x4D; 32]).expect("fresh vpfs");
        MailStore {
            id_source,
            vpfs,
            badge_directory: badges.iter().map(|(b, n)| (*b, n.to_string())).collect(),
            counts: BTreeMap::new(),
        }
    }

    fn mailbox_for(&self, badge: u64, claimed_user: &str) -> Result<String, ComponentError> {
        match self.id_source {
            ClientIdSource::KernelBadge => self
                .badge_directory
                .get(&badge)
                .cloned()
                .ok_or_else(|| ComponentError::new("unknown client badge")),
            ClientIdSource::MessageField => Ok(claimed_user.to_string()),
        }
    }

    fn parse_user(payload: &str) -> Result<(&str, &str), ComponentError> {
        let rest = payload
            .strip_prefix("user=")
            .ok_or_else(|| ComponentError::new("expected user=<name>;"))?;
        rest.split_once(';')
            .ok_or_else(|| ComponentError::new("expected ';' after user"))
    }
}

impl Component for MailStore {
    fn label(&self) -> &str {
        "mail-store"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        let text = utf8(payload)?;
        let (claimed_user, body) = Self::parse_user(text)?;
        let mailbox = self.mailbox_for(inv.badge.0, claimed_user)?;
        match cmd {
            "put" => {
                let n = self.counts.entry(mailbox.clone()).or_insert(0);
                let name = format!("{mailbox}/{n}");
                self.vpfs
                    .write(&name, body.as_bytes())
                    .map_err(|e| ComponentError::new(format!("store: {e}")))?;
                *n += 1;
                Ok(format!("stored #{}", *n - 1).into_bytes())
            }
            "list" => {
                let n = self.counts.get(&mailbox).copied().unwrap_or(0);
                Ok(n.to_string().into_bytes())
            }
            "get" => {
                let index: u64 = body.parse().map_err(|_| ComponentError::new("bad index"))?;
                self.vpfs
                    .read(&format!("{mailbox}/{index}"))
                    .map_err(|e| ComponentError::new(format!("fetch: {e}")))
            }
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn setup(
        mode: ClientIdSource,
    ) -> (
        SoftwareSubstrate,
        lateral_substrate::cap::ChannelCap, // alice's channel
        lateral_substrate::cap::ChannelCap, // mallory's channel
    ) {
        let mut s = SoftwareSubstrate::new("ms");
        let store = s
            .spawn(
                DomainSpec::named("mail-store"),
                Box::new(MailStore::new(mode, &[(1, "alice"), (2, "mallory")])),
            )
            .unwrap();
        let alice = s.spawn(DomainSpec::named("alice"), Box::new(Echo)).unwrap();
        let mallory = s
            .spawn(DomainSpec::named("mallory"), Box::new(Echo))
            .unwrap();
        let a = s.grant_channel(alice, store, Badge(1)).unwrap();
        let m = s.grant_channel(mallory, store, Badge(2)).unwrap();
        (s, a, m)
    }

    #[test]
    fn basic_put_list_get() {
        let (mut s, a, _) = setup(ClientIdSource::KernelBadge);
        s.invoke(a.owner, &a, b"put:user=alice;Hello Alice")
            .unwrap();
        s.invoke(a.owner, &a, b"put:user=alice;Second mail")
            .unwrap();
        assert_eq!(s.invoke(a.owner, &a, b"list:user=alice;").unwrap(), b"2");
        assert_eq!(
            s.invoke(a.owner, &a, b"get:user=alice;0").unwrap(),
            b"Hello Alice"
        );
    }

    #[test]
    fn badge_mode_defeats_identity_lie() {
        let (mut s, a, m) = setup(ClientIdSource::KernelBadge);
        s.invoke(a.owner, &a, b"put:user=alice;private mail")
            .unwrap();
        // Mallory claims to be alice in the message — the badge says
        // otherwise, so she only reads her own (empty) mailbox.
        let r = s.invoke(m.owner, &m, b"get:user=alice;0");
        assert!(r.is_err(), "deputy refused or served mallory's own box");
        assert_eq!(s.invoke(m.owner, &m, b"list:user=alice;").unwrap(), b"0");
    }

    #[test]
    fn message_field_mode_is_a_confused_deputy() {
        let (mut s, a, m) = setup(ClientIdSource::MessageField);
        s.invoke(a.owner, &a, b"put:user=alice;private mail")
            .unwrap();
        // The vulnerable mode believes the claimed identity.
        assert_eq!(
            s.invoke(m.owner, &m, b"get:user=alice;0").unwrap(),
            b"private mail"
        );
    }

    #[test]
    fn unknown_badge_rejected_in_badge_mode() {
        let (mut s, _, _) = setup(ClientIdSource::KernelBadge);
        // A third client with an unprovisioned badge.
        let store_id = lateral_substrate::DomainId(0);
        let stranger = s
            .spawn(DomainSpec::named("stranger"), Box::new(Echo))
            .unwrap();
        let cap = s.grant_channel(stranger, store_id, Badge(99)).unwrap();
        assert!(s.invoke(stranger, &cap, b"list:user=alice;").is_err());
    }

    #[test]
    fn malformed_requests_rejected() {
        let (mut s, a, _) = setup(ClientIdSource::KernelBadge);
        assert!(s.invoke(a.owner, &a, b"put:no-user-field").is_err());
        assert!(s.invoke(a.owner, &a, b"get:user=alice;notanumber").is_err());
    }
}
