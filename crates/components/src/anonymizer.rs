//! The utility-side anonymizer of the smart-meter scenario (Figure 3).
//!
//! §III-C: *"the smart meter component wants to ensure the server will
//! only use the data for billing purposes and afterwards stores only
//! anonymized aggregates for long-term analysis … the utility provider
//! could open the source code of the anonymizer for third-party auditing.
//! The smart meter would then check for the signature of the known-good
//! anonymizer and refuse to talk to a manipulated instance."*
//!
//! Two images exist: the audited [`Anonymizer`] aggregates without
//! retaining meter identities; the [`ManipulatedAnonymizer`] secretly
//! logs identified readings. Their *code images differ*, so attestation
//! distinguishes them — which is the entire point of E3's attack case.

use std::collections::BTreeMap;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Canonical code image of the audited anonymizer build (what the meter's
/// trust policy expects).
pub const AUDITED_IMAGE: &[u8] = b"anonymizer v1.0 (audited build 2017-02)";

/// Code image of the manipulated build.
pub const MANIPULATED_IMAGE: &[u8] = b"anonymizer v1.0 (with identified-retention patch)";

fn parse_reading(payload: &[u8]) -> Result<(String, u64, u64), ComponentError> {
    // reading format: <meter_id>,<period>,<watt_hours>
    let text = utf8(payload)?;
    let mut parts = text.split(',');
    let meter = parts
        .next()
        .ok_or_else(|| ComponentError::new("missing meter id"))?
        .to_string();
    let period: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ComponentError::new("bad period"))?;
    let wh: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ComponentError::new("bad reading"))?;
    Ok((meter, period, wh))
}

/// The audited anonymizer. Protocol:
///
/// * `reading:<meter_id>,<period>,<watt_hours>` — ingests a reading;
///   returns `billed:<meter_id>:<amount>` for the billing pipeline and
///   immediately discards the identity.
/// * `aggregate:<period>` — total consumption for a period, no identities.
/// * `retained:` — diagnostic: how many *identified* records are stored
///   (always `0` for the audited build).
#[derive(Debug, Default)]
pub struct Anonymizer {
    per_period_totals: BTreeMap<u64, u64>,
    per_period_count: BTreeMap<u64, u64>,
}

impl Anonymizer {
    /// Creates the audited anonymizer.
    pub fn new() -> Anonymizer {
        Anonymizer::default()
    }
}

impl Component for Anonymizer {
    fn label(&self) -> &str {
        "anonymizer"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "reading" => {
                let (meter, period, wh) = parse_reading(payload)?;
                *self.per_period_totals.entry(period).or_insert(0) += wh;
                *self.per_period_count.entry(period).or_insert(0) += 1;
                // Billing happens synchronously; the identity is not kept.
                let price_milli_cents = wh * 30;
                Ok(format!("billed:{meter}:{price_milli_cents}").into_bytes())
            }
            "aggregate" => {
                let period: u64 = utf8(payload)?
                    .parse()
                    .map_err(|_| ComponentError::new("bad period"))?;
                let total = self.per_period_totals.get(&period).copied().unwrap_or(0);
                let count = self.per_period_count.get(&period).copied().unwrap_or(0);
                Ok(format!("total={total};meters={count}").into_bytes())
            }
            "retained" => Ok(b"0".to_vec()),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

/// The manipulated build: same interface, but identified readings are
/// secretly retained (`retained:` exposes the stash for the experiment's
/// ground truth).
#[derive(Debug, Default)]
pub struct ManipulatedAnonymizer {
    inner: Anonymizer,
    stash: Vec<(String, u64, u64)>,
}

impl ManipulatedAnonymizer {
    /// Creates the manipulated anonymizer.
    pub fn new() -> ManipulatedAnonymizer {
        ManipulatedAnonymizer::default()
    }
}

impl Component for ManipulatedAnonymizer {
    fn label(&self) -> &str {
        "anonymizer" // it *claims* to be the anonymizer…
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        if let Ok(("reading", payload)) = split_cmd(inv.data) {
            if let Ok(r) = parse_reading(payload) {
                self.stash.push(r); // privacy violation
            }
        }
        if let Ok(("retained", _)) = split_cmd(inv.data) {
            return Ok(self.stash.len().to_string().into_bytes());
        }
        self.inner.on_call(ctx, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn drive(
        component: Box<dyn Component>,
    ) -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
        let mut s = SoftwareSubstrate::new("anon");
        let anon = s.spawn(DomainSpec::named("anonymizer"), component).unwrap();
        let meter = s.spawn(DomainSpec::named("meter"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(meter, anon, Badge(1)).unwrap();
        (s, cap)
    }

    #[test]
    fn billing_and_aggregation() {
        let (mut s, cap) = drive(Box::new(Anonymizer::new()));
        let m = cap.owner;
        let r = s.invoke(m, &cap, b"reading:meter-7,202607,1500").unwrap();
        assert_eq!(r, b"billed:meter-7:45000");
        s.invoke(m, &cap, b"reading:meter-8,202607,500").unwrap();
        s.invoke(m, &cap, b"reading:meter-7,202608,100").unwrap();
        assert_eq!(
            s.invoke(m, &cap, b"aggregate:202607").unwrap(),
            b"total=2000;meters=2"
        );
    }

    #[test]
    fn audited_build_retains_nothing() {
        let (mut s, cap) = drive(Box::new(Anonymizer::new()));
        let m = cap.owner;
        s.invoke(m, &cap, b"reading:meter-7,202607,1500").unwrap();
        assert_eq!(s.invoke(m, &cap, b"retained:").unwrap(), b"0");
    }

    #[test]
    fn manipulated_build_retains_identities() {
        let (mut s, cap) = drive(Box::new(ManipulatedAnonymizer::new()));
        let m = cap.owner;
        s.invoke(m, &cap, b"reading:meter-7,202607,1500").unwrap();
        s.invoke(m, &cap, b"reading:meter-8,202607,700").unwrap();
        assert_eq!(s.invoke(m, &cap, b"retained:").unwrap(), b"2");
        // Interface-identical otherwise: an observer cannot tell.
        assert_eq!(
            s.invoke(m, &cap, b"aggregate:202607").unwrap(),
            b"total=2200;meters=2"
        );
    }

    #[test]
    fn images_differ_so_attestation_can_distinguish() {
        assert_ne!(AUDITED_IMAGE, MANIPULATED_IMAGE);
        use lateral_substrate::substrate::DomainSpec;
        let audited = DomainSpec::named("anonymizer")
            .with_image(AUDITED_IMAGE)
            .measurement();
        let manipulated = DomainSpec::named("anonymizer")
            .with_image(MANIPULATED_IMAGE)
            .measurement();
        assert_ne!(audited, manipulated);
    }

    #[test]
    fn malformed_readings_rejected() {
        let (mut s, cap) = drive(Box::new(Anonymizer::new()));
        assert!(s.invoke(cap.owner, &cap, b"reading:no-commas").is_err());
        assert!(s.invoke(cap.owner, &cap, b"reading:m,x,y").is_err());
    }
}
