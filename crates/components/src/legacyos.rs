//! The legacy codebase: the vertical baseline of Figure 1.
//!
//! §II-A: *"Code following a traditional monolithic design combines
//! different subsystems into one protection domain … Any security
//! vulnerability within any subsystem can lead to a complete takeover of
//! the entire legacy application."* [`LegacyOs`] bundles named subsystems
//! and named assets in ONE domain: an exploit delivered to *any*
//! subsystem flips the whole thing, after which every asset is loot.
//! Experiment E1 compares this against the horizontal decomposition.

use std::collections::BTreeMap;

use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::{split_cmd, utf8};

/// Generic exploit marker accepted by every legacy subsystem.
pub const LEGACY_EXPLOIT: &str = "EXPLOIT!";

/// The monolith. Protocol:
///
/// * `deliver:<subsystem>:<input>` — feeds input to a subsystem (an
///   email body to `html`, a server response to `imap`, …). Input
///   containing [`LEGACY_EXPLOIT`] compromises the entire process.
/// * `asset:<name>` — legitimate internal asset use (returns a
///   fixed-format receipt, not the secret).
/// * `loot:` — what the attacker extracts post-compromise: *every*
///   asset, in plaintext. Fails before compromise.
/// * `status:` — `ok` or `compromised`.
/// * `subsystems:` — comma-separated subsystem list.
#[derive(Debug)]
pub struct LegacyOs {
    name: String,
    subsystems: Vec<String>,
    assets: BTreeMap<String, String>,
    compromised: bool,
}

impl LegacyOs {
    /// Creates a monolith named `name` with the given subsystems and
    /// assets (asset = name → secret value).
    pub fn new(name: &str, subsystems: &[&str], assets: &[(&str, &str)]) -> LegacyOs {
        LegacyOs {
            name: name.to_string(),
            subsystems: subsystems.iter().map(|s| s.to_string()).collect(),
            assets: assets
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            compromised: false,
        }
    }

    /// Whether the monolith has been taken over.
    pub fn compromised(&self) -> bool {
        self.compromised
    }
}

impl Component for LegacyOs {
    fn label(&self) -> &str {
        &self.name
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "deliver" => {
                let text = utf8(payload)?;
                let (subsystem, input) = text
                    .split_once(':')
                    .ok_or_else(|| ComponentError::new("expected subsystem:input"))?;
                if !self.subsystems.iter().any(|s| s == subsystem) {
                    return Err(ComponentError::new(format!("no subsystem '{subsystem}'")));
                }
                // No isolation between subsystems: a bug anywhere owns
                // the whole address space.
                if input.contains(LEGACY_EXPLOIT) {
                    self.compromised = true;
                }
                Ok(format!("{subsystem} processed {} bytes", input.len()).into_bytes())
            }
            "asset" => {
                let name = utf8(payload)?;
                if self.assets.contains_key(name) {
                    Ok(format!("used asset '{name}'").into_bytes())
                } else {
                    Err(ComponentError::new(format!("no asset '{name}'")))
                }
            }
            "loot" => {
                if !self.compromised {
                    return Err(ComponentError::new(
                        "assets are internal (not compromised yet)",
                    ));
                }
                let dump: Vec<String> = self
                    .assets
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                Ok(dump.join(";").into_bytes())
            }
            "status" => Ok(if self.compromised {
                b"compromised".to_vec()
            } else {
                b"ok".to_vec()
            }),
            "subsystems" => Ok(self.subsystems.join(",").into_bytes()),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    fn monolith() -> LegacyOs {
        LegacyOs::new(
            "mail-monolith",
            &["imap", "tls", "html", "addressbook", "storage"],
            &[
                ("tls-keys", "-----PRIVATE KEY-----"),
                ("password", "hunter2"),
                ("addressbook", "alice,bob,carol"),
            ],
        )
    }

    fn setup() -> (SoftwareSubstrate, lateral_substrate::cap::ChannelCap) {
        let mut s = SoftwareSubstrate::new("legacy");
        let os = s
            .spawn(DomainSpec::named("monolith"), Box::new(monolith()))
            .unwrap();
        let net = s.spawn(DomainSpec::named("net"), Box::new(Echo)).unwrap();
        let cap = s.grant_channel(net, os, Badge(1)).unwrap();
        (s, cap)
    }

    #[test]
    fn benign_traffic_is_processed() {
        let (mut s, cap) = setup();
        let r = s
            .invoke(cap.owner, &cap, b"deliver:html:<p>hello</p>")
            .unwrap();
        assert_eq!(r, b"html processed 12 bytes");
        assert_eq!(s.invoke(cap.owner, &cap, b"status:").unwrap(), b"ok");
        assert!(s.invoke(cap.owner, &cap, b"loot:").is_err());
    }

    #[test]
    fn any_subsystem_exploit_owns_everything() {
        // The Figure 1 claim, vertical side: one HTML bug leaks the TLS
        // keys, the password, and the address book.
        let (mut s, cap) = setup();
        s.invoke(
            cap.owner,
            &cap,
            format!("deliver:html:<script>{LEGACY_EXPLOIT}</script>").as_bytes(),
        )
        .unwrap();
        assert_eq!(
            s.invoke(cap.owner, &cap, b"status:").unwrap(),
            b"compromised"
        );
        let loot = s.invoke(cap.owner, &cap, b"loot:").unwrap();
        let loot = String::from_utf8(loot).unwrap();
        assert!(loot.contains("tls-keys=-----PRIVATE KEY-----"));
        assert!(loot.contains("password=hunter2"));
        assert!(loot.contains("addressbook=alice,bob,carol"));
    }

    #[test]
    fn every_subsystem_is_an_equivalent_entry_point() {
        for subsystem in ["imap", "tls", "html", "addressbook", "storage"] {
            let (mut s, cap) = setup();
            s.invoke(
                cap.owner,
                &cap,
                format!("deliver:{subsystem}:{LEGACY_EXPLOIT}").as_bytes(),
            )
            .unwrap();
            assert_eq!(
                s.invoke(cap.owner, &cap, b"status:").unwrap(),
                b"compromised",
                "subsystem {subsystem} did not take the monolith down"
            );
        }
    }

    #[test]
    fn unknown_subsystem_rejected() {
        let (mut s, cap) = setup();
        assert!(s.invoke(cap.owner, &cap, b"deliver:gpu:data").is_err());
    }
}
