//! The TLS component: sole keeper of channel keys and account secrets.
//!
//! §III-C: *"another component for transport-layer security (TLS) and
//! login. If only the TLS component can access the device driver of the
//! network card, the isolation substrate enforces mandatory encryption
//! and integrity protection. Cryptographic keys and the user's account
//! passwords are shielded from all other components."*
//!
//! The component wraps the handshake state machine of
//! [`lateral_net::channel`] behind the component interface. Neither the
//! identity key, nor the session keys, nor the account password ever
//! appear in any reply — the `login:` command seals the credentials
//! *directly into the channel*, so even the component that drives the
//! connection never sees them.

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_net::channel::{
    ChannelPolicy, ClientHandshake, SecureChannel, ServerAwaitFinish, ServerHandshake,
};
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::DomainContext;

use crate::split_cmd;

/// Which side of the handshake this instance plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsRole {
    /// Connect-side.
    Client,
    /// Accept-side.
    Server,
}

enum State {
    Idle,
    ClientAwaitingServerHello(ClientHandshake),
    ServerAwaitingFinish(ServerAwaitFinish),
    Established(Box<SecureChannel>),
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            State::Idle => "idle",
            State::ClientAwaitingServerHello(_) => "await-server-hello",
            State::ServerAwaitingFinish(_) => "await-finish",
            State::Established(_) => "established",
        };
        f.write_str(s)
    }
}

/// The TLS component. Protocol (binary payload after the colon):
///
/// Client role:
/// * `hello:` — starts the handshake, returns ClientHello bytes.
/// * `complete:<server_hello>` — verifies, returns ClientFinish bytes.
///
/// Server role:
/// * `accept:<client_hello>` — returns ServerHello bytes (with
///   attestation evidence when `attest_self` is on).
/// * `finish:<client_finish>` — completes the handshake, returns `ok`.
///
/// Both, once established:
/// * `send:<plaintext>` — returns the sealed record.
/// * `recv:<record>` — returns the plaintext.
/// * `login:` — client only: seals `LOGIN <account> <password>` into the
///   channel, returning the record (the password never leaves otherwise).
/// * `peer:` — hex peer key, plus `;attested=<measurement hex>` when the
///   policy demanded attestation.
pub struct TlsComponent {
    role: TlsRole,
    identity: SigningKey,
    policy: ChannelPolicy,
    attest_self: bool,
    account: Option<(String, String)>,
    state: State,
    peer: Option<lateral_net::channel::PeerInfo>,
    rng: Option<Drbg>,
}

impl std::fmt::Debug for TlsComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TlsComponent({:?}, {:?})", self.role, self.state)
    }
}

impl TlsComponent {
    /// Creates a TLS component.
    ///
    /// * `identity` — this party's signing key.
    /// * `policy` — requirements on the peer (pinning / attestation).
    /// * `attest_self` — attach substrate attestation evidence bound to
    ///   the handshake (server role; client role attaches it in Finish).
    /// * `account` — optional `(user, password)` for `login:`.
    pub fn new(
        role: TlsRole,
        identity: SigningKey,
        policy: ChannelPolicy,
        attest_self: bool,
        account: Option<(&str, &str)>,
    ) -> TlsComponent {
        TlsComponent {
            role,
            identity,
            policy,
            attest_self,
            account: account.map(|(u, p)| (u.to_string(), p.to_string())),
            state: State::Idle,
            peer: None,
            rng: None,
        }
    }

    fn rng(&mut self, ctx: &mut dyn DomainContext) -> &mut Drbg {
        if self.rng.is_none() {
            let mut seed = Vec::new();
            for _ in 0..4 {
                seed.extend_from_slice(&ctx.rng_u64().to_le_bytes());
            }
            self.rng = Some(Drbg::from_seed(&seed));
        }
        self.rng.as_mut().expect("just initialized")
    }

    fn channel(&mut self) -> Result<&mut SecureChannel, ComponentError> {
        match &mut self.state {
            State::Established(c) => Ok(c),
            other => Err(ComponentError::new(format!(
                "channel not established (state: {other:?})"
            ))),
        }
    }
}

impl Component for TlsComponent {
    fn label(&self) -> &str {
        "tls"
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match (cmd, self.role) {
            ("hello", TlsRole::Client) => {
                let identity = self.identity.clone();
                let (state, hello) = ClientHandshake::start(identity, self.rng(ctx));
                self.state = State::ClientAwaitingServerHello(state);
                Ok(hello)
            }
            ("complete", TlsRole::Client) => {
                let state = match std::mem::replace(&mut self.state, State::Idle) {
                    State::ClientAwaitingServerHello(s) => s,
                    other => {
                        self.state = other;
                        return Err(ComponentError::new("no handshake in progress"));
                    }
                };
                let attest_self = self.attest_self;
                let (channel, finish, peer) = state
                    .finish(payload, &self.policy, |transcript| {
                        if attest_self {
                            ctx.attest(transcript.as_bytes()).ok()
                        } else {
                            None
                        }
                    })
                    .map_err(|e| ComponentError::new(format!("handshake: {e}")))?;
                self.state = State::Established(Box::new(channel));
                self.peer = Some(peer);
                Ok(finish)
            }
            ("accept", TlsRole::Server) => {
                let identity = self.identity.clone();
                let pending = {
                    let rng = self.rng(ctx);
                    ServerHandshake::accept(&identity, rng, payload)
                        .map_err(|e| ComponentError::new(format!("handshake: {e}")))?
                };
                let evidence = if self.attest_self {
                    ctx.attest(pending.transcript().as_bytes()).ok()
                } else {
                    None
                };
                let (awaiting, server_hello) = pending.respond(evidence, payload);
                self.state = State::ServerAwaitingFinish(awaiting);
                Ok(server_hello)
            }
            ("finish", TlsRole::Server) => {
                let state = match std::mem::replace(&mut self.state, State::Idle) {
                    State::ServerAwaitingFinish(s) => s,
                    other => {
                        self.state = other;
                        return Err(ComponentError::new("no handshake in progress"));
                    }
                };
                let (channel, peer) = state
                    .complete(payload, &self.policy)
                    .map_err(|e| ComponentError::new(format!("handshake: {e}")))?;
                self.state = State::Established(Box::new(channel));
                self.peer = Some(peer);
                Ok(b"ok".to_vec())
            }
            ("send", _) => Ok(self.channel()?.seal(payload)),
            ("recv", _) => self
                .channel()?
                .open(payload)
                .map_err(|e| ComponentError::new(format!("record: {e}"))),
            ("login", TlsRole::Client) => {
                let (user, password) = self
                    .account
                    .clone()
                    .ok_or_else(|| ComponentError::new("no account provisioned"))?;
                let msg = format!("LOGIN {user} {password}");
                Ok(self.channel()?.seal(msg.as_bytes()))
            }
            ("peer", _) => {
                let peer = self
                    .peer
                    .as_ref()
                    .ok_or_else(|| ComponentError::new("no peer yet"))?;
                let mut out: String = peer.key.iter().map(|b| format!("{b:02x}")).collect();
                if let Some(att) = &peer.attested {
                    out.push_str(";attested=");
                    out.push_str(&att.measurement.to_hex());
                }
                Ok(out.into_bytes())
            }
            (other, role) => Err(ComponentError::new(format!(
                "command '{other}' invalid for {role:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::cap::Badge;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::{DomainSpec, Substrate};
    use lateral_substrate::testkit::Echo;

    /// Wires a client TLS component and a server TLS component on one
    /// substrate and relays handshake bytes between them.
    fn establish(
        client_policy: ChannelPolicy,
        server_policy: ChannelPolicy,
    ) -> (
        SoftwareSubstrate,
        lateral_substrate::cap::ChannelCap, // driver → client tls
        lateral_substrate::cap::ChannelCap, // driver → server tls
    ) {
        let mut s = SoftwareSubstrate::new("tls comp");
        let client = s
            .spawn(
                DomainSpec::named("tls-client"),
                Box::new(TlsComponent::new(
                    TlsRole::Client,
                    SigningKey::from_seed(b"client id"),
                    client_policy,
                    false,
                    Some(("alice", "hunter2")),
                )),
            )
            .unwrap();
        let server = s
            .spawn(
                DomainSpec::named("tls-server"),
                Box::new(TlsComponent::new(
                    TlsRole::Server,
                    SigningKey::from_seed(b"server id"),
                    server_policy,
                    false,
                    None,
                )),
            )
            .unwrap();
        let driver = s
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let c_cap = s.grant_channel(driver, client, Badge(1)).unwrap();
        let s_cap = s.grant_channel(driver, server, Badge(2)).unwrap();

        let hello = s.invoke(driver, &c_cap, b"hello:").unwrap();
        let mut req = b"accept:".to_vec();
        req.extend_from_slice(&hello);
        let server_hello = s.invoke(driver, &s_cap, &req).unwrap();
        let mut req = b"complete:".to_vec();
        req.extend_from_slice(&server_hello);
        let finish = s.invoke(driver, &c_cap, &req).unwrap();
        let mut req = b"finish:".to_vec();
        req.extend_from_slice(&finish);
        assert_eq!(s.invoke(driver, &s_cap, &req).unwrap(), b"ok");
        (s, c_cap, s_cap)
    }

    #[test]
    fn end_to_end_records_through_components() {
        let (mut s, c_cap, s_cap) = establish(ChannelPolicy::open(), ChannelPolicy::open());
        let driver = c_cap.owner;
        let mut req = b"send:".to_vec();
        req.extend_from_slice(b"SELECT INBOX");
        let record = s.invoke(driver, &c_cap, &req).unwrap();
        assert!(!record.windows(12).any(|w| w == b"SELECT INBOX"));
        let mut req = b"recv:".to_vec();
        req.extend_from_slice(&record);
        assert_eq!(s.invoke(driver, &s_cap, &req).unwrap(), b"SELECT INBOX");
    }

    #[test]
    fn login_seals_password_without_exposing_it() {
        let (mut s, c_cap, s_cap) = establish(ChannelPolicy::open(), ChannelPolicy::open());
        let driver = c_cap.owner;
        let record = s.invoke(driver, &c_cap, b"login:").unwrap();
        // The driver relaying the record cannot see the password.
        assert!(!record.windows(7).any(|w| w == b"hunter2"));
        let mut req = b"recv:".to_vec();
        req.extend_from_slice(&record);
        assert_eq!(
            s.invoke(driver, &s_cap, &req).unwrap(),
            b"LOGIN alice hunter2"
        );
    }

    #[test]
    fn pinned_policy_rejects_wrong_server() {
        let pinned = ChannelPolicy::pin(SigningKey::from_seed(b"someone else").verifying_key());
        let mut sub = SoftwareSubstrate::new("tls pin");
        let client = sub
            .spawn(
                DomainSpec::named("tls-client"),
                Box::new(TlsComponent::new(
                    TlsRole::Client,
                    SigningKey::from_seed(b"client id"),
                    pinned,
                    false,
                    None,
                )),
            )
            .unwrap();
        let server = sub
            .spawn(
                DomainSpec::named("tls-server"),
                Box::new(TlsComponent::new(
                    TlsRole::Server,
                    SigningKey::from_seed(b"server id"),
                    ChannelPolicy::open(),
                    false,
                    None,
                )),
            )
            .unwrap();
        let driver = sub
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let c_cap = sub.grant_channel(driver, client, Badge(1)).unwrap();
        let s_cap = sub.grant_channel(driver, server, Badge(2)).unwrap();
        let hello = sub.invoke(driver, &c_cap, b"hello:").unwrap();
        let mut req = b"accept:".to_vec();
        req.extend_from_slice(&hello);
        let server_hello = sub.invoke(driver, &s_cap, &req).unwrap();
        let mut req = b"complete:".to_vec();
        req.extend_from_slice(&server_hello);
        assert!(sub.invoke(driver, &c_cap, &req).is_err());
    }

    #[test]
    fn records_before_handshake_rejected() {
        let mut sub = SoftwareSubstrate::new("tls early");
        let client = sub
            .spawn(
                DomainSpec::named("tls-client"),
                Box::new(TlsComponent::new(
                    TlsRole::Client,
                    SigningKey::from_seed(b"c"),
                    ChannelPolicy::open(),
                    false,
                    None,
                )),
            )
            .unwrap();
        let driver = sub
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = sub.grant_channel(driver, client, Badge(1)).unwrap();
        assert!(sub.invoke(driver, &cap, b"send:data").is_err());
        assert!(sub.invoke(driver, &cap, b"login:").is_err());
    }

    #[test]
    fn peer_query_reports_identity() {
        let (mut s, c_cap, _) = establish(ChannelPolicy::open(), ChannelPolicy::open());
        let peer = s.invoke(c_cap.owner, &c_cap, b"peer:").unwrap();
        let expected: String = SigningKey::from_seed(b"server id")
            .verifying_key()
            .to_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(String::from_utf8(peer).unwrap(), expected);
    }
}
