//! Unified causal telemetry: deterministic spans, cross-channel trace
//! propagation, and a metrics registry.
//!
//! Every layer of the reproduction already keeps some private trace —
//! the fabric's crossing ring, the registry's operation log, the
//! supervisor's restart counters — but none of them can answer the
//! question the paper's trust story actually raises: *which* composed
//! invocation caused *that* remote attestation check? This crate is the
//! shared answer:
//!
//! * **Causal spans** ([`Span`], [`Telemetry`]) — intervals on the
//!   deterministic logical clock with explicit parent/child links, so a
//!   `compose → grant → invoke → seal → respawn` flow is one tree. Span
//!   and trace ids are allocated from per-[`Telemetry`] counters (never
//!   wall time, never randomness), so two runs of the same scenario
//!   produce byte-identical trees.
//! * **Trace propagation** ([`TraceContext`]) — an 18-byte strict codec
//!   that rides inside sealed channel records, so the serving side of a
//!   remote call adopts the caller's trace instead of starting a
//!   disconnected one. Decoding is all-or-nothing: wrong length, wrong
//!   magic, wrong version, or a zero trace id are rejected, never
//!   half-accepted.
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters and
//!   fixed-bucket logical-tick histograms ([`Histogram`]) replacing the
//!   scattered per-layer counters with one registry the old accessors
//!   are rebuilt from.
//! * **Deterministic exporter** — fixed-width renderers
//!   ([`Telemetry::render_tree`], [`MetricsRegistry::render`]) and
//!   canonical digests ([`Telemetry::tree_digest`]). The tree digest
//!   covers only *shape* — depth, layer, name, outcome — and excludes
//!   timestamps and crossing costs, so it is invariant across backends
//!   whose crossings cost differently (E12 asserts exactly this).

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use lateral_crypto::Digest;

pub mod profile;

/// Spans retained in the closed-span ring before the oldest is dropped.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Errors from the telemetry layer (today: only codec rejection).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TelemetryError {
    /// A [`TraceContext`] wire blob was malformed and was rejected
    /// whole.
    Codec,
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Codec => write!(f, "malformed trace-context encoding"),
        }
    }
}

impl Error for TelemetryError {}

/// Identifies one span within its [`Telemetry`]. Zero means "no span"
/// (a root's parent); real ids are allocated from 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SpanId(pub u64);

/// Stable handle to a span name interned in a [`Telemetry`] (see
/// [`Telemetry::intern`]). Opening a span through a label
/// ([`Telemetry::begin_span_label`]) reuses the interned string, so the
/// hot invocation paths never re-format or re-allocate span names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct LabelId(u32);

/// Stable handle to a counter registered in a [`MetricsRegistry`]
/// (see [`MetricsRegistry::counter_id`]). Incrementing through the
/// handle is a plain vector index — no allocation, no map lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(u32);

/// Stable handle to a histogram registered in a [`MetricsRegistry`]
/// (see [`MetricsRegistry::histogram_id`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistogramId(u32);

impl SpanId {
    /// The absent span (a trace root's parent).
    pub const NONE: SpanId = SpanId(0);
}

/// The propagated slice of a trace: which trace, and which span in it
/// the next piece of work should hang under. This is what crosses
/// channel and machine boundaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// The trace being continued (allocated from 1; 0 never appears on
    /// the wire).
    pub trace_id: u64,
    /// The span the receiver's work is causally under.
    pub parent: SpanId,
}

/// First byte of every encoded [`TraceContext`].
const CTX_MAGIC: u8 = 0xC7;
/// Codec version; bump on any layout change.
const CTX_VERSION: u8 = 0x01;
/// Exact encoded length: magic, version, trace id, parent span id.
pub const CTX_ENCODED_LEN: usize = 18;

impl TraceContext {
    /// Encodes to the fixed 18-byte wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CTX_ENCODED_LEN);
        out.push(CTX_MAGIC);
        out.push(CTX_VERSION);
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.parent.0.to_le_bytes());
        out
    }

    /// Decodes the strict wire form. All-or-nothing: any length, magic,
    /// or version mismatch — or a zero trace id, which no encoder emits
    /// — rejects the whole blob.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Codec`] on any malformation.
    pub fn decode(data: &[u8]) -> Result<TraceContext, TelemetryError> {
        if data.len() != CTX_ENCODED_LEN || data[0] != CTX_MAGIC || data[1] != CTX_VERSION {
            return Err(TelemetryError::Codec);
        }
        let trace_id = u64::from_le_bytes(data[2..10].try_into().expect("length checked"));
        let parent = u64::from_le_bytes(data[10..18].try_into().expect("length checked"));
        if trace_id == 0 {
            return Err(TelemetryError::Codec);
        }
        Ok(TraceContext {
            trace_id,
            parent: SpanId(parent),
        })
    }
}

/// Span outcome codes. These mirror the fabric's `TraceOutcome` codes
/// 0–4 so fabric events map straight through; the codes are append-only
/// and never renumbered.
pub mod outcome {
    /// Completed normally.
    pub const OK: u8 = 0;
    /// Refused: the target domain was already mid-invocation.
    pub const REENTRANCY: u8 = 1;
    /// The operation itself failed.
    pub const FAILED: u8 = 2;
    /// A deterministic fault-injection fired.
    pub const INJECTED: u8 = 3;
    /// The target domain crashed (or was already crashed).
    pub const CRASHED: u8 = 4;

    /// Stable display name for an outcome code.
    #[must_use]
    pub fn name(code: u8) -> &'static str {
        match code {
            OK => "ok",
            REENTRANCY => "reentrancy",
            FAILED => "failed",
            INJECTED => "injected",
            CRASHED => "crashed",
            _ => "unknown",
        }
    }
}

/// One interval on the logical clock, linked to its parent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Span {
    /// This span's id (unique within its [`Telemetry`]).
    pub id: SpanId,
    /// The trace (tree) this span belongs to.
    pub trace_id: u64,
    /// Parent span, or [`SpanId::NONE`] for a trace root. A parent from
    /// a *remote* telemetry (adopted via [`Telemetry::begin_span_in`])
    /// does not resolve locally; the span renders as that trace's local
    /// root.
    pub parent: SpanId,
    /// What the span covers, e.g. `invoke meter`. A shared string:
    /// spans opened through an interned [`LabelId`] all point at the
    /// same allocation.
    pub name: Arc<str>,
    /// Which layer opened it: `fabric`, `channel`, `remote`,
    /// `supervisor`, `compose`, …
    pub layer: &'static str,
    /// Logical-clock tick when the span was opened.
    pub start: u64,
    /// Logical-clock tick when the span was closed (≥ `start`).
    pub end: u64,
    /// Outcome code (see [`outcome`]).
    pub outcome: u8,
}

impl Span {
    /// Logical ticks the span covered.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Upper bucket bounds for [`Histogram`]; the last bucket is overflow.
pub const HISTOGRAM_BOUNDS: [u64; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

/// A fixed-bucket histogram of logical-tick values. Buckets are the
/// powers of four up to 16384 plus one overflow bucket, which covers
/// everything from a free local call to the most expensive late-launch
/// crossing.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts, lowest bound first; the final entry is the
    /// overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Deterministic percentile extraction.
    ///
    /// Convention (the one every consumer must share for cross-backend
    /// digests to agree): the percentile-`p` observation is found by its
    /// *rank* `ceil(count * p / 100)` (1-based, so `p = 50` of 4
    /// observations is rank 2), walking buckets in bound order; the
    /// reported value is the **upper bound** of the bucket holding that
    /// rank ([`HISTOGRAM_BOUNDS`]), and the overflow bucket reports
    /// [`Histogram::max`]. Pure integer arithmetic — no floats, no
    /// interpolation — so p50/p99 are byte-identical across backends,
    /// runs, and platforms. An empty histogram reports 0. `p` is
    /// clamped to 1..=100.
    #[must_use]
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(1, 100);
        let rank = (self.count * p).div_ceil(100);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match HISTOGRAM_BOUNDS.get(idx) {
                    Some(&bound) => bound,
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }

    /// Median under the [`Histogram::percentile`] convention.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 99th percentile under the [`Histogram::percentile`] convention.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Reconstructs a histogram from its exported parts (the profile
    /// codec's decode side). Strict: the bucket counts must sum to
    /// `count`, and an empty histogram must carry zero `sum` and `max`.
    #[must_use]
    pub fn from_parts(
        buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
        count: u64,
        sum: u64,
        max: u64,
    ) -> Option<Histogram> {
        let mut total = 0u64;
        for &b in &buckets {
            total = total.checked_add(b)?;
        }
        if total != count {
            return None;
        }
        if count == 0 && (sum != 0 || max != 0) {
            return None;
        }
        Some(Histogram {
            buckets,
            count,
            sum,
            max,
        })
    }

    /// Adds another histogram bucket-wise (the same merge
    /// [`MetricsRegistry::absorb`] performs).
    pub fn absorb(&mut self, other: &Histogram) {
        for (m, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *m += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} sum={} max={} buckets=[{}]",
            self.count,
            self.sum,
            self.max,
            self.buckets
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        )
    }
}

/// Named counters and histograms for one layer or one whole node.
///
/// Values live in registration-order vectors addressed by stable
/// handles ([`CounterId`], [`HistogramId`]); a `BTreeMap` name index
/// keeps every read-side surface — iteration, rendering, digesting —
/// in canonical name order regardless of registration order. Recording
/// through a handle touches only the vector, so the fabric's
/// per-invocation counters cost no allocation and no map walk.
#[derive(Clone, Default, Debug)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<Arc<str>, u32>,
    counters: Vec<(Arc<str>, u64)>,
    histogram_index: BTreeMap<Arc<str>, u32>,
    histograms: Vec<(Arc<str>, Histogram)>,
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &MetricsRegistry) -> bool {
        // Name-ordered comparison: two registries are equal when they
        // hold the same values, whatever order registration happened in.
        self.counters().eq(other.counters()) && self.histograms().eq(other.histograms())
    }
}

impl Eq for MetricsRegistry {}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or finds) the named counter and returns its stable
    /// handle. Callers on hot paths resolve the handle once and then
    /// increment through [`MetricsRegistry::incr_by_id`].
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterId(i);
        }
        let arc: Arc<str> = Arc::from(name);
        let i = u32::try_from(self.counters.len()).expect("counter count fits u32");
        self.counters.push((arc.clone(), 0));
        self.counter_index.insert(arc, i);
        CounterId(i)
    }

    /// Adds `by` to the counter behind `id` — a vector index, no
    /// allocation.
    pub fn incr_by_id(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize].1 += by;
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        let id = self.counter_id(name);
        self.incr_by_id(id, by);
    }

    /// Current value of a counter (0 if never registered).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&i| self.counters[i as usize].1)
    }

    /// Registers (or finds) the named histogram and returns its stable
    /// handle.
    pub fn histogram_id(&mut self, name: &str) -> HistogramId {
        if let Some(&i) = self.histogram_index.get(name) {
            return HistogramId(i);
        }
        let arc: Arc<str> = Arc::from(name);
        let i = u32::try_from(self.histograms.len()).expect("histogram count fits u32");
        self.histograms.push((arc.clone(), Histogram::default()));
        self.histogram_index.insert(arc, i);
        HistogramId(i)
    }

    /// Records `value` into the histogram behind `id`.
    pub fn observe_by_id(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0 as usize].1.observe(value);
    }

    /// Records `value` into the named histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        let id = self.histogram_id(name);
        self.observe_by_id(id, value);
    }

    /// The named histogram, if it was ever registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_index
            .get(name)
            .map(|&i| &self.histograms[i as usize].1)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_index
            .iter()
            .map(|(name, &i)| (&**name, self.counters[i as usize].1))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_index
            .iter()
            .map(|(name, &i)| (&**name, &self.histograms[i as usize].1))
    }

    /// Merges another registry into this one (counters add, histograms
    /// add bucket-wise) — used to aggregate per-substrate registries
    /// into one node-wide view.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, &i) in &other.counter_index {
            self.incr(name, other.counters[i as usize].1);
        }
        for (name, &i) in &other.histogram_index {
            let hist = &other.histograms[i as usize].1;
            let id = self.histogram_id(name);
            self.histograms[id.0 as usize].1.absorb(hist);
        }
    }

    /// Fixed-width text table of every counter and histogram.
    #[must_use]
    pub fn render(&self) -> String {
        let width = self
            .counter_index
            .keys()
            .chain(self.histogram_index.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        for (name, hist) in self.histograms() {
            let _ = writeln!(out, "{name:width$}  {hist}");
        }
        out
    }

    /// Digest over every counter and histogram, in canonical order.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::of(self.render().as_bytes())
    }

    /// Digest over the counters selected by `keep` (histograms and the
    /// rejected counters excluded). E12 uses this to project out the
    /// backend-specific series — crossing kinds and costs differ per
    /// substrate — and assert the rest is identical on all six.
    #[must_use]
    pub fn digest_filtered(&self, keep: impl Fn(&str) -> bool) -> Digest {
        let mut canon = String::new();
        for (name, value) in self.counters() {
            if keep(name) {
                let _ = writeln!(canon, "{name}={value}");
            }
        }
        Digest::of(canon.as_bytes())
    }
}

/// One layer's (or one node's) span collector plus its metrics.
///
/// Spans nest through an explicit stack: [`Telemetry::begin_span`]
/// opens a child of the innermost open span (or a new trace root when
/// none is open), and [`Telemetry::end_span`] closes it into the
/// bounded ring. Holders without a substrate clock (remote endpoints)
/// can timestamp from the built-in [`Telemetry::tick`] counter.
#[derive(Clone, Debug)]
pub struct Telemetry {
    capacity: usize,
    next_span: u64,
    next_trace: u64,
    /// Innermost-last stack of open span ids.
    stack: Vec<SpanId>,
    open: Vec<Span>,
    closed: VecDeque<Span>,
    spans_recorded: u64,
    ticks: u64,
    metrics: MetricsRegistry,
    labels: Vec<Arc<str>>,
    label_index: BTreeMap<Arc<str>, u32>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A collector with the default span ring capacity.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A collector retaining at most `capacity` closed spans.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            capacity: capacity.max(1),
            next_span: 1,
            next_trace: 1,
            stack: Vec::new(),
            open: Vec::new(),
            closed: VecDeque::new(),
            spans_recorded: 0,
            ticks: 0,
            metrics: MetricsRegistry::new(),
            labels: Vec::new(),
            label_index: BTreeMap::new(),
        }
    }

    /// Interns `name`, returning a stable [`LabelId`]. Interning the
    /// same string twice returns the same id; the allocation happens
    /// once, and every span opened through the label shares it.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&i) = self.label_index.get(name) {
            return LabelId(i);
        }
        let arc: Arc<str> = Arc::from(name);
        let i = u32::try_from(self.labels.len()).expect("label count fits u32");
        self.labels.push(arc.clone());
        self.label_index.insert(arc, i);
        LabelId(i)
    }

    /// The interned string behind `label`.
    #[must_use]
    pub fn label(&self, label: LabelId) -> &str {
        &self.labels[label.0 as usize]
    }

    /// Advances and returns the built-in logical tick, for holders that
    /// have no substrate clock to timestamp from.
    pub fn tick(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    /// Opens a span at tick `at`: a child of the innermost open span,
    /// or the root of a fresh trace when none is open.
    pub fn begin_span(&mut self, name: &str, layer: &'static str, at: u64) -> SpanId {
        let name: Arc<str> = Arc::from(name);
        self.begin_span_arc(name, layer, at)
    }

    /// [`Telemetry::begin_span`] through an interned label — the
    /// allocation-free hot path: the span's name is an `Arc` clone of
    /// the interned string.
    pub fn begin_span_label(&mut self, label: LabelId, layer: &'static str, at: u64) -> SpanId {
        let name = Arc::clone(&self.labels[label.0 as usize]);
        self.begin_span_arc(name, layer, at)
    }

    fn begin_span_arc(&mut self, name: Arc<str>, layer: &'static str, at: u64) -> SpanId {
        let (trace_id, parent) = match self.stack.last() {
            Some(&top) => (self.trace_of(top), top),
            None => {
                let t = self.next_trace;
                self.next_trace += 1;
                (t, SpanId::NONE)
            }
        };
        self.push_span(trace_id, parent, name, layer, at)
    }

    /// Opens a span *inside a propagated trace*: when no span is open,
    /// the new span adopts `ctx`'s trace and parent, so a remote
    /// request lands in its caller's tree. When a span is already open,
    /// local causality wins and this behaves like
    /// [`Telemetry::begin_span`].
    pub fn begin_span_in(
        &mut self,
        ctx: TraceContext,
        name: &str,
        layer: &'static str,
        at: u64,
    ) -> SpanId {
        match self.stack.last() {
            Some(&top) => {
                let trace = self.trace_of(top);
                self.push_span(trace, top, Arc::from(name), layer, at)
            }
            None => {
                // Keep local trace-id allocation clear of the adopted id
                // so a later local root cannot collide with this trace.
                self.next_trace = self.next_trace.max(ctx.trace_id + 1);
                self.push_span(ctx.trace_id, ctx.parent, Arc::from(name), layer, at)
            }
        }
    }

    /// Opens a span as an explicit **link child** of `ctx` — same trace,
    /// parented on `ctx.parent` — without consulting or joining the
    /// stack. Concurrent in-flight work (a multiplexed session's many
    /// simultaneously open requests) cannot use stack discipline: the
    /// innermost open span at submit time is some *other* request, not
    /// this span's causal parent. A linked span never becomes the
    /// implicit parent of later stack spans; close it with
    /// [`Telemetry::end_span`] like any other.
    pub fn begin_span_linked(
        &mut self,
        ctx: TraceContext,
        name: &str,
        layer: &'static str,
        at: u64,
    ) -> SpanId {
        // Keep local trace-id allocation clear of the linked id so a
        // later local root cannot collide with this trace.
        self.next_trace = self.next_trace.max(ctx.trace_id + 1);
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.push(Span {
            id,
            trace_id: ctx.trace_id,
            parent: ctx.parent,
            name: Arc::from(name),
            layer,
            start: at,
            end: at,
            outcome: outcome::OK,
        });
        self.spans_recorded += 1;
        id
    }

    /// Records an already-finished event as a zero-or-more-tick span
    /// under the innermost open span, without touching the stack.
    pub fn instant(&mut self, name: &str, layer: &'static str, at: u64, outcome: u8) -> SpanId {
        let id = self.begin_span(name, layer, at);
        self.end_span(id, at, outcome);
        id
    }

    /// [`Telemetry::instant`] through an interned label (allocation-free).
    pub fn instant_label(
        &mut self,
        label: LabelId,
        layer: &'static str,
        at: u64,
        outcome: u8,
    ) -> SpanId {
        let id = self.begin_span_label(label, layer, at);
        self.end_span(id, at, outcome);
        id
    }

    /// Closes `id` at tick `at` with `outcome`, moving it into the
    /// ring. Unknown ids are ignored (the span may have been dropped by
    /// a full ring of a smaller collector it was forwarded to).
    pub fn end_span(&mut self, id: SpanId, at: u64, outcome: u8) {
        let Some(idx) = self.open.iter().position(|s| s.id == id) else {
            return;
        };
        let mut span = self.open.swap_remove(idx);
        span.end = at.max(span.start);
        span.outcome = outcome;
        self.stack.retain(|&s| s != id);
        if self.closed.len() == self.capacity {
            self.closed.pop_front();
        }
        self.closed.push_back(span);
    }

    /// The innermost open span, or [`SpanId::NONE`].
    #[must_use]
    pub fn current(&self) -> SpanId {
        self.stack.last().copied().unwrap_or(SpanId::NONE)
    }

    /// The context to propagate from here: the innermost open span's
    /// trace and id, or `None` when no span is open.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.stack.last().map(|&top| TraceContext {
            trace_id: self.trace_of(top),
            parent: top,
        })
    }

    /// Closed spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.closed.iter()
    }

    /// Spans currently open (in opening order).
    pub fn open_spans(&self) -> impl Iterator<Item = &Span> {
        self.open.iter()
    }

    /// Closed spans currently retained in the ring.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.closed.len()
    }

    /// Spans ever closed, including those the ring has since dropped.
    #[must_use]
    pub fn spans_recorded(&self) -> u64 {
        self.spans_recorded
    }

    /// This collector's metrics.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This collector's metrics, writable.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Renders every retained trace as a fixed-width indented tree:
    /// one line per span, children indented under parents, ordered by
    /// trace id then span id. Includes timestamps, so this rendering is
    /// per-backend; the cross-backend-invariant projection is
    /// [`Telemetry::tree_digest`].
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.walk(|depth, span| {
            let _ = writeln!(
                out,
                "{:indent$}{} [{}] {}..{} {}",
                "",
                span.name,
                span.layer,
                span.start,
                span.end,
                outcome::name(span.outcome),
                indent = depth * 2
            );
        });
        out
    }

    /// Canonical digest of every retained trace's *shape*: depth,
    /// layer, name, and outcome per span, in deterministic order —
    /// timestamps, costs, and crossing kinds excluded, so the digest is
    /// identical across backends whose crossings differ.
    #[must_use]
    pub fn tree_digest(&self) -> Digest {
        self.digest_spans(None)
    }

    /// [`Telemetry::tree_digest`] restricted to one trace — the digest
    /// an experiment asserts about *its* flow, unaffected by whatever
    /// other traces the same collector retained.
    #[must_use]
    pub fn trace_digest(&self, trace_id: u64) -> Digest {
        self.digest_spans(Some(trace_id))
    }

    fn digest_spans(&self, trace: Option<u64>) -> Digest {
        let mut canon = Vec::new();
        self.append_tree_shape(trace, &mut canon);
        Digest::of_parts(&[b"lateral.telemetry.tree", &canon])
    }

    // The canonical shape bytes behind every tree digest: one record
    // per span (depth, layer, name, outcome, 0x1e terminator) in
    // deterministic walk order. Shared by the per-collector digests
    // above and by [`merged_tree_digest`], which concatenates the
    // shape bytes of several collectors under the same domain
    // separator — that sharing is what makes a one-collector merge
    // equal the collector's own `tree_digest()`.
    fn append_tree_shape(&self, trace: Option<u64>, canon: &mut Vec<u8>) {
        self.walk(|depth, span| {
            if trace.is_some_and(|t| span.trace_id != t) {
                return;
            }
            canon.push(depth.min(255) as u8);
            canon.extend_from_slice(span.layer.as_bytes());
            canon.push(0);
            canon.extend_from_slice(span.name.as_bytes());
            canon.push(0);
            canon.push(span.outcome);
            canon.push(0x1e);
        });
    }

    fn trace_of(&self, id: SpanId) -> u64 {
        self.open
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.trace_id)
            .unwrap_or(0)
    }

    fn push_span(
        &mut self,
        trace_id: u64,
        parent: SpanId,
        name: Arc<str>,
        layer: &'static str,
        at: u64,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.push(Span {
            id,
            trace_id,
            parent,
            name,
            layer,
            start: at,
            end: at,
            outcome: outcome::OK,
        });
        self.stack.push(id);
        self.spans_recorded += 1;
        id
    }

    /// Depth-first walk over all retained spans (closed, then still
    /// open), grouped by trace, children in span-id order. Spans whose
    /// parent is absent (a true root, an adopted remote parent, or a
    /// parent the ring dropped) anchor at depth 0.
    fn walk(&self, mut visit: impl FnMut(usize, &Span)) {
        let all: Vec<&Span> = self.closed.iter().chain(self.open.iter()).collect();
        let ids: std::collections::BTreeSet<u64> = all.iter().map(|s| s.id.0).collect();
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut roots: Vec<&Span> = Vec::new();
        for span in &all {
            if span.parent != SpanId::NONE && ids.contains(&span.parent.0) {
                children.entry(span.parent.0).or_default().push(span);
            } else {
                roots.push(span);
            }
        }
        roots.sort_by_key(|s| (s.trace_id, s.id));
        for list in children.values_mut() {
            list.sort_by_key(|s| s.id);
        }
        // Iterative DFS; depth-tagged.
        let mut stack: Vec<(usize, &Span)> = roots.into_iter().rev().map(|s| (0, s)).collect();
        while let Some((depth, span)) = stack.pop() {
            visit(depth, span);
            if let Some(kids) = children.get(&span.id.0) {
                for kid in kids.iter().rev() {
                    stack.push((depth + 1, kid));
                }
            }
        }
    }
}

/// Canonical tree digest over several collectors treated as one
/// logical telemetry tree — what a sharded fabric reports for its
/// merged trace. Each collector contributes its deterministic shape
/// bytes in iteration order (callers pass shards in shard-id order),
/// under the same domain separator as [`Telemetry::tree_digest`], so
/// a single-collector merge equals that collector's own
/// `tree_digest()` byte for byte.
pub fn merged_tree_digest<'a>(parts: impl IntoIterator<Item = &'a Telemetry>) -> Digest {
    let mut canon = Vec::new();
    for telemetry in parts {
        telemetry.append_tree_shape(None, &mut canon);
    }
    Digest::of_parts(&[b"lateral.telemetry.tree", &canon])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_codec_round_trips() {
        let ctx = TraceContext {
            trace_id: 7,
            parent: SpanId(42),
        };
        let wire = ctx.encode();
        assert_eq!(wire.len(), CTX_ENCODED_LEN);
        assert_eq!(TraceContext::decode(&wire).unwrap(), ctx);
    }

    #[test]
    fn context_codec_rejects_malformed() {
        let good = TraceContext {
            trace_id: 9,
            parent: SpanId(3),
        }
        .encode();
        for cut in 0..good.len() {
            assert!(TraceContext::decode(&good[..cut]).is_err());
        }
        let mut long = good.clone();
        long.push(0);
        assert!(TraceContext::decode(&long).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        assert!(TraceContext::decode(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[1] ^= 1;
        assert!(TraceContext::decode(&bad_version).is_err());
        let zero_trace = TraceContext {
            trace_id: 1,
            parent: SpanId(0),
        };
        let mut wire = zero_trace.encode();
        wire[2..10].fill(0); // trace_id = 0
        assert!(TraceContext::decode(&wire).is_err());
    }

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let mut t = Telemetry::new();
        let root = t.begin_span("root", "test", 1);
        let child = t.begin_span("child", "test", 2);
        let grandchild = t.begin_span("grand", "test", 3);
        t.end_span(grandchild, 4, outcome::OK);
        t.end_span(child, 5, outcome::FAILED);
        t.end_span(root, 6, outcome::OK);
        let spans: Vec<&Span> = t.spans().collect();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| &*s.name == n).copied().unwrap();
        assert_eq!(by_name("root").parent, SpanId::NONE);
        assert_eq!(by_name("child").parent, by_name("root").id);
        assert_eq!(by_name("grand").parent, by_name("child").id);
        assert!(spans.iter().all(|s| s.trace_id == by_name("root").trace_id));
        assert_eq!(by_name("child").outcome, outcome::FAILED);
    }

    #[test]
    fn begin_span_in_adopts_the_propagated_trace() {
        let mut caller = Telemetry::new();
        let req = caller.begin_span("request", "remote", 1);
        let ctx = caller.context().expect("request is open");
        let mut server = Telemetry::new();
        let serve = server.begin_span_in(ctx, "serve", "remote", 10);
        server.end_span(serve, 11, outcome::OK);
        caller.end_span(req, 2, outcome::OK);
        let serve_span = server.spans().next().unwrap();
        assert_eq!(serve_span.trace_id, ctx.trace_id);
        assert_eq!(serve_span.parent, req);
        // A later local root must not collide with the adopted trace.
        let local = server.begin_span("local", "test", 20);
        let local_trace = server.open_spans().next().unwrap().trace_id;
        assert!(local_trace > ctx.trace_id);
        server.end_span(local, 21, outcome::OK);
    }

    #[test]
    fn ring_is_bounded_and_counts_everything() {
        let mut t = Telemetry::with_capacity(4);
        for i in 0..10 {
            let id = t.begin_span(&format!("s{i}"), "test", i);
            t.end_span(id, i, outcome::OK);
        }
        assert_eq!(t.span_count(), 4);
        assert_eq!(t.spans_recorded(), 10);
        assert_eq!(&*t.spans().next().unwrap().name, "s6");
    }

    #[test]
    fn interned_labels_are_stable_and_shared() {
        let mut t = Telemetry::new();
        let a = t.intern("invoke meter");
        let b = t.intern("invoke meter");
        let c = t.intern("invoke utility");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.label(a), "invoke meter");
        // A span opened through the label carries the same shared string
        // a by-name span would.
        let s1 = t.begin_span_label(a, "test", 1);
        t.end_span(s1, 2, outcome::OK);
        let s2 = t.begin_span("invoke meter", "test", 3);
        t.end_span(s2, 4, outcome::OK);
        let names: Vec<&str> = t.spans().map(|s| &*s.name).collect();
        assert_eq!(names, ["invoke meter", "invoke meter"]);
        // Same tree shape whichever API opened the span.
        let build = |by_label: bool| {
            let mut t = Telemetry::new();
            let id = if by_label {
                let l = t.intern("op");
                t.begin_span_label(l, "test", 5)
            } else {
                t.begin_span("op", "test", 5)
            };
            t.end_span(id, 6, outcome::OK);
            t.tree_digest()
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn export_with_evicted_parents_never_dangles() {
        // Close the parent *before* its child (allowed), then push enough
        // spans through the cap-2 ring to evict the parent while the child
        // is still retained. Exporting must not panic, and the orphaned
        // child must anchor at depth 0 instead of pointing at a span the
        // ring no longer holds.
        let mut t = Telemetry::with_capacity(2);
        let root = t.begin_span("root", "test", 0);
        let child = t.begin_span("child", "test", 1);
        t.end_span(root, 2, outcome::OK);
        for i in 0..3u64 {
            let filler = t.begin_span("filler", "test", 3 + i);
            t.end_span(filler, 3 + i, outcome::OK);
        }
        t.end_span(child, 9, outcome::OK);
        let retained_ids: std::collections::BTreeSet<u64> = t.spans().map(|s| s.id.0).collect();
        assert!(
            !retained_ids.contains(&root.0),
            "parent must have been evicted for this test to bite"
        );
        let tree = t.render_tree();
        assert!(tree.contains("child"), "orphan is still exported: {tree}");
        // Anchored at depth 0: the child's line is not indented.
        assert!(
            tree.lines().any(|l| l.starts_with("child")),
            "orphan must anchor as a root: {tree}"
        );
        // Every rendered parent link resolves to a retained span.
        let mut seen = 0;
        t.walk(|depth, span| {
            seen += 1;
            if depth > 0 {
                assert!(
                    retained_ids.contains(&span.parent.0),
                    "span {:?} rendered under a parent the ring dropped",
                    span.name
                );
            }
        });
        assert_eq!(seen, t.span_count());
        // And the digest is reproducible.
        assert_eq!(t.tree_digest(), t.tree_digest());
    }

    #[test]
    fn tree_digest_ignores_timestamps_but_not_shape() {
        let build = |offset: u64| {
            let mut t = Telemetry::new();
            let root = t.begin_span("root", "test", offset);
            let child = t.begin_span("work", "test", offset + 17);
            t.end_span(child, offset + 40, outcome::OK);
            t.end_span(root, offset + 50, outcome::OK);
            t
        };
        assert_eq!(build(0).tree_digest(), build(1000).tree_digest());
        let mut other = Telemetry::new();
        let root = other.begin_span("root", "test", 0);
        let child = other.begin_span("work", "test", 17);
        other.end_span(child, 40, outcome::FAILED);
        other.end_span(root, 50, outcome::OK);
        assert_ne!(build(0).tree_digest(), other.tree_digest());
    }

    #[test]
    fn render_tree_indents_children() {
        let mut t = Telemetry::new();
        let root = t.begin_span("root", "test", 0);
        let child = t.begin_span("leaf", "test", 1);
        t.end_span(child, 2, outcome::OK);
        t.end_span(root, 3, outcome::OK);
        let tree = t.render_tree();
        assert!(tree.contains("root [test] 0..3 ok"));
        assert!(tree.contains("\n  leaf [test] 1..2 ok"));
    }

    #[test]
    fn percentiles_follow_the_upper_bound_convention() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(50), 0, "empty histogram reports 0");
        // Four observations land in buckets ≤4 (two), ≤16, ≤64.
        for v in [2, 3, 10, 40] {
            h.observe(v);
        }
        // rank(p50) = ceil(4*50/100) = 2 → second observation → the ≤4
        // bucket → its upper bound.
        assert_eq!(h.p50(), 4);
        // rank(p99) = ceil(4*99/100) = 4 → the ≤64 bucket.
        assert_eq!(h.p99(), 64);
        assert_eq!(h.percentile(100), 64);
        assert_eq!(h.percentile(1), 4);
        // p is clamped: 0 behaves as 1, 1000 as 100.
        assert_eq!(h.percentile(0), h.percentile(1));
        assert_eq!(h.percentile(1000), h.percentile(100));
        // The overflow bucket reports the exact max, not a bound.
        let mut big = Histogram::default();
        big.observe(3);
        big.observe(70_000);
        assert_eq!(big.p99(), 70_000);
        assert_eq!(big.p50(), 4);
    }

    #[test]
    fn percentile_is_identical_across_observation_orders() {
        // The convention must not depend on insertion order — only on
        // the bucket counts.
        let mut fwd = Histogram::default();
        let mut rev = Histogram::default();
        let values = [1u64, 5, 5, 17, 90, 300, 1_500, 20_000];
        for &v in &values {
            fwd.observe(v);
        }
        for &v in values.iter().rev() {
            rev.observe(v);
        }
        for p in [1, 25, 50, 75, 90, 99, 100] {
            assert_eq!(fwd.percentile(p), rev.percentile(p), "p{p}");
        }
    }

    #[test]
    fn histogram_from_parts_is_strict() {
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(500);
        let mut buckets = [0u64; HISTOGRAM_BOUNDS.len() + 1];
        buckets.copy_from_slice(h.buckets());
        let back = Histogram::from_parts(buckets, h.count(), h.sum(), h.max()).unwrap();
        assert_eq!(back, h);
        // Bucket counts not summing to count are rejected.
        assert!(Histogram::from_parts(buckets, 3, h.sum(), h.max()).is_none());
        // An empty histogram cannot claim a sum or max.
        let zero = [0u64; HISTOGRAM_BOUNDS.len() + 1];
        assert!(Histogram::from_parts(zero, 0, 1, 0).is_none());
        assert!(Histogram::from_parts(zero, 0, 0, 9).is_none());
        assert!(Histogram::from_parts(zero, 0, 0, 0).is_some());
    }

    #[test]
    fn histogram_absorb_matches_observing_everything() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [1u64, 9, 100] {
            a.observe(v);
            all.observe(v);
        }
        for v in [7u64, 30_000] {
            b.observe(v);
            all.observe(v);
        }
        a.absorb(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn metrics_counters_histograms_and_filtered_digest() {
        let mut m = MetricsRegistry::new();
        m.incr("fabric.invocations", 3);
        m.incr("crossing.smc", 2);
        m.observe("crossing.smc.cost", 40);
        m.observe("crossing.smc.cost", 3000);
        assert_eq!(m.counter("fabric.invocations"), 3);
        let hist = m.histogram("crossing.smc.cost").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.max(), 3000);
        assert_eq!(hist.sum(), 3040);
        // The invariant projection sees only the kept counters.
        let mut other = MetricsRegistry::new();
        other.incr("fabric.invocations", 3);
        other.incr("crossing.ipc", 9);
        other.observe("crossing.ipc.cost", 1);
        assert_eq!(
            m.digest_filtered(|name| !name.starts_with("crossing.")),
            other.digest_filtered(|name| !name.starts_with("crossing.")),
        );
        assert_ne!(m.digest(), other.digest());
    }

    #[test]
    fn metric_handles_match_by_name_recording() {
        let mut by_name = MetricsRegistry::new();
        by_name.incr("fabric.invocations", 2);
        by_name.observe("crossing.ipc.cost", 120);
        let mut by_id = MetricsRegistry::new();
        let c = by_id.counter_id("fabric.invocations");
        let h = by_id.histogram_id("crossing.ipc.cost");
        by_id.incr_by_id(c, 1);
        by_id.incr_by_id(c, 1);
        by_id.observe_by_id(h, 120);
        assert_eq!(by_name, by_id);
        assert_eq!(by_name.render(), by_id.render());
        assert_eq!(by_name.digest(), by_id.digest());
        // Re-registering returns the same handle.
        assert_eq!(c, by_id.counter_id("fabric.invocations"));
        assert_eq!(h, by_id.histogram_id("crossing.ipc.cost"));
        // Registration alone creates the series at zero/empty.
        let mut fresh = MetricsRegistry::new();
        fresh.counter_id("fabric.denials");
        assert_eq!(fresh.counter("fabric.denials"), 0);
        assert!(fresh.render().contains("fabric.denials"));
    }

    #[test]
    fn registry_equality_ignores_registration_order() {
        let mut a = MetricsRegistry::new();
        a.incr("x", 1);
        a.incr("y", 2);
        let mut b = MetricsRegistry::new();
        b.incr("y", 2);
        b.incr("x", 1);
        assert_eq!(a, b);
        b.incr("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn absorb_merges_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.incr("x", 1);
        a.observe("h", 5);
        let mut b = MetricsRegistry::new();
        b.incr("x", 2);
        b.incr("y", 7);
        b.observe("h", 2000);
        a.absorb(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 2000);
    }

    #[test]
    fn render_is_deterministic_and_digest_matches() {
        let mut m = MetricsRegistry::new();
        m.incr("b", 2);
        m.incr("a", 1);
        m.observe("c", 10);
        let first = m.render();
        assert_eq!(first, m.render());
        assert_eq!(m.digest(), Digest::of(first.as_bytes()));
        // Name-ordered regardless of registration order.
        assert!(first.find("a ").unwrap() < first.find("b ").unwrap());
    }

    #[test]
    fn export_digest_is_invariant_under_registration_order() {
        // Two registries register the same families in opposite orders
        // (as two shards whose traffic touched families at different
        // times would), then record identical totals.
        let mut forward = MetricsRegistry::new();
        for name in ["fabric.invocations", "crossing.xshard", "fabric.bytes"] {
            forward.counter_id(name);
        }
        forward.histogram_id("crossing.xshard.cost");
        let mut reverse = MetricsRegistry::new();
        reverse.histogram_id("crossing.xshard.cost");
        for name in ["fabric.bytes", "crossing.xshard", "fabric.invocations"] {
            reverse.counter_id(name);
        }
        for m in [&mut forward, &mut reverse] {
            m.incr("fabric.invocations", 12);
            m.incr("fabric.bytes", 480);
            m.incr("crossing.xshard", 3);
            m.observe("crossing.xshard.cost", 251);
        }
        assert_eq!(forward.render(), reverse.render());
        assert_eq!(forward.digest(), reverse.digest());

        // Merging shard registries is order-invariant too.
        let mut extra = MetricsRegistry::new();
        extra.incr("fabric.denials", 1);
        extra.incr("crossing.xshard", 2);
        let mut ab = forward.clone();
        ab.absorb(&extra);
        let mut ba = extra.clone();
        ba.absorb(&reverse);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.counter("crossing.xshard"), 5);
    }

    #[test]
    fn merged_tree_digest_of_one_collector_is_its_own() {
        let mut t = Telemetry::new();
        let root = t.begin_span("root", "experiment", 0);
        t.instant("child", "fabric", 1, outcome::OK);
        t.end_span(root, 2, outcome::OK);
        assert_eq!(merged_tree_digest([&t]), t.tree_digest());

        // Two collectors concatenate in iteration order: stable, and
        // sensitive to shard order (the merge key), not to anything
        // else.
        let mut u = Telemetry::new();
        u.instant("other", "fabric", 3, outcome::FAILED);
        let m01 = merged_tree_digest([&t, &u]);
        assert_eq!(m01, merged_tree_digest([&t, &u]));
        assert_ne!(m01, merged_tree_digest([&u, &t]));
        assert_ne!(m01, t.tree_digest());
    }
}
