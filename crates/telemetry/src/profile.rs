//! Crossing-cost profiles: the observability layer's answer to "where
//! do this assembly's ticks actually go?".
//!
//! A [`CrossingProfile`] folds per-crossing latency observations into
//! per-edge statistics, where an *edge* is the triple
//! `(from, to, kind)` — caller domain name, callee domain name, and
//! the crossing-kind name the backend charged (`"local"`, `"ipc"`,
//! `"smc"`, `"enclave"`, `"mailbox"`, `"late-launch"`, `"xshard"`).
//! Each edge keeps a fixed-bucket [`Histogram`] of per-call crossing
//! costs plus the total payload bytes, so a consumer can read
//! deterministic p50/p99/total-ticks per edge (the
//! [`Histogram::percentile`] upper-bound convention) and price the
//! same traffic on a different backend's cost model.
//!
//! Profiles are plain data with a strict line-based text codec
//! ([`CrossingProfile::to_text`] / [`CrossingProfile::parse`]): decode
//! is all-or-nothing (unknown directives, malformed numbers,
//! out-of-order or duplicate edges, and trailing garbage all reject
//! the whole blob), the emitted form is canonical (edges in key
//! order), and [`CrossingProfile::digest`] hashes exactly that
//! canonical form under a domain separator. Profiles from several
//! engines — the per-shard fabrics of a `ShardFabric`, or the members
//! of a composed assembly's substrate pool — merge edge-wise with
//! [`CrossingProfile::absorb`], which is associative and commutative,
//! so the merged profile is independent of fold order.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use lateral_crypto::Digest;

use crate::{Histogram, HISTOGRAM_BOUNDS};

/// Domain separator for [`CrossingProfile::digest`].
const PROFILE_DOMAIN: &[u8] = b"lateral.telemetry.crossing-profile";

/// Header line opening every encoded profile.
const PROFILE_HEADER: &str = "crossing-profile v1";

/// Errors from the profile codec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileCodecError(String);

impl fmt::Display for ProfileCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed crossing-profile: {}", self.0)
    }
}

impl Error for ProfileCodecError {}

/// One directed edge's identity: caller name, callee name, and the
/// crossing-kind name the backend charged. Kind is carried as its
/// stable display name, not an enum — the profile layer is below the
/// fabric and must stay meaningful for kinds it has never heard of.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EdgeKey {
    /// Caller domain name.
    pub from: String,
    /// Callee domain name.
    pub to: String,
    /// Crossing-kind display name (`"ipc"`, `"smc"`, …).
    pub kind: String,
}

/// Folded statistics for one edge.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct EdgeStats {
    /// Per-call crossing-cost histogram (logical ticks).
    pub costs: Histogram,
    /// Total payload bytes carried over the edge.
    pub bytes: u64,
}

impl EdgeStats {
    /// Calls observed on this edge.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.costs.count()
    }

    /// Total crossing ticks spent on this edge.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.costs.sum()
    }
}

/// Per-edge crossing statistics for one engine (or a merged set of
/// engines). See the module docs for the codec and merge contracts.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct CrossingProfile {
    edges: BTreeMap<EdgeKey, EdgeStats>,
}

impl CrossingProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> CrossingProfile {
        CrossingProfile::default()
    }

    /// Records one call on the edge `(from, to, kind)` costing `cost`
    /// ticks and carrying `bytes` payload bytes. Edge names are domain
    /// names and kind names — whitespace-free by construction; the
    /// text codec tokenizes on whitespace and relies on that.
    pub fn observe(&mut self, from: &str, to: &str, kind: &str, cost: u64, bytes: u64) {
        let stats = self
            .edges
            .entry(EdgeKey {
                from: from.to_string(),
                to: to.to_string(),
                kind: kind.to_string(),
            })
            .or_default();
        stats.costs.observe(cost);
        stats.bytes += bytes;
    }

    /// All edges, in canonical key order.
    pub fn edges(&self) -> impl Iterator<Item = (&EdgeKey, &EdgeStats)> {
        self.edges.iter()
    }

    /// The stats for one edge, if observed.
    #[must_use]
    pub fn edge(&self, from: &str, to: &str, kind: &str) -> Option<&EdgeStats> {
        self.edges.get(&EdgeKey {
            from: from.to_string(),
            to: to.to_string(),
            kind: kind.to_string(),
        })
    }

    /// Distinct edges observed.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total calls across all edges.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.edges.values().map(EdgeStats::calls).sum()
    }

    /// Total crossing ticks across all edges.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.edges.values().map(EdgeStats::ticks).sum()
    }

    /// Merges `other` into this profile edge-wise. Associative and
    /// commutative, so folding N engines' profiles yields the same
    /// merged profile in any order.
    pub fn absorb(&mut self, other: &CrossingProfile) {
        for (key, stats) in &other.edges {
            let mine = self.edges.entry(key.clone()).or_default();
            mine.costs.absorb(&stats.costs);
            mine.bytes += stats.bytes;
        }
    }

    /// Canonical text form: a header line, then one `edge` line per
    /// edge in key order —
    ///
    /// ```text
    /// crossing-profile v1
    /// edge <from> <to> <kind> calls <n> ticks <sum> max <m> bytes <b> buckets <b0> … <b8>
    /// ```
    ///
    /// [`CrossingProfile::parse`] accepts exactly this form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{PROFILE_HEADER}");
        for (key, stats) in &self.edges {
            let _ = write!(
                out,
                "edge {} {} {} calls {} ticks {} max {} bytes {} buckets",
                key.from,
                key.to,
                key.kind,
                stats.costs.count(),
                stats.costs.sum(),
                stats.costs.max(),
                stats.bytes,
            );
            for b in stats.costs.buckets() {
                let _ = write!(out, " {b}");
            }
            out.push('\n');
        }
        out
    }

    /// Strict decoder for [`CrossingProfile::to_text`]. All-or-nothing:
    /// a missing or repeated header, an unknown directive, a malformed
    /// or internally inconsistent edge line (bucket counts must sum to
    /// `calls`), edges out of canonical order or duplicated, or any
    /// trailing garbage rejects the whole text. `parse(p.to_text())`
    /// reproduces `p` exactly.
    ///
    /// # Errors
    ///
    /// [`ProfileCodecError`] on any malformation.
    pub fn parse(text: &str) -> Result<CrossingProfile, ProfileCodecError> {
        let bad =
            |line_no: usize, why: &str| ProfileCodecError(format!("line {}: {why}", line_no + 1));
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first == PROFILE_HEADER => {}
            _ => return Err(ProfileCodecError("missing header".into())),
        }
        let mut edges: BTreeMap<EdgeKey, EdgeStats> = BTreeMap::new();
        let mut last_key: Option<EdgeKey> = None;
        for (no, line) in lines {
            let words: Vec<&str> = line.split(' ').collect();
            // Exact arity: "edge" + 3 names + 4 labeled scalar pairs +
            // "buckets" + 9 counts = 22 tokens. split(' ') (not
            // whitespace) also rejects doubled spaces and tabs.
            const ARITY: usize = 13 + HISTOGRAM_BOUNDS.len() + 1;
            if words.len() != ARITY || words[0] != "edge" {
                return Err(bad(no, "expected an 'edge' line"));
            }
            let [from, to, kind] = [words[1], words[2], words[3]];
            if from.is_empty() || to.is_empty() || kind.is_empty() {
                return Err(bad(no, "empty edge name"));
            }
            let int = |label_idx: usize, label: &str| -> Result<u64, ProfileCodecError> {
                if words[label_idx] != label {
                    return Err(bad(no, &format!("expected '{label}'")));
                }
                parse_u64(words[label_idx + 1])
                    .ok_or_else(|| bad(no, &format!("malformed {label}")))
            };
            let calls = int(4, "calls")?;
            let ticks = int(6, "ticks")?;
            let max = int(8, "max")?;
            let bytes = int(10, "bytes")?;
            if words[12] != "buckets" {
                return Err(bad(no, "expected 'buckets'"));
            }
            let mut buckets = [0u64; HISTOGRAM_BOUNDS.len() + 1];
            for (i, slot) in buckets.iter_mut().enumerate() {
                *slot =
                    parse_u64(words[13 + i]).ok_or_else(|| bad(no, "malformed bucket count"))?;
            }
            let costs = Histogram::from_parts(buckets, calls, ticks, max)
                .ok_or_else(|| bad(no, "inconsistent histogram"))?;
            let key = EdgeKey {
                from: from.to_string(),
                to: to.to_string(),
                kind: kind.to_string(),
            };
            if last_key.as_ref().is_some_and(|prev| *prev >= key) {
                return Err(bad(no, "edges out of canonical order"));
            }
            last_key = Some(key.clone());
            edges.insert(key, EdgeStats { costs, bytes });
        }
        Ok(CrossingProfile { edges })
    }

    /// Canonical digest: the [`CrossingProfile::to_text`] bytes under a
    /// profile-specific domain separator. Two profiles digest equal iff
    /// they hold identical edge statistics.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[PROFILE_DOMAIN, self.to_text().as_bytes()])
    }

    /// Fixed-width report table: one line per edge with calls, total
    /// ticks, and the deterministic p50/p99 (upper-bound convention).
    #[must_use]
    pub fn render(&self) -> String {
        let width = self
            .edges
            .keys()
            .map(|k| k.from.len() + k.to.len() + k.kind.len() + 4)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (key, stats) in &self.edges {
            let label = format!("{}->{} [{}]", key.from, key.to, key.kind);
            let _ = writeln!(
                out,
                "{label:width$}  calls {:>8}  ticks {:>12}  p50 {:>8}  p99 {:>8}",
                stats.calls(),
                stats.ticks(),
                stats.costs.p50(),
                stats.costs.p99(),
            );
        }
        out
    }
}

/// Strict decimal parser: rejects empty strings, leading `+`/`-`,
/// leading zeros (except "0" itself), and overflow — the canonical
/// encoder never emits any of those.
fn parse_u64(s: &str) -> Option<u64> {
    if s.is_empty() || (s.len() > 1 && s.starts_with('0')) {
        return None;
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrossingProfile {
        let mut p = CrossingProfile::new();
        for i in 0..5u64 {
            p.observe("frontend", "ledger", "smc", 3_000 + i, 64);
        }
        p.observe("ledger", "audit", "ipc", 1_008, 32);
        p.observe("frontend", "ledger", "ipc", 1_004, 16);
        p
    }

    #[test]
    fn observe_folds_into_edges() {
        let p = sample();
        assert_eq!(p.edge_count(), 3);
        let smc = p.edge("frontend", "ledger", "smc").unwrap();
        assert_eq!(smc.calls(), 5);
        assert_eq!(smc.ticks(), 3_000 + 3_001 + 3_002 + 3_003 + 3_004);
        assert_eq!(smc.bytes, 5 * 64);
        assert_eq!(smc.costs.p50(), 4_096);
        assert_eq!(p.total_calls(), 7);
        assert!(p.edge("ledger", "frontend", "smc").is_none());
    }

    #[test]
    fn text_codec_round_trips_canonically() {
        let p = sample();
        let text = p.to_text();
        let back = CrossingProfile::parse(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_text(), text);
        assert_eq!(back.digest(), p.digest());
        // Edges appear in canonical key order.
        let ipc = text.find("frontend ledger ipc").unwrap();
        let smc = text.find("frontend ledger smc").unwrap();
        let audit = text.find("ledger audit ipc").unwrap();
        assert!(ipc < smc && smc < audit);
        // The empty profile round-trips too.
        let empty = CrossingProfile::new();
        assert_eq!(CrossingProfile::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        let good = sample().to_text();
        let mut shuffled: Vec<&str> = good.lines().collect();
        shuffled.swap(1, 2); // edges out of canonical order
        let shuffled = shuffled.join("\n");
        let dup = {
            let mut lines: Vec<&str> = good.lines().collect();
            lines.push(lines[1]);
            lines.join("\n")
        };
        for bad in [
            "",
            "crossing-profile v2",
            &good[..good.len() - 2],            // truncated mid-line
            &format!("{good}trailing"),         // trailing garbage
            &format!("{good}{PROFILE_HEADER}"), // repeated header
            &good.replace("calls", "callz"),
            &good.replace("edge", "edgy"),
            &good.replace(" 5 ", " 05 "),        // non-canonical integer
            &good.replace(" 5 ", " -5 "),        // signed integer
            &good.replace(" 5 ", "  5 "),        // doubled separator
            &good.replace("calls 5", "calls 4"), // buckets no longer sum to calls
            shuffled.as_str(),
            dup.as_str(),
        ] {
            assert!(CrossingProfile::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn absorb_is_order_invariant() {
        let mut a = CrossingProfile::new();
        a.observe("x", "y", "ipc", 1_000, 8);
        a.observe("x", "z", "smc", 3_000, 8);
        let mut b = CrossingProfile::new();
        b.observe("x", "y", "ipc", 1_004, 16);
        b.observe("w", "y", "local", 5, 4);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.edge("x", "y", "ipc").unwrap().calls(), 2);
        assert_eq!(ab.edge("x", "y", "ipc").unwrap().bytes, 24);
        assert_eq!(ab.total_ticks(), a.total_ticks() + b.total_ticks());
    }

    #[test]
    fn digest_separates_distinct_profiles() {
        let p = sample();
        let mut q = sample();
        q.observe("frontend", "ledger", "smc", 3_000, 64);
        assert_ne!(p.digest(), q.digest());
        // And the digest is domain-separated from a bare hash of the text.
        assert_ne!(p.digest(), Digest::of(p.to_text().as_bytes()));
    }

    #[test]
    fn render_reports_deterministic_percentiles() {
        let table = sample().render();
        assert!(table.contains("frontend->ledger [smc]"));
        assert!(table.contains("p50"));
        assert_eq!(table, sample().render());
    }
}
