//! # lateral — a trusted component ecosystem
//!
//! Umbrella crate for the `lateral` workspace, a full-system reproduction of
//! *"Lateral Thinking for Trustworthy Apps"* (Härtig, Roitzsch, Weinhold,
//! Lackorzyński — ICDCS 2017). The paper's vision: applications should be
//! **horizontal aggregates of mutually isolated components** rather than
//! vertical stacks of libraries, written once against a **unified isolation
//! interface** and deployable on any isolation substrate (microkernel
//! address spaces, ARM TrustZone, Intel SGX enclaves, Apple SEP-style
//! coprocessors), with trust extended across machines via attestation.
//!
//! This crate re-exports every subsystem:
//!
//! * [`crypto`] — simulation-grade primitives (SHA-256, HMAC, ChaCha20,
//!   Schnorr, DH, deterministic RNG).
//! * [`hw`] — the simulated hardware platform (physical memory, MMU, IOMMU,
//!   cache, bus with physical-attacker taps, fuses, boot ROM).
//! * [`tpm`] — TPM model: PCRs, quote, seal, CRTM, authenticated/secure
//!   boot, late launch.
//! * [`substrate`] — the paper's "POSIX for isolation": the unified
//!   substrate interface, attacker models, capabilities with badges.
//! * [`microkernel`], [`trustzone`], [`sgx`], [`sep`], [`flicker`] —
//!   isolation substrate backends.
//! * [`vpfs`] — the Virtual Private File System trusted wrapper over an
//!   untrusted legacy file system.
//! * [`net`] — simulated network, Dolev–Yao adversary, secure channels and
//!   attested channels.
//! * [`components`] — the reusable trusted component toolbox (TLS, secure
//!   GUI, input method, anonymizer, gateway, mail engine, …).
//! * [`core`] — the ecosystem runtime: manifests, composer, POLA
//!   enforcement, TCB / information-flow / confused-deputy analysis.
//! * [`registry`] — content-addressed component registry with the
//!   certification pipeline (POLA lint, TCB-budget lint, publisher
//!   chain, web-of-trust threshold) backing composer admission control.
//! * [`wot`] — web-of-trust certification: signed review/trust/
//!   revocation proofs and the incremental fixed-point EigenTrust
//!   scoring graph the registry's `wot-threshold` pass consults.
//! * [`apps`] — the paper's worked scenarios: decomposed email client and
//!   the smart-meter / utility-server distributed system.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the complete system
//! inventory and experiment index.

pub use lateral_apps as apps;
pub use lateral_components as components;
pub use lateral_core as core;
pub use lateral_crypto as crypto;
pub use lateral_flicker as flicker;
pub use lateral_hw as hw;
pub use lateral_microkernel as microkernel;
pub use lateral_net as net;
pub use lateral_registry as registry;
pub use lateral_sep as sep;
pub use lateral_sgx as sgx;
pub use lateral_substrate as substrate;
pub use lateral_telemetry as telemetry;
pub use lateral_tpm as tpm;
pub use lateral_trustzone as trustzone;
pub use lateral_vpfs as vpfs;
pub use lateral_wot as wot;
