//! Integration: generic cross-machine composition through
//! `lateral_core::remote` — two independently composed assemblies on
//! different (simulated) machines, connected by an attested channel over
//! the adversarial network.

use lateral::core::composer::{compose, Assembly};
use lateral::core::manifest::{AppManifest, ComponentManifest};
use lateral::core::remote::{call, establish, RemoteClient, RemoteServer, ServiceExport};
use lateral::crypto::sign::SigningKey;
use lateral::hw::machine::MachineBuilder;
use lateral::net::channel::ChannelPolicy;
use lateral::net::sim::{AttackMode, Network};
use lateral::net::Addr;
use lateral::sgx::Sgx;
use lateral::substrate::attacker::AttackerModel;
use lateral::substrate::attest::TrustPolicy;
use lateral::substrate::cap::Badge;
use lateral::substrate::component::Component;
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::Substrate;
use lateral::substrate::testkit::{Echo, Sealer};

fn factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
    Some(match cm.name.as_str() {
        "vault" => Box::new(Sealer),
        _ => Box::new(Echo),
    })
}

/// The server machine: an SGX pool hosting the vault in an enclave.
fn server_assembly() -> Assembly {
    let sgx = Sgx::new(
        MachineBuilder::new()
            .name("cloud-server")
            .frames(256)
            .build(),
        "cloud",
    );
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(sgx)];
    let app = AppManifest::new(
        "vault-service",
        vec![ComponentManifest::new("vault")
            .image(b"vault v1 (audited)")
            .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus])],
    );
    compose(&app, pool, &mut factory).unwrap()
}

fn client_assembly() -> Assembly {
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("laptop"))];
    let app = AppManifest::new("client-app", vec![ComponentManifest::new("ui")]);
    compose(&app, pool, &mut factory).unwrap()
}

fn vault_trust(server_asm: &Assembly) -> TrustPolicy {
    // The client publishes/pins: the SGX quoting key of the cloud
    // provider and the audited vault measurement.
    let mut trust = TrustPolicy::new();
    // Reconstruct the platform key from an identical machine (the
    // "manufacturer endorsement list" in the sim is deterministic).
    let sgx = Sgx::new(
        MachineBuilder::new()
            .name("cloud-server")
            .frames(256)
            .build(),
        "cloud",
    );
    trust.trust_platform(sgx.platform_verifying_key().unwrap());
    trust.expect_measurement(server_asm.measurement("vault").unwrap());
    trust
}

#[test]
fn attested_remote_vault_round_trip() {
    let mut net = Network::new("dist");
    let mut server_asm = server_assembly();
    let trust = vault_trust(&server_asm);
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("vault.cloud.example"),
        ServiceExport {
            component: "vault".into(),
            badge: Badge(0x0B57),
            identity: SigningKey::from_seed(b"vault channel id"),
            client_policy: ChannelPolicy::open(),
            attest: true,
        },
    );
    let mut client_asm = client_assembly();
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("laptop.example"),
        Addr::new("vault.cloud.example"),
        SigningKey::from_seed(b"laptop id"),
        ChannelPolicy::open().with_attestation(trust),
        None,
    );
    establish(
        &mut net,
        &mut client,
        Some(&mut client_asm),
        &mut server,
        &mut server_asm,
    )
    .unwrap();
    // The client now KNOWS it talks to the audited vault in a genuine
    // enclave.
    let peer = client.peer().unwrap();
    assert_eq!(
        peer.attested.as_ref().unwrap().measurement,
        server_asm.measurement("vault").unwrap()
    );
    // Round trip: seal remotely, unseal remotely.
    let sealed = call(
        &mut net,
        &mut client,
        &mut server,
        &mut server_asm,
        b"s:my secret",
    )
    .unwrap();
    let mut req = b"u:".to_vec();
    req.extend_from_slice(&sealed);
    let plain = call(&mut net, &mut client, &mut server, &mut server_asm, &req).unwrap();
    assert_eq!(plain, b"my secret");
}

#[test]
fn trojaned_vault_image_is_rejected_before_any_request() {
    let mut net = Network::new("dist-trojan");
    // The provider silently deploys a different vault build.
    let sgx = Sgx::new(
        MachineBuilder::new()
            .name("cloud-server")
            .frames(256)
            .build(),
        "cloud",
    );
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(sgx)];
    let app = AppManifest::new(
        "vault-service",
        vec![ComponentManifest::new("vault")
            .image(b"vault v1 (with backdoor)")
            .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus])],
    );
    let mut server_asm = compose(&app, pool, &mut factory).unwrap();
    // The client still expects the audited build.
    let trust = vault_trust(&server_assembly());
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("vault.cloud.example"),
        ServiceExport {
            component: "vault".into(),
            badge: Badge(1),
            identity: SigningKey::from_seed(b"vault channel id"),
            client_policy: ChannelPolicy::open(),
            attest: true,
        },
    );
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("laptop.example"),
        Addr::new("vault.cloud.example"),
        SigningKey::from_seed(b"laptop id"),
        ChannelPolicy::open().with_attestation(trust),
        None,
    );
    let err = establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap_err();
    assert!(err.to_string().contains("handshake"), "{err}");
    assert!(!client.connected());
}

#[test]
fn in_path_corruption_downgrades_to_denial_of_service() {
    let mut net = Network::new("dist-corrupt");
    net.set_attack(AttackMode::CorruptAll);
    let mut server_asm = server_assembly();
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("vault.cloud.example"),
        ServiceExport {
            component: "vault".into(),
            badge: Badge(1),
            identity: SigningKey::from_seed(b"vault channel id"),
            client_policy: ChannelPolicy::open(),
            attest: false,
        },
    );
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("laptop.example"),
        Addr::new("vault.cloud.example"),
        SigningKey::from_seed(b"laptop id"),
        ChannelPolicy::open(),
        None,
    );
    assert!(establish(&mut net, &mut client, None, &mut server, &mut server_asm).is_err());
    assert!(!client.connected());
}

#[test]
fn vault_lands_in_an_enclave_by_requirement() {
    let asm = server_assembly();
    assert_eq!(asm.substrate_of("vault").unwrap(), "sgx");
}

#[test]
fn multiplexed_trace_propagation_is_uniform_across_all_six_backends() {
    // E12's guarantee extended to the session layer: on every backend,
    // interleaved in-flight requests each land as a child span of their
    // own caller — never of the session opener or a sibling request.
    for sub in lateral_bench::e2_conformance::all_substrates() {
        lateral::core::remote::assert_multiplexed_trace_propagation(sub);
    }
}
