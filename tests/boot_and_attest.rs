//! Integration: the full launch-and-attest chain (§II-D).
//!
//! Boot ROM → TPM (CRTM / authenticated boot) → microkernel with a
//! provisioned attestation identity → component evidence verified by a
//! remote policy — plus the secure-boot and late-launch variants.

use lateral::crypto::sign::SigningKey;
use lateral::hw::bootrom::{BootRom, BootStage, LaunchPolicy};
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::substrate::attest::TrustPolicy;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::Echo;
use lateral::tpm::Tpm;

fn boot_chain() -> Vec<BootStage> {
    vec![
        BootStage::new("bootloader", b"u-boot 2017.01"),
        BootStage::new("kernel", b"lateral-microkernel v1"),
        BootStage::new("init", b"root task v1"),
    ]
}

#[test]
fn measured_boot_to_verified_component_evidence() {
    // 1. Authenticated boot measures the chain into the TPM.
    let mut tpm = Tpm::new(b"board-42");
    let rom = BootRom::new(LaunchPolicy::authenticated_boot());
    let report = rom.boot(&boot_chain(), &mut tpm).unwrap();
    let platform_state = report.stack_identity();

    // 2. The booted kernel derives its attestation identity from the TPM
    //    (modeled by a key provisioned at boot) and records the measured
    //    platform state.
    let machine = MachineBuilder::new().name("board-42").frames(64).build();
    let mut kernel = Microkernel::new(machine, "boot-test")
        .with_attestation(SigningKey::from_seed(b"board-42 aik"), platform_state);

    // 3. A component attests; a remote verifier demands BOTH the right
    //    component measurement and the right platform stack.
    let svc = kernel
        .spawn(
            DomainSpec::named("svc").with_image(b"svc v1"),
            Box::new(Echo),
        )
        .unwrap();
    let evidence = kernel.attest(svc, b"nonce-1").unwrap();

    let mut policy = TrustPolicy::new();
    policy.trust_platform(kernel.platform_verifying_key().unwrap());
    policy.expect_measurement(kernel.measurement(svc).unwrap());
    policy.expect_platform_state(platform_state);
    assert!(policy.verify(&evidence).is_ok());

    // 4. A platform that booted a tampered kernel has a different stack
    //    identity and fails the same policy.
    let mut bad_tpm = Tpm::new(b"board-43");
    let mut bad_chain = boot_chain();
    bad_chain[1] = BootStage::new("kernel", b"lateral-microkernel v1 + rootkit");
    let bad_report = rom.boot(&bad_chain, &mut bad_tpm).unwrap();
    let machine = MachineBuilder::new().name("board-43").frames(64).build();
    let mut bad_kernel = Microkernel::new(machine, "boot-test").with_attestation(
        SigningKey::from_seed(b"board-42 aik"),
        bad_report.stack_identity(),
    );
    let bad_svc = bad_kernel
        .spawn(
            DomainSpec::named("svc").with_image(b"svc v1"),
            Box::new(Echo),
        )
        .unwrap();
    let bad_evidence = bad_kernel.attest(bad_svc, b"nonce-2").unwrap();
    assert!(policy.verify(&bad_evidence).is_err());
}

#[test]
fn tpm_quote_survives_the_full_verifier_flow() {
    let mut tpm = Tpm::new(b"verifier-flow");
    let rom = BootRom::new(LaunchPolicy::authenticated_boot());
    rom.boot(&boot_chain(), &mut tpm).unwrap();
    // The verifier replays the event log to compute the expected PCR and
    // then checks a fresh quote against it — the classic TPM protocol.
    let mut replayed = lateral::crypto::Digest::ZERO;
    for e in tpm.event_log() {
        replayed = replayed.extend(e.digest.as_bytes());
    }
    assert_eq!(replayed, tpm.read_pcr(0).unwrap());
    let expected = tpm.composite(&[0]);
    let quote = tpm.quote(&[0], b"fresh-nonce");
    assert!(quote
        .verify_state(&tpm.attestation_key(), b"fresh-nonce", &expected)
        .is_ok());
}

#[test]
fn secure_boot_halts_on_tampered_stage_before_it_runs() {
    let vendor = SigningKey::from_seed(b"oem");
    let rom = BootRom::new(LaunchPolicy::secure_boot(vendor.verifying_key()));
    let mut chain: Vec<BootStage> = boot_chain()
        .iter()
        .map(|s| BootStage::signed(&s.name, &s.image, &vendor))
        .collect();
    let mut log = lateral::hw::bootrom::BootLog::default();
    assert!(rom.boot(&chain, &mut log).is_ok());
    // Tamper the kernel image but keep the old signature.
    chain[1].image = b"evil kernel".to_vec();
    assert!(rom.boot(&chain, &mut log).is_err());
}

#[test]
fn late_launch_attests_a_piece_without_trusting_the_boot_chain() {
    let mut tpm = Tpm::new(b"flicker-board");
    // A filthy boot chain (nothing measured, nothing verified).
    tpm.extend(0, b"who knows what booted here");
    // Late launch gives the payload a clean, attestable identity anyway.
    let payload = b"flicker piece: password checker";
    let (quote, sealed) = {
        let session = tpm.late_launch(payload).unwrap();
        (session.quote(b"ll-nonce"), session.seal(b"check state"))
    };
    assert!(quote.verify(&tpm.attestation_key(), b"ll-nonce").is_ok());
    // Only a relaunch of the SAME payload recovers the sealed state.
    let again = tpm.late_launch(payload).unwrap();
    assert_eq!(again.unseal(&sealed).unwrap(), b"check state");
    drop(again);
    let other = tpm.late_launch(b"different piece").unwrap();
    assert!(other.unseal(&sealed).is_err());
}
