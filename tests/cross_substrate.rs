//! Integration: the composer over a heterogeneous substrate pool.
//!
//! The smart-meter appliance of Figure 3 mixes substrates on one device;
//! these tests verify the composer places components by required
//! attacker model, bridges channels across substrates, and keeps POLA
//! intact end to end.

use lateral::core::composer::{compose, ComponentFactory};
use lateral::core::manifest::{AppManifest, ComponentManifest, Sensitivity};
use lateral::core::CoreError;
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::sgx::Sgx;
use lateral::substrate::attacker::AttackerModel;
use lateral::substrate::component::Component;
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::Substrate;
use lateral::substrate::testkit::{BadgeReporter, Counter, Echo};
use lateral::trustzone::TrustZone;

struct TestFactory;

impl ComponentFactory for TestFactory {
    fn build(&mut self, cm: &ComponentManifest) -> Option<Box<dyn Component>> {
        Some(match cm.name.as_str() {
            "badge-reporter" => Box::new(BadgeReporter),
            "counter" => Box::new(Counter::default()),
            _ => Box::new(Echo),
        })
    }
}

fn mixed_pool() -> Vec<Box<dyn Substrate>> {
    let mk = Microkernel::new(
        MachineBuilder::new().name("pool-mk").frames(256).build(),
        "pool",
    )
    .with_attestation(SigningKey::from_seed(b"pool mk"), Digest::ZERO);
    vec![
        Box::new(SoftwareSubstrate::new("pool-sw")),
        Box::new(mk),
        Box::new(TrustZone::new(
            MachineBuilder::new().name("pool-tz").frames(256).build(),
            "pool",
        )),
        Box::new(Sgx::new(
            MachineBuilder::new().name("pool-sgx").frames(256).build(),
            "pool",
        )),
    ]
}

#[test]
fn placement_follows_required_attacker_models() {
    let app = AppManifest::new(
        "placement",
        vec![
            // Needs nothing special → smallest TCB that satisfies
            // remote-software (the microkernel at 10k beats software's
            // compiler-sized TCB).
            ComponentManifest::new("plain"),
            // Needs physical-bus defense → only SGX qualifies in this pool.
            ComponentManifest::new("hsm-like")
                .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus]),
            // Needs a boot trust anchor but no memory encryption →
            // TrustZone (25k) beats SGX (100k).
            ComponentManifest::new("device-identity")
                .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBoot]),
        ],
    );
    let asm = compose(&app, mixed_pool(), &mut TestFactory).unwrap();
    assert_eq!(asm.substrate_of("plain").unwrap(), "microkernel");
    assert_eq!(asm.substrate_of("hsm-like").unwrap(), "sgx");
    assert_eq!(asm.substrate_of("device-identity").unwrap(), "trustzone");
}

#[test]
fn bridged_channels_work_across_substrates() {
    let app = AppManifest::new(
        "bridge",
        vec![
            ComponentManifest::new("frontend").channel("ask", "vault", 0xB1),
            ComponentManifest::new("vault")
                .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus]),
        ],
    );
    let mut asm = compose(&app, mixed_pool(), &mut TestFactory).unwrap();
    assert_ne!(
        asm.substrate_of("frontend").unwrap(),
        asm.substrate_of("vault").unwrap()
    );
    // The declared channel works even though the endpoints live on
    // different substrates.
    assert_eq!(
        asm.call_channel("frontend", "ask", b"ping").unwrap(),
        b"ping"
    );
}

#[test]
fn bridged_badges_are_preserved() {
    let app = AppManifest::new(
        "badge-bridge",
        vec![
            ComponentManifest::new("client").channel("ask", "badge-reporter", 0xCAFE),
            ComponentManifest::new("badge-reporter")
                .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus]),
        ],
    );
    let mut asm = compose(&app, mixed_pool(), &mut TestFactory).unwrap();
    let reply = asm.call_channel("client", "ask", b"").unwrap();
    assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 0xCAFE);
}

#[test]
fn impossible_requirements_fail_with_diagnosis() {
    // A pool of only software isolation cannot host a physically hardened
    // component.
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("only-sw"))];
    let app = AppManifest::new(
        "impossible",
        vec![ComponentManifest::new("hsm").requires(&[AttackerModel::PhysicalBus])],
    );
    match compose(&app, pool, &mut TestFactory) {
        Err(CoreError::NoSuitableSubstrate { component, reason }) => {
            assert_eq!(component, "hsm");
            assert!(reason.contains("physical-bus"));
        }
        other => panic!("expected placement failure, got {other:?}"),
    }
}

#[test]
fn attestation_flows_through_the_assembly() {
    let app = AppManifest::new(
        "attest",
        vec![ComponentManifest::new("svc")
            .image(b"svc v1")
            .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus])
            .asset("svc-state", Sensitivity::Secret)],
    );
    let mut asm = compose(&app, mixed_pool(), &mut TestFactory).unwrap();
    let evidence = asm.attest("svc", b"assembly-binding").unwrap();
    assert_eq!(evidence.substrate, "sgx");
    assert_eq!(evidence.measurement, asm.measurement("svc").unwrap());
    assert!(evidence.verify_signature().is_ok());
}

#[test]
fn stateful_components_survive_many_bridged_calls() {
    let app = AppManifest::new(
        "state",
        vec![
            ComponentManifest::new("driver").channel("count", "counter", 1),
            ComponentManifest::new("counter")
                .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus]),
        ],
    );
    let mut asm = compose(&app, mixed_pool(), &mut TestFactory).unwrap();
    for expected in 1u64..=20 {
        let r = asm.call_channel("driver", "count", b"").unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), expected);
    }
}
