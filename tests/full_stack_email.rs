//! Integration: the decomposed email client end to end, including the
//! VPFS-backed mail store and the TLS component, under benign and
//! hostile traffic.

use lateral::apps::email::{HorizontalEmail, EXPLOIT_MARKER};
use lateral::substrate::cap::Badge;
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::Substrate;

fn pool() -> Vec<Box<dyn Substrate>> {
    vec![Box::new(SoftwareSubstrate::new("fullstack"))]
}

#[test]
fn benign_mail_workflow() {
    let mut app = HorizontalEmail::build(pool()).unwrap();
    // Store two mails (VPFS underneath), list, fetch back.
    app.assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"put:user=env;mail one")
        .unwrap();
    app.assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"put:user=env;mail two")
        .unwrap();
    let count = app
        .assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"list:user=env;")
        .unwrap();
    assert_eq!(count, b"2");
    let first = app
        .assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"get:user=env;0")
        .unwrap();
    assert_eq!(first, b"mail one");

    // Address book and input method respond over their channels.
    app.assembly
        .call_component("address-book", b"add:bob=bob@example.org")
        .unwrap();
    assert_eq!(
        app.assembly
            .call_component("address-book", b"lookup:bob")
            .unwrap(),
        b"bob@example.org"
    );
    app.assembly
        .call_component("input-method", b"learn:lateral")
        .unwrap();
    assert_eq!(
        app.assembly
            .call_component("input-method", b"suggest:lat")
            .unwrap(),
        b"lateral"
    );

    // Rendering a benign mail works.
    let rendered = app
        .assembly
        .call_component("html-renderer", b"<p>benign <b>mail</b></p>")
        .unwrap();
    assert_eq!(rendered, b"text=benign mail;images=0;links=0");
}

#[test]
fn renderer_compromise_cannot_touch_the_mail_store() {
    let mut app = HorizontalEmail::build(pool()).unwrap();
    app.assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"put:user=env;secret letter")
        .unwrap();

    // Exploit the renderer.
    let evil = format!("<script>{EXPLOIT_MARKER}</script>");
    app.deliver_hostile("html-renderer", evil.as_bytes())
        .unwrap();
    let report = app.attack_report("html-renderer").unwrap();
    assert!(report.active);
    assert!(report.contained());

    // The mail is exactly where it was, unreadable to the renderer.
    let mail = app
        .assembly
        .call_component_badged("mail-store", Badge(0xE4F), b"get:user=env;0")
        .unwrap();
    assert_eq!(mail, b"secret letter");
}

#[test]
fn every_subsystem_compromise_is_audited_and_contained() {
    for subsystem in [
        "html-renderer",
        "imap-engine",
        "address-book",
        "input-method",
    ] {
        let mut app = HorizontalEmail::build(pool()).unwrap();
        app.deliver_hostile(subsystem, EXPLOIT_MARKER.as_bytes())
            .unwrap();
        let report = app.attack_report(subsystem).unwrap();
        assert!(report.active, "{subsystem} not exploited");
        assert!(report.contained(), "{subsystem} escaped: {report:?}");
    }
}

#[test]
fn compromised_imap_can_lie_about_mail_but_not_steal_credentials() {
    let mut app = HorizontalEmail::build(pool()).unwrap();
    // Exploit the IMAP engine (server-side attacker).
    app.deliver_hostile("imap-engine", EXPLOIT_MARKER.as_bytes())
        .unwrap();
    let report = app.attack_report("imap-engine").unwrap();
    assert!(report.active);
    // It holds exactly one channel (to tls) and could not escalate
    // beyond it.
    assert_eq!(report.granted_channels, 1);
    assert_eq!(report.forged_succeeded, 0);
    assert_eq!(report.oob_reads_succeeded, 0);
}
