//! Integration: the Simko3 "Merkel-Phone" construction (§II-B).
//!
//! "The phone offers two Android systems side by side on the same phone,
//! allowing the user to separate private and business use within one
//! device. This separation is accomplished by running two virtual
//! machines, each running its own instance of Android" — on an
//! MMU-based microkernel substrate. We host two legacy Android domains,
//! compromise one completely, and verify the other is untouched.

use lateral::components::legacyos::{LegacyOs, LEGACY_EXPLOIT};
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::substrate::cap::Badge;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::Echo;

fn android(name: &str, secret: &str) -> LegacyOs {
    LegacyOs::new(
        name,
        &["browser", "baseband", "apps"],
        &[("user-data", secret)],
    )
}

#[test]
fn two_androids_side_by_side_one_compromise_contained() {
    let machine = MachineBuilder::new().name("simko3").frames(256).build();
    let mut kernel = Microkernel::new(machine, "merkel-phone");

    let business = kernel
        .spawn(
            DomainSpec::named("android-business").with_mem_pages(16),
            Box::new(android("android-business", "cabinet documents")),
        )
        .unwrap();
    let private = kernel
        .spawn(
            DomainSpec::named("android-private").with_mem_pages(16),
            Box::new(android("android-private", "family photos")),
        )
        .unwrap();
    let driver = kernel
        .spawn(DomainSpec::named("driver"), Box::new(Echo))
        .unwrap();
    let biz_cap = kernel.grant_channel(driver, business, Badge(1)).unwrap();
    let prv_cap = kernel.grant_channel(driver, private, Badge(2)).unwrap();

    // The private Android browses a hostile site and is fully owned.
    kernel
        .invoke(
            driver,
            &prv_cap,
            format!("deliver:browser:{LEGACY_EXPLOIT}").as_bytes(),
        )
        .unwrap();
    assert_eq!(
        kernel.invoke(driver, &prv_cap, b"status:").unwrap(),
        b"compromised"
    );
    let loot = kernel.invoke(driver, &prv_cap, b"loot:").unwrap();
    assert!(String::from_utf8_lossy(&loot).contains("family photos"));

    // The business Android is a different protection domain: unaffected.
    assert_eq!(kernel.invoke(driver, &biz_cap, b"status:").unwrap(), b"ok");
    assert!(kernel.invoke(driver, &biz_cap, b"loot:").is_err());

    // And hardware-level isolation backs it up: the private Android's
    // frames and the business Android's frames are disjoint, and neither
    // VM can address the other's memory through its own MMU mappings.
    let biz_frames = kernel.domain_frames(business).unwrap();
    let prv_frames = kernel.domain_frames(private).unwrap();
    assert!(biz_frames.iter().all(|f| !prv_frames.contains(f)));
    // Out-of-aspace access faults.
    assert!(kernel.mem_read(private, 16 * 4096, 1).is_err());
}

#[test]
fn both_androids_measure_differently_for_attestation() {
    // Knox-style integrity measurement: the two VM images have distinct
    // identities a verifier can tell apart.
    let a = DomainSpec::named("android-business").measurement();
    let b = DomainSpec::named("android-private").measurement();
    assert_ne!(a, b);
    assert_ne!(a, Digest::ZERO);
}

#[test]
fn trustzone_alone_cannot_host_two_androids_but_the_kernel_can() {
    // §II-B: "TrustZone itself does not support multiplexing. However,
    // TrustZone can be combined with virtualization techniques to host
    // multiple normal world operating systems."
    use lateral::trustzone::TrustZone;
    let machine = MachineBuilder::new().name("tz-only").frames(128).build();
    let mut tz = TrustZone::new(machine, "tz-only");
    tz.spawn_normal(
        DomainSpec::named("android-1").with_mem_pages(4),
        Box::new(Echo),
    )
    .unwrap();
    assert!(tz
        .spawn_normal(
            DomainSpec::named("android-2").with_mem_pages(4),
            Box::new(Echo),
        )
        .is_err());
    // The hypervisor (microkernel) hosts as many as memory allows.
    let machine = MachineBuilder::new().name("hyp").frames(128).build();
    let mut kernel = Microkernel::new(machine, "hyp");
    for i in 0..4 {
        kernel
            .spawn(
                DomainSpec::named(&format!("android-{i}")).with_mem_pages(4),
                Box::new(Echo),
            )
            .unwrap();
    }
}
