//! Integration: web-of-trust certification across backends.
//!
//! The registry's `wot-threshold` pass (PR 8 tentpole) admits a digest
//! only while its aggregated review score clears the assembly's bar.
//! Two properties are checked end to end here:
//!
//! * the score gate behaves identically over all six substrate
//!   backends (the testkit parity case), and
//! * a distrust wave against a *running, supervised* component drives
//!   the full demotion path: the supervisor's next health tick
//!   quarantines the instance exactly once, burning zero restart
//!   budget, while the rest of the assembly keeps serving.

use lateral::core::composer::{ComponentFactory, Health};
use lateral::core::manifest::{AppManifest, ComponentManifest};
use lateral::core::supervisor::Supervisor;
use lateral::core::CoreError;
use lateral::crypto::sign::SigningKey;
use lateral::registry::{measurement_of, ManifestDraft, Registry, WOT_PASS};
use lateral::substrate::component::Component;
use lateral::substrate::testkit::{parity, Echo};
use lateral::wot::{Proof, Rating, ReviewProof, TrustGraph};
use lateral_bench::e2_conformance::all_substrates;

#[test]
fn wot_demotion_parity_on_all_six_backends() {
    let subs = all_substrates();
    assert_eq!(subs.len(), 6, "the sweep must cover every backend");
    for mut sub in subs {
        let backend = sub.profile().name.clone();
        let mut registry = Registry::new(&format!("wot-parity-{backend}"));
        parity::assert_wot_demotion_quarantined(sub.as_mut(), &mut registry);
        assert!(
            registry.stats().wot_proofs >= 2,
            "[{backend}] the endorsement and the wave must both be counted"
        );
    }
}

/// A registry whose trust graph holds one seeded reviewer root that has
/// endorsed both component images of the `worker`/`sidekick` app.
fn wot_registry(reviewer: &SigningKey) -> Registry {
    let publisher = SigningKey::from_seed(b"wot integration publisher");
    let mut reg = Registry::new("wot-supervised");
    reg.trust_root(&publisher.verifying_key());
    let mut graph = TrustGraph::new();
    graph.seed_root(&reviewer.verifying_key().to_bytes());
    reg.attach_wot(graph, 100);
    for (name, image) in [("worker", b"worker".as_slice()), ("sidekick", b"sidekick")] {
        reg.publish(
            image,
            ManifestDraft::new(name, image).sign(&publisher, None),
        )
        .unwrap();
        let endorse = ReviewProof::issue(reviewer, measurement_of(image), Rating::High, 1);
        reg.ingest_proof(&Proof::Review(endorse)).unwrap();
    }
    reg
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
}

#[test]
fn distrust_wave_quarantines_supervised_instance_exactly_once() {
    for sub in all_substrates() {
        let backend = sub.profile().name.clone();
        let reviewer = SigningKey::from_seed(b"wot integration reviewer");
        let app = AppManifest::new(
            "wot-supervised",
            vec![
                ComponentManifest::new("worker").restartable(3, 10),
                ComponentManifest::new("sidekick"),
            ],
        );
        let mut sup = Supervisor::new_admitted(app, vec![sub], factory(), wot_registry(&reviewer))
            .unwrap_or_else(|e| panic!("[{backend}] endorsed app must compose: {e}"));
        assert_eq!(sup.call("worker", b"ping").unwrap(), b"ping");
        assert_eq!(sup.tick(), Vec::<String>::new(), "[{backend}] scores clear");

        // The distrust wave lands while the worker is running: the
        // reviewer's later review supersedes its endorsement.
        let wave = ReviewProof::issue(&reviewer, measurement_of(b"worker"), Rating::Distrust, 2);
        sup.registry_mut()
            .unwrap()
            .ingest_proof(&Proof::Review(wave))
            .unwrap();
        assert!(
            !sup.is_quarantined("worker"),
            "[{backend}] demotion waits for the health tick"
        );
        // The very next tick quarantines — once.
        assert_eq!(sup.tick(), vec!["worker".to_string()], "[{backend}]");
        assert!(sup.is_quarantined("worker"), "[{backend}]");
        assert_eq!(
            sup.restarts("worker"),
            0,
            "[{backend}] demotion burns zero restart budget"
        );
        assert_eq!(sup.tick(), Vec::<String>::new(), "[{backend}] exactly once");
        let quarantines = sup
            .assembly_mut()
            .substrate_mut(0)
            .telemetry_mut_ref()
            .map(|t| t.metrics_mut().counter("supervisor.quarantines"));
        if let Some(q) = quarantines {
            assert_eq!(q, 1, "[{backend}] one demotion = one quarantine count");
        }
        // Demoted means uncertifiable: the registry refuses the worker
        // by the wot pass while the sidekick still resolves.
        let reg = sup.registry_mut().unwrap();
        let err = reg.resolve("worker").unwrap_err();
        assert!(
            err.to_string().contains(WOT_PASS),
            "[{backend}] expected a wot refusal, got: {err}"
        );
        reg.resolve("sidekick")
            .unwrap_or_else(|e| panic!("[{backend}] sidekick stays certified: {e}"));
        assert_eq!(sup.call("sidekick", b"x").unwrap(), b"x");
        assert!(matches!(
            sup.call("worker", b"x"),
            Err(CoreError::Unavailable(_))
        ));
        assert_eq!(
            sup.health(),
            Health::Degraded(vec!["worker".into()]),
            "[{backend}]"
        );
    }
}
