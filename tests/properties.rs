//! Randomized-sweep tests over the core invariants, spanning crates.
//!
//! Formerly proptest-based; now driven by the deterministic seeded
//! `Drbg` so the suite runs with no external dependencies and produces
//! the same cases on every run (failures are exactly reproducible).

use lateral::crypto::aead::Aead;
use lateral::crypto::chacha;
use lateral::crypto::group::Scalar;
use lateral::crypto::hmac::HmacSha256;
use lateral::crypto::rng::Drbg;
use lateral::crypto::sha256::Sha256;
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::substrate::cap::{Badge, CapTable};
use lateral::substrate::DomainId;
use lateral::vpfs::{LegacyFs, MemBlockDevice, Vpfs};

const CASES: usize = 64;

fn bytes(rng: &mut Drbg, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(max_len as u64 + 1) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn label(rng: &mut Drbg, max_len: usize) -> String {
    let len = 1 + rng.gen_range(max_len as u64) as usize;
    (0..len)
        .map(|_| (b'a' + rng.gen_range(26) as u8) as char)
        .collect()
}

// ------------------------------------------------------------ crypto

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut rng = Drbg::from_seed(b"prop sha256");
    for _ in 0..CASES {
        let data = bytes(&mut rng, 2048);
        let split = rng.gen_range(data.len() as u64 + 1) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), lateral::crypto::sha256::sha256(&data));
    }
}

#[test]
fn aead_roundtrip_any_payload() {
    let mut rng = Drbg::from_seed(b"prop aead");
    for _ in 0..CASES {
        let key = rng.gen_key();
        let nonce = rng.next_u64();
        let aad = bytes(&mut rng, 64);
        let data = bytes(&mut rng, 1024);
        let aead = Aead::new(&key);
        let boxed = aead.seal(nonce, &aad, &data);
        assert_eq!(aead.open(nonce, &aad, &boxed).unwrap(), data);
    }
}

#[test]
fn aead_any_single_bitflip_detected() {
    let mut rng = Drbg::from_seed(b"prop aead flip");
    for _ in 0..CASES {
        let key = rng.gen_key();
        let mut data = bytes(&mut rng, 255);
        data.push(rng.next_u64() as u8); // non-empty
        let aead = Aead::new(&key);
        let mut boxed = aead.seal(0, b"", &data);
        let idx = rng.gen_range(boxed.len() as u64) as usize;
        boxed[idx] ^= 1 << rng.gen_range(8);
        assert!(aead.open(0, b"", &boxed).is_err());
    }
}

#[test]
fn chacha_xor_is_involutive() {
    let mut rng = Drbg::from_seed(b"prop chacha");
    for _ in 0..CASES {
        let key = rng.gen_key();
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let counter = rng.next_u32();
        let data = bytes(&mut rng, 512);
        let mut buf = data.clone();
        chacha::xor_stream(&key, counter, &nonce, &mut buf);
        chacha::xor_stream(&key, counter, &nonce, &mut buf);
        assert_eq!(buf, data);
    }
}

#[test]
fn hmac_distinguishes_keys_and_messages() {
    let mut rng = Drbg::from_seed(b"prop hmac");
    for _ in 0..CASES {
        let mut k1 = bytes(&mut rng, 63);
        k1.push(1);
        let mut k2 = bytes(&mut rng, 63);
        k2.push(2);
        let msg = bytes(&mut rng, 256);
        if k1 != k2 {
            assert_ne!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k2, &msg));
        }
    }
}

#[test]
fn signatures_verify_and_bind_message() {
    let mut rng = Drbg::from_seed(b"prop sign");
    for _ in 0..CASES {
        let mut seed = [0u8; 16];
        rng.fill_bytes(&mut seed);
        let msg = bytes(&mut rng, 256);
        let other = bytes(&mut rng, 256);
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        assert!(key.verifying_key().verify(&msg, &sig).is_ok());
        if other != msg {
            assert!(key.verifying_key().verify(&other, &sig).is_err());
        }
    }
}

#[test]
fn scalar_group_laws() {
    let mut rng = Drbg::from_seed(b"prop scalar");
    for _ in 0..CASES {
        let mut wa = [0u8; 64];
        rng.fill_bytes(&mut wa[..32]);
        let mut wb = [0u8; 64];
        rng.fill_bytes(&mut wb[..32]);
        let sa = Scalar::from_hash_wide(&wa);
        let sb = Scalar::from_hash_wide(&wb);
        assert_eq!(sa.add(&sb), sb.add(&sa));
        assert_eq!(sa.mul(&sb), sb.mul(&sa));
        assert_eq!(sa.add(&sb).sub(&sb), sa);
    }
}

#[test]
fn drbg_forks_never_collide() {
    let mut rng = Drbg::from_seed(b"prop fork");
    for _ in 0..CASES {
        let mut seed = [0u8; 8];
        rng.fill_bytes(&mut seed);
        let label1 = label(&mut rng, 8);
        let label2 = label(&mut rng, 8);
        let mut parent = Drbg::from_seed(&seed);
        let mut c1 = parent.fork(&label1);
        let mut c2 = parent.fork(&label2);
        // Even identical labels differ (fork counter advances).
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}

// ------------------------------------------------------------ digest

#[test]
fn digest_extend_is_injective_in_order() {
    let mut rng = Drbg::from_seed(b"prop digest");
    for _ in 0..CASES {
        let n = 1 + rng.gen_range(4) as usize;
        let parts: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 16)).collect();
        let forward = parts.iter().fold(Digest::ZERO, |acc, p| acc.extend(p));
        if parts.len() > 1 {
            let mut reversed = parts.clone();
            reversed.reverse();
            if reversed != parts {
                let backward = reversed.iter().fold(Digest::ZERO, |acc, p| acc.extend(p));
                assert_ne!(forward, backward);
            }
        }
    }
}

// ------------------------------------------------------------ vpfs

#[test]
fn vpfs_roundtrips_arbitrary_files() {
    let mut rng = Drbg::from_seed(b"prop vpfs rt");
    for _ in 0..16 {
        let name = label(&mut rng, 12);
        let data = bytes(&mut rng, 8192);
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        vpfs.write(&name, &data).unwrap();
        assert_eq!(vpfs.read(&name).unwrap(), data);
    }
}

#[test]
fn vpfs_overwrites_converge_to_last_value() {
    let mut rng = Drbg::from_seed(b"prop vpfs ow");
    for _ in 0..16 {
        let n = 1 + rng.gen_range(5) as usize;
        let versions: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 512)).collect();
        let legacy = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        for v in &versions {
            vpfs.write("doc", v).unwrap();
        }
        assert_eq!(&vpfs.read("doc").unwrap(), versions.last().unwrap());
    }
}

#[test]
fn vpfs_corruption_never_yields_wrong_plaintext() {
    let mut rng = Drbg::from_seed(b"prop vpfs corrupt");
    for _ in 0..16 {
        let mut data = bytes(&mut rng, 2047);
        data.push(rng.next_u64() as u8);
        let block_sel = rng.next_u64() as usize;
        let offset = rng.next_u64() as usize;
        let mask = 1 + rng.gen_range(255) as u8;
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        vpfs.write("doc", &data).unwrap();
        let obj = vpfs
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        let blocks = vpfs.legacy().file_blocks(&obj).unwrap();
        let target = blocks[block_sel % blocks.len()];
        vpfs.legacy()
            .device()
            .corrupt(target, offset, mask)
            .unwrap();
        // Either the read errors, or — if the flip hit padding beyond the
        // object's bytes — it returns the exact original data. It must
        // never return silently wrong data.
        if let Ok(read_back) = vpfs.read("doc") {
            assert_eq!(read_back, data);
        }
    }
}

// ------------------------------------------------------------ caps

#[test]
fn cap_table_never_honors_foreign_or_stale_caps() {
    let mut rng = Drbg::from_seed(b"prop caps");
    for _ in 0..CASES {
        let n = 1 + rng.gen_range(19) as usize;
        let owners: Vec<u32> = (0..n).map(|_| rng.gen_range(8) as u32).collect();
        let revoke_mask = rng.next_u32();
        let me = DomainId(0);
        let mut table = CapTable::new();
        let caps: Vec<_> = owners
            .iter()
            .enumerate()
            .map(|(i, target)| table.install(me, DomainId(*target), Badge(i as u64)))
            .collect();
        for (i, cap) in caps.iter().enumerate() {
            if revoke_mask & (1 << (i % 32)) != 0 {
                table.revoke(cap.slot);
                assert!(table.lookup(me, cap).is_err());
            } else {
                // Valid for the owner...
                assert!(table.lookup(me, cap).is_ok());
                // ...never for anyone else.
                assert!(table.lookup(DomainId(1), cap).is_err());
            }
        }
    }
}
