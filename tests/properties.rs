//! Property-based tests over the core invariants, spanning crates.

use lateral::crypto::aead::Aead;
use lateral::crypto::chacha;
use lateral::crypto::group::Scalar;
use lateral::crypto::hmac::HmacSha256;
use lateral::crypto::rng::Drbg;
use lateral::crypto::sha256::Sha256;
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::substrate::cap::{Badge, CapTable};
use lateral::substrate::DomainId;
use lateral::vpfs::{LegacyFs, MemBlockDevice, Vpfs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------ crypto
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), lateral::crypto::sha256::sha256(&data));
    }

    #[test]
    fn aead_roundtrip_any_payload(
        key in any::<[u8; 32]>(),
        nonce in any::<u64>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let aead = Aead::new(&key);
        let boxed = aead.seal(nonce, &aad, &data);
        prop_assert_eq!(aead.open(nonce, &aad, &boxed).unwrap(), data);
    }

    #[test]
    fn aead_any_single_bitflip_detected(
        key in any::<[u8; 32]>(),
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let aead = Aead::new(&key);
        let mut boxed = aead.seal(0, b"", &data);
        let idx = flip_byte % boxed.len();
        boxed[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(0, b"", &boxed).is_err());
    }

    #[test]
    fn chacha_xor_is_involutive(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut buf = data.clone();
        chacha::xor_stream(&key, counter, &nonce, &mut buf);
        chacha::xor_stream(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if k1 != k2 {
            prop_assert_ne!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k2, &msg));
        }
    }

    #[test]
    fn signatures_verify_and_bind_message(
        seed in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        other in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
        if other != msg {
            prop_assert!(key.verifying_key().verify(&other, &sig).is_err());
        }
    }

    #[test]
    fn scalar_group_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let mut wa = [0u8; 64];
        wa[..32].copy_from_slice(&a);
        let mut wb = [0u8; 64];
        wb[..32].copy_from_slice(&b);
        let sa = Scalar::from_hash_wide(&wa);
        let sb = Scalar::from_hash_wide(&wb);
        prop_assert_eq!(sa.add(&sb), sb.add(&sa));
        prop_assert_eq!(sa.mul(&sb), sb.mul(&sa));
        prop_assert_eq!(sa.add(&sb).sub(&sb), sa);
    }

    #[test]
    fn drbg_forks_never_collide(seed in any::<[u8; 8]>(), label1 in "[a-z]{1,8}", label2 in "[a-z]{1,8}") {
        let mut parent = Drbg::from_seed(&seed);
        let mut c1 = parent.fork(&label1);
        let mut c2 = parent.fork(&label2);
        // Even identical labels differ (fork counter advances).
        prop_assert_ne!(c1.next_u64(), c2.next_u64());
    }

    // ------------------------------------------------------------ digest
    #[test]
    fn digest_extend_is_injective_in_order(
        parts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..5)
    ) {
        let forward = parts.iter().fold(Digest::ZERO, |acc, p| acc.extend(p));
        if parts.len() > 1 {
            let mut reversed = parts.clone();
            reversed.reverse();
            if reversed != parts {
                let backward = reversed.iter().fold(Digest::ZERO, |acc, p| acc.extend(p));
                prop_assert_ne!(forward, backward);
            }
        }
    }

    // ------------------------------------------------------------ vpfs
    #[test]
    fn vpfs_roundtrips_arbitrary_files(
        name in "[a-z]{1,12}",
        data in proptest::collection::vec(any::<u8>(), 0..8192),
    ) {
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        vpfs.write(&name, &data).unwrap();
        prop_assert_eq!(vpfs.read(&name).unwrap(), data);
    }

    #[test]
    fn vpfs_overwrites_converge_to_last_value(
        versions in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..6),
    ) {
        let legacy = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        for v in &versions {
            vpfs.write("doc", v).unwrap();
        }
        prop_assert_eq!(&vpfs.read("doc").unwrap(), versions.last().unwrap());
    }

    #[test]
    fn vpfs_corruption_never_yields_wrong_plaintext(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        block_sel in any::<usize>(),
        offset in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        vpfs.write("doc", &data).unwrap();
        let obj = vpfs
            .legacy()
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .unwrap();
        let blocks = vpfs.legacy().file_blocks(&obj).unwrap();
        let target = blocks[block_sel % blocks.len()];
        vpfs.legacy().device().corrupt(target, offset, mask).unwrap();
        // Either the read errors, or — if the flip hit padding beyond the
        // object's bytes — it returns the exact original data. It must
        // never return silently wrong data.
        if let Ok(read_back) = vpfs.read("doc") {
            prop_assert_eq!(read_back, data);
        }
    }

    // ------------------------------------------------------------ caps
    #[test]
    fn cap_table_never_honors_foreign_or_stale_caps(
        owners in proptest::collection::vec(0u32..8, 1..20),
        revoke_mask in any::<u32>(),
    ) {
        let me = DomainId(0);
        let mut table = CapTable::new();
        let caps: Vec<_> = owners
            .iter()
            .enumerate()
            .map(|(i, target)| table.install(me, DomainId(*target), Badge(i as u64)))
            .collect();
        for (i, cap) in caps.iter().enumerate() {
            if revoke_mask & (1 << (i % 32)) != 0 {
                table.revoke(cap.slot);
                prop_assert!(table.lookup(me, cap).is_err());
            } else {
                // Valid for the owner...
                prop_assert!(table.lookup(me, cap).is_ok());
                // ...never for anyone else.
                prop_assert!(table.lookup(DomainId(1), cap).is_err());
            }
        }
    }
}
