//! Integration: every experiment runs and its report carries the
//! signature findings recorded in `EXPERIMENTS.md`.

#[test]
fn e1_shows_containment_gap() {
    let r = lateral_bench::run("e1").unwrap();
    assert!(r.contains("vertical"));
    assert!(r.contains("100%"));
    // No horizontal row may escape the substrate.
    for line in r.lines().filter(|l| l.starts_with("horizontal")) {
        assert!(line.trim_end().ends_with("no"), "escaped: {line}");
    }
}

#[test]
fn e2_matrix_conforms() {
    let r = lateral_bench::run("e2").unwrap();
    assert!(r.contains("6 of 6 substrates conform"));
    assert!(!r.contains("FAIL("));
}

#[test]
fn e3_all_scenarios_as_predicted() {
    let r = lateral_bench::run("e3").unwrap();
    assert!(r.contains("7 of 7 scenarios"));
    assert!(!r.contains("UNEXPECTED"));
}

#[test]
fn e4_has_the_cost_ladder() {
    let r = lateral_bench::run("e4").unwrap();
    assert!(r.contains("microkernel sync IPC"));
    assert!(r.contains("SEP mailbox"));
    assert!(r.contains("cross-machine"));
}

#[test]
fn e5_detects_all_tampering() {
    let r = lateral_bench::run("e5").unwrap();
    assert!(r.contains("VPFS detected 3/3 attacks"));
}

#[test]
fn e6_closes_the_channel() {
    let r = lateral_bench::run("e6").unwrap();
    assert!(r.contains("64/64"));
    assert!(r.contains("0.00"));
}

#[test]
fn e7_has_tcb_reductions() {
    let r = lateral_bench::run("e7").unwrap();
    assert!(r.contains("tls-keys"));
    assert!(r.contains("x"), "reduction factors present");
}

#[test]
fn e8_badges_win() {
    let r = lateral_bench::run("e8").unwrap();
    assert!(r.contains("0.0%"), "badge mode must show zero thefts");
    assert!(r.contains("badge 7 shared by"));
}

#[test]
fn e9_matches_the_paper_matrix() {
    let r = lateral_bench::run("e9").unwrap();
    // TrustZone leaks to the probe; SGX/SEP do not.
    let probe_line = r
        .lines()
        .find(|l| l.starts_with("bus probe reads"))
        .expect("probe row");
    assert!(probe_line.contains("VULNERABLE"));
    assert!(probe_line.contains("blocked"));
}

#[test]
fn e10_recovers_and_quarantines() {
    let r = lateral_bench::run("e10").unwrap();
    // Every backend recovers from the transient crash and degrades (not
    // fails) under the permanent one; hardware backends re-attest.
    for backend in [
        "software",
        "microkernel",
        "trustzone",
        "sgx",
        "sep",
        "flicker",
    ] {
        let rows: Vec<&str> = r.lines().filter(|l| l.starts_with(backend)).collect();
        assert!(rows.len() >= 3, "{backend} rows present");
        assert!(
            rows[0].contains("healthy"),
            "{backend} recovers: {}",
            rows[0]
        );
        assert!(
            rows[2].contains("degraded(worker)"),
            "{backend} quarantines: {}",
            rows[2]
        );
    }
    assert!(r.contains("match"), "re-attestation evidence verified");
    assert!(r.contains("fault-trace digest"));
}

#[test]
fn e11_admits_certified_and_refuses_revoked() {
    let r = lateral_bench::run("e11").unwrap();
    for backend in [
        "software",
        "microkernel",
        "trustzone",
        "sgx",
        "sep",
        "flicker",
    ] {
        let row = r
            .lines()
            .find(|l| l.starts_with(backend))
            .unwrap_or_else(|| panic!("{backend} row present"));
        assert!(row.contains("admitted:yes"), "{backend}: {row}");
        assert!(row.contains("refused:yes"), "{backend}: {row}");
        assert!(!row.contains(":NO"), "{backend}: {row}");
        assert!(row.contains("1 tick(s)"), "{backend}: {row}");
    }
    assert!(r.contains("registry-trace digest"));
}

#[test]
fn all_experiments_run_via_driver_interface() {
    for id in lateral_bench::EXPERIMENTS {
        let r = lateral_bench::run(id).unwrap();
        assert!(!r.is_empty(), "{id} produced no report");
    }
}
