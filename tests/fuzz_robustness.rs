//! Robustness sweeps: every parser that consumes adversarial bytes
//! fails *cleanly* on arbitrary input — no panics, no silent acceptance.
//!
//! This is the flip side of §III-B: hostile-input handling is isolated
//! into components, but those components must also never crash the
//! substrate dispatcher. (`forbid(unsafe_code)` rules out memory
//! corruption; these deterministic fuzz sweeps rule out logic panics.)

use lateral::components::ftpm::decode_quote;
use lateral::components::html::parse_html;
use lateral::components::imap::parse_fetch;
use lateral::crypto::rng::Drbg;
use lateral::crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral::net::channel::{decode_evidence, ChannelPolicy, ClientHandshake, ServerHandshake};
use lateral::net::wire::Reader;
use lateral::vpfs::{LegacyFs, MemBlockDevice, Vpfs, BLOCK_SIZE};

const CASES: usize = 128;

fn bytes(rng: &mut Drbg, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(max_len as u64 + 1) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn text(rng: &mut Drbg, max_len: usize) -> String {
    String::from_utf8_lossy(&bytes(rng, max_len)).into_owned()
}

#[test]
fn wire_reader_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz wire");
    for _ in 0..CASES {
        let data = bytes(&mut rng, 256);
        let mut r = Reader::new(&data);
        // Drain up to 8 fields; every outcome must be Ok or Err, never a
        // panic.
        for _ in 0..8 {
            if r.field().is_err() {
                break;
            }
        }
    }
}

#[test]
fn evidence_decoder_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz evidence");
    for _ in 0..CASES {
        let _ = decode_evidence(&bytes(&mut rng, 512));
    }
}

#[test]
fn quote_decoder_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz quote");
    for _ in 0..CASES {
        let _ = decode_quote(&bytes(&mut rng, 512));
    }
}

#[test]
fn html_parser_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz html");
    for _ in 0..CASES {
        let _ = parse_html(&text(&mut rng, 300));
    }
}

#[test]
fn imap_parser_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz imap");
    for _ in 0..CASES {
        let _ = parse_fetch(&text(&mut rng, 300));
    }
}

#[test]
fn signature_decoder_never_accepts_garbage_blindly() {
    let mut rng = Drbg::from_seed(b"fuzz sig");
    for _ in 0..CASES {
        let mut raw = [0u8; 64];
        rng.fill_bytes(&mut raw);
        // Either rejected at decode, or decoded but then fails to verify
        // against a real key and message.
        if let Ok(sig) = Signature::from_bytes(&raw) {
            let key = SigningKey::from_seed(b"fuzz");
            assert!(key.verifying_key().verify(b"message", &sig).is_err());
        }
    }
}

#[test]
fn verifying_key_decoder_never_panics() {
    let mut rng = Drbg::from_seed(b"fuzz vk");
    for _ in 0..CASES {
        let mut raw = [0u8; 32];
        rng.fill_bytes(&mut raw);
        let _ = VerifyingKey::from_bytes(&raw);
    }
}

#[test]
fn client_handshake_survives_arbitrary_server_hello() {
    let mut rng = Drbg::from_seed(b"fuzz client hello");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 512);
        let mut hs_rng = Drbg::from_seed(b"fuzz hs");
        let (state, _hello) = ClientHandshake::start(SigningKey::from_seed(b"c"), &mut hs_rng);
        // Random bytes must never be accepted (the chance of forging a
        // valid signature is negligible) and must never panic.
        assert!(state
            .finish(&junk, &ChannelPolicy::open(), |_| None)
            .is_err());
    }
}

#[test]
fn server_handshake_survives_arbitrary_client_hello() {
    let mut rng = Drbg::from_seed(b"fuzz server hello");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 256);
        let mut hs_rng = Drbg::from_seed(b"fuzz hs 2");
        // accept() may succeed only for well-formed hellos (two 32-byte
        // fields); anything else errors cleanly.
        let _ = ServerHandshake::accept(&SigningKey::from_seed(b"s"), &mut hs_rng, &junk);
    }
}

#[test]
fn legacy_fs_mount_survives_random_disks() {
    let mut rng = Drbg::from_seed(b"fuzz disks");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, BLOCK_SIZE - 1);
        let total = 32 + rng.gen_range(32) as usize;
        let mut device = MemBlockDevice::new(total);
        // Write attacker-chosen bytes over the superblock region.
        let mut sb = [0u8; BLOCK_SIZE];
        sb[..junk.len()].copy_from_slice(&junk);
        use lateral::vpfs::BlockDevice;
        device.write_block(0, &sb).unwrap();
        // Mount may or may not accept the garbage magic; every
        // subsequent operation must be panic-free either way.
        if let Ok(mut fs) = LegacyFs::mount(device) {
            let _ = fs.list();
            let _ = fs.read("anything");
        }
    }
}

#[test]
fn vpfs_mount_never_accepts_garbage_roots() {
    let mut rng = Drbg::from_seed(b"fuzz roots");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 200);
        let mut legacy = LegacyFs::format(MemBlockDevice::new(64)).unwrap();
        legacy.write("vpfs_root", &junk).unwrap();
        assert!(Vpfs::mount(legacy, &[1u8; 32], None).is_err());
    }
}

#[test]
fn attack_report_decoder_never_panics_or_silently_accepts() {
    use lateral::components::compromise::AttackReport;
    let mut rng = Drbg::from_seed(b"fuzz attack report");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 96);
        // Arbitrary bytes either fail cleanly or decode to a report that
        // re-encodes to a decodable, equal value — never a panic, never a
        // half-parsed inconsistent accept.
        if let Ok(report) = AttackReport::decode(&junk) {
            assert_eq!(
                AttackReport::decode(&report.encode()).unwrap(),
                report,
                "accepted input must round-trip consistently"
            );
        }
    }
    // Truncations of a valid encoding must be rejected, not misread.
    let valid = AttackReport {
        active: true,
        oob_reads_attempted: 7,
        oob_reads_succeeded: 3,
        granted_channels: 2,
        exfil_successes: 2,
        forged_attempted: 9,
        forged_succeeded: 0,
    }
    .encode();
    for cut in 0..valid.len() {
        assert!(
            AttackReport::decode(&valid[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
}

#[test]
fn trace_context_decoder_never_panics_or_silently_accepts() {
    use lateral::telemetry::{SpanId, TraceContext, CTX_ENCODED_LEN};
    let mut rng = Drbg::from_seed(b"fuzz trace context");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 2 * CTX_ENCODED_LEN);
        // Arbitrary bytes either fail cleanly or decode to a context
        // that re-encodes to a decodable, equal value — never a panic,
        // never a half-parsed accept. (A context travels inside sealed
        // channel records, but the codec itself must hold this bar
        // unauthenticated.)
        if let Ok(ctx) = TraceContext::decode(&junk) {
            assert_eq!(
                TraceContext::decode(&ctx.encode()).unwrap(),
                ctx,
                "accepted input must round-trip consistently"
            );
        }
    }
    let valid = TraceContext {
        trace_id: 0xE12_F00D,
        parent: SpanId(42),
    }
    .encode();
    assert_eq!(valid.len(), CTX_ENCODED_LEN);
    // Truncations of a valid encoding must be rejected, not misread.
    for cut in 0..valid.len() {
        assert!(
            TraceContext::decode(&valid[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Trailing garbage is rejected too — the codec is all-or-nothing.
    let mut padded = valid.clone();
    padded.push(0);
    assert!(TraceContext::decode(&padded).is_err());
    // Byte-level mutations must never panic; flips in the magic,
    // version, or the trace-id's zero-guard are rejected outright.
    let mut rng = Drbg::from_seed(b"fuzz trace context bytes");
    for _ in 0..CASES {
        let mut mutated = valid.clone();
        let idx = rng.gen_range(mutated.len() as u64) as usize;
        mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
        if let Ok(ctx) = TraceContext::decode(&mutated) {
            assert_ne!(ctx.trace_id, 0, "a zero trace id must never decode");
            assert_eq!(TraceContext::decode(&ctx.encode()).unwrap(), ctx);
        }
    }
}

#[test]
fn manifest_parser_never_panics_or_silently_accepts() {
    use lateral::core::manifest::AppManifest;
    let mut rng = Drbg::from_seed(b"fuzz manifest");
    for _ in 0..CASES {
        let junk = text(&mut rng, 400);
        // Arbitrary text either errors cleanly or yields a manifest that
        // survives its own validation and round-trips through the text
        // form — silent acceptance of garbage would poison composition.
        if let Ok(app) = AppManifest::parse(&junk) {
            app.validate()
                .expect("parse() only returns valid manifests");
            let reparsed = AppManifest::parse(&app.to_text()).expect("round-trip");
            assert_eq!(reparsed.name, app.name);
            assert_eq!(reparsed.components.len(), app.components.len());
        }
    }
    // Line-level mutations of a well-formed manifest must never panic.
    let good = "app metered\ncomponent worker\nrestart 3 10\nchannel ask worker 9\n";
    let mut rng = Drbg::from_seed(b"fuzz manifest lines");
    for _ in 0..CASES {
        let mut mutated: Vec<u8> = good.as_bytes().to_vec();
        let idx = rng.gen_range(mutated.len() as u64) as usize;
        mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
        let _ = AppManifest::parse(&String::from_utf8_lossy(&mutated));
    }
}

#[test]
fn signed_manifest_decoder_never_panics_or_silently_accepts() {
    use lateral::registry::{ManifestDraft, SignedManifest};
    let mut rng = Drbg::from_seed(b"fuzz signed manifest");
    for _ in 0..CASES {
        let junk = text(&mut rng, 400);
        // Arbitrary text either errors cleanly or decodes to a manifest
        // whose canonical text round-trips to an equal value — the same
        // no-partial-acceptance bar as `AttackReport::decode`.
        if let Ok(m) = SignedManifest::decode(&junk) {
            assert_eq!(
                SignedManifest::decode(&m.to_text()).unwrap(),
                m,
                "accepted input must round-trip consistently"
            );
        }
    }
    // A genuinely signed manifest decodes, verifies, and round-trips.
    let key = SigningKey::from_seed(b"fuzz manifest publisher");
    let valid = ManifestDraft::new("meter", b"meter image")
        .endpoint("read")
        .channel("push", "sink", 7)
        .sign(&key, None)
        .to_text();
    let decoded = SignedManifest::decode(&valid).unwrap();
    decoded.verify_signature().unwrap();
    // Every strict prefix is rejected — the signature line is mandatory
    // and a truncated hex field never half-parses. (The full text minus
    // only its trailing newline is the one equivalent form.)
    for cut in 0..valid.len() - 1 {
        assert!(
            SignedManifest::decode(&valid[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Byte-level mutations must never panic; when they decode, the
    // signature check still gates acceptance into a registry.
    let mut rng = Drbg::from_seed(b"fuzz signed manifest bytes");
    for _ in 0..CASES {
        let mut mutated: Vec<u8> = valid.as_bytes().to_vec();
        let idx = rng.gen_range(mutated.len() as u64) as usize;
        mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
        if let Ok(m) = SignedManifest::decode(&String::from_utf8_lossy(&mutated)) {
            // A flipped payload bit that still parses must break the
            // signature; a flip inside the signature hex likewise.
            if m != decoded {
                assert!(m.verify_signature().is_err(), "forged manifest verified");
            }
        }
    }
}

#[test]
fn app_manifest_rejects_duplicate_declarations() {
    use lateral::core::manifest::AppManifest;
    // Duplicate component names.
    let err = AppManifest::parse("app a\ncomponent w\ncomponent w\n")
        .unwrap_err()
        .to_string();
    assert!(err.contains("duplicate component name"), "{err}");
    // Duplicate channel declarations (same label).
    let err = AppManifest::parse(
        "app a\ncomponent w\nchannel ask sink 1\nchannel ask sink 2\ncomponent sink\n",
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("duplicate channel label"), "{err}");
    // Duplicate channel declarations (same target and badge, distinct
    // labels).
    let err = AppManifest::parse(
        "app a\ncomponent w\nchannel ask sink 1\nchannel tell sink 1\ncomponent sink\n",
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("duplicate channel declaration"), "{err}");
    // Duplicate scalar directives within one component.
    let err = AppManifest::parse("app a\ncomponent w\nloc 10\nloc 20\n")
        .unwrap_err()
        .to_string();
    assert!(err.contains("duplicate 'loc'"), "{err}");
}

#[test]
fn wot_proof_decoders_never_panic_or_silently_accept() {
    use lateral::wot::Proof;
    let mut rng = Drbg::from_seed(b"fuzz wot proofs");
    for _ in 0..CASES {
        let junk = text(&mut rng, 500);
        // Arbitrary text either errors cleanly or decodes to a proof
        // whose canonical text round-trips to an equal value — the same
        // no-partial-acceptance bar as the signed-manifest decoder.
        if let Ok(p) = Proof::decode(&junk) {
            assert_eq!(
                Proof::decode(&p.to_text()).unwrap(),
                p,
                "accepted input must round-trip consistently"
            );
        }
    }
}

#[test]
fn wot_proof_decoders_reject_structural_mutations() {
    use lateral::crypto::Digest;
    use lateral::wot::{Proof, Rating, ReviewProof, Revocation, TrustProof};
    let reviewer = SigningKey::from_seed(b"fuzz wot reviewer");
    let peer = SigningKey::from_seed(b"fuzz wot peer");
    let subject = Digest::of(b"fuzz wot subject image");
    let valid_texts = [
        ReviewProof::issue(&reviewer, subject, Rating::High, 7).to_text(),
        TrustProof::issue(&reviewer, &peer.verifying_key(), Rating::Trust, 7).to_text(),
        Revocation::issue(&reviewer, subject, 7).to_text(),
    ];
    for valid in &valid_texts {
        let decoded = Proof::decode(valid).unwrap();
        decoded.verify_signature().unwrap();
        // Every strict prefix is rejected — the signature line is
        // mandatory and a truncated hex field never half-parses. (The
        // full text minus only its trailing newline is the one
        // equivalent form.)
        for cut in 0..valid.len() - 1 {
            assert!(
                Proof::decode(&valid[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let lines: Vec<&str> = valid.lines().collect();
        // Dropping any single line must be rejected: with strict
        // positional fields there is no optional line to absorb it.
        for drop in 0..lines.len() {
            let mut mutated: Vec<&str> = lines.clone();
            mutated.remove(drop);
            assert!(
                Proof::decode(&(mutated.join("\n") + "\n")).is_err(),
                "line-drop at {drop} must be rejected"
            );
        }
        // Duplicating any single line must be rejected too — duplicate
        // fields are exactly the ambiguity adversarial proofs trade on.
        for dup in 0..lines.len() {
            let mut mutated: Vec<&str> = lines.clone();
            mutated.insert(dup, lines[dup]);
            assert!(
                Proof::decode(&(mutated.join("\n") + "\n")).is_err(),
                "line-dup at {dup} must be rejected"
            );
        }
        // Byte-level mutations must never panic; when they decode, the
        // signature check still gates ingestion into a trust graph.
        let mut rng = Drbg::from_seed(b"fuzz wot proof bytes");
        for _ in 0..CASES {
            let mut mutated: Vec<u8> = valid.as_bytes().to_vec();
            let idx = rng.gen_range(mutated.len() as u64) as usize;
            mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
            if let Ok(p) = Proof::decode(&String::from_utf8_lossy(&mutated)) {
                if p != decoded {
                    assert!(p.verify_signature().is_err(), "forged proof verified");
                }
            }
        }
    }
}

#[test]
fn crossing_profile_parser_never_panics_or_silently_accepts() {
    use lateral::telemetry::profile::CrossingProfile;
    let mut rng = Drbg::from_seed(b"fuzz crossing profile");
    for _ in 0..CASES {
        let junk = text(&mut rng, 500);
        // Arbitrary text either errors cleanly or decodes to a profile
        // whose canonical text round-trips to an equal value — silent
        // acceptance would poison placement decisions downstream.
        if let Ok(p) = CrossingProfile::parse(&junk) {
            assert_eq!(
                CrossingProfile::parse(&p.to_text()).unwrap(),
                p,
                "accepted input must round-trip consistently"
            );
            assert_eq!(
                CrossingProfile::parse(&p.to_text()).unwrap().digest(),
                p.digest()
            );
        }
    }
    // Mutations of a valid encoding must never panic, and anything that
    // still decodes must round-trip; trailing garbage is rejected.
    let mut valid = CrossingProfile::new();
    for cost in [5u64, 1_000, 1_008, 3_000, 60_008] {
        valid.observe("meter", "ledger", "ipc", cost, 64);
    }
    valid.observe("ledger", "audit", "smc", 6_000, 32);
    let valid = valid.to_text();
    assert!(CrossingProfile::parse(&format!("{valid}x")).is_err());
    assert!(
        CrossingProfile::parse(valid.trim_end()).is_ok(),
        "trailing newline optional"
    );
    let mut rng = Drbg::from_seed(b"fuzz crossing profile bytes");
    for _ in 0..CASES {
        let mut mutated: Vec<u8> = valid.as_bytes().to_vec();
        let idx = rng.gen_range(mutated.len() as u64) as usize;
        mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
        if let Ok(p) = CrossingProfile::parse(&String::from_utf8_lossy(&mutated)) {
            assert_eq!(CrossingProfile::parse(&p.to_text()).unwrap(), p);
        }
    }
}

#[test]
fn placement_plan_parser_never_panics_or_silently_accepts() {
    use lateral::core::placement::PlacementPlan;
    let mut rng = Drbg::from_seed(b"fuzz placement plan");
    for _ in 0..CASES {
        let junk = text(&mut rng, 500);
        // Same bar as the crossing-profile codec: the plan drives live
        // migrations, so a half-parsed accept is a placement attack.
        if let Ok(p) = PlacementPlan::parse(&junk) {
            assert_eq!(
                PlacementPlan::parse(&p.to_text()).unwrap(),
                p,
                "accepted input must round-trip consistently"
            );
        }
    }
    // Mutations of a valid encoding must never panic, and anything that
    // still decodes must round-trip; trailing garbage is rejected.
    let valid = "placement-plan v1\n\
                 component ledger calls 40 bytes 2560 current 0 chosen 1\n\
                 candidate 0 sgx eligible 1 cost 146560\n\
                 candidate 1 software eligible 1 cost 240\n\
                 component meter calls 40 bytes 2560 current 0 chosen 1\n\
                 candidate 0 sgx eligible 1 cost 146560\n\
                 candidate 1 software eligible 1 cost 240\n";
    let decoded = PlacementPlan::parse(valid).unwrap();
    assert_eq!(decoded.move_count(), 2);
    assert!(PlacementPlan::parse(&format!("{valid}x")).is_err());
    let mut rng = Drbg::from_seed(b"fuzz placement plan bytes");
    for _ in 0..CASES {
        let mut mutated: Vec<u8> = valid.as_bytes().to_vec();
        let idx = rng.gen_range(mutated.len() as u64) as usize;
        mutated[idx] ^= (1 + rng.gen_range(255)) as u8;
        if let Ok(p) = PlacementPlan::parse(&String::from_utf8_lossy(&mutated)) {
            assert_eq!(PlacementPlan::parse(&p.to_text()).unwrap(), p);
        }
    }
}

#[test]
fn trailing_garbage_is_rejected_by_every_binary_codec() {
    use lateral::crypto::Digest;
    use lateral::net::channel::encode_evidence;
    use lateral::net::session::{
        decode_reply_group, decode_request_group, encode_reply_group, encode_request_group,
        ReplyEntry, RequestEntry, ResumeAccept, ResumeHello, ResumptionTicket, SessionEpoch,
        STATUS_OK,
    };
    use lateral::substrate::attest::AttestationEvidence;
    use lateral::telemetry::{SpanId, TraceContext};

    // Every binary codec must be strict-finish: a valid encoding decodes,
    // and the same bytes with ANY suffix appended are rejected whole —
    // trailing bytes are where smuggled payloads and parser differentials
    // live. Sweep several suffixes, not just one.
    fn sweep<T: std::fmt::Debug>(
        name: &str,
        valid: &[u8],
        decode: impl Fn(&[u8]) -> Result<T, Box<dyn std::error::Error>>,
    ) {
        decode(valid).unwrap_or_else(|e| panic!("{name}: valid encoding rejected: {e}"));
        let mut rng = Drbg::from_seed(b"fuzz trailing garbage");
        for extra in 1..=4usize {
            let mut padded = valid.to_vec();
            for _ in 0..extra {
                padded.push(rng.gen_range(256) as u8);
            }
            assert!(
                decode(&padded).is_err(),
                "{name}: accepted {extra} trailing byte(s)"
            );
        }
    }

    let epoch = SessionEpoch {
        revocation: 3,
        trust: 1,
        regrant: 2,
    };
    sweep("session-epoch", &epoch.encode(), |b| {
        SessionEpoch::decode(b).map_err(Into::into)
    });

    let ticket = ResumptionTicket {
        id: [7u8; 16],
        secret: [9u8; 32],
        evidence: [3u8; 32],
        epoch,
    };
    sweep("resumption-ticket", &ticket.encode(), |b| {
        ResumptionTicket::decode(b).map_err(Into::into)
    });

    let mut rng = Drbg::from_seed(b"fuzz resume hello");
    let hello = ResumeHello::new(&ticket, &mut rng);
    sweep("resume-hello", &hello.encode(), |b| {
        ResumeHello::decode(b).map_err(Into::into)
    });

    let accept = ResumeAccept {
        nonce: [5u8; 32],
        proof: [6u8; 32],
    };
    sweep("resume-accept", &accept.encode(), |b| {
        ResumeAccept::decode(b).map_err(Into::into)
    });

    let requests = vec![RequestEntry {
        id: 1,
        ctx: TraceContext {
            trace_id: 7,
            parent: SpanId(2),
        },
        payload: b"req".to_vec(),
    }];
    sweep("request-group", &encode_request_group(&requests), |b| {
        decode_request_group(b).map_err(Into::into)
    });

    let replies = vec![ReplyEntry {
        id: 1,
        status: STATUS_OK,
        payload: b"rep".to_vec(),
    }];
    sweep("reply-group", &encode_reply_group(&replies), |b| {
        decode_reply_group(b).map_err(Into::into)
    });

    let key = SigningKey::from_seed(b"fuzz evidence platform");
    let evidence = AttestationEvidence {
        substrate: "microkernel".into(),
        platform_key: key.verifying_key().to_bytes(),
        measurement: Digest::of(b"fuzz measurement"),
        platform_state: Digest::of(b"fuzz platform"),
        report_data: b"bound channel key".to_vec(),
        signature: key.sign(b"not checked by the codec").to_bytes(),
    };
    sweep("attestation-evidence", &encode_evidence(&evidence), |b| {
        decode_evidence(b).map_err(Into::into)
    });

    let mut tpm = lateral::tpm::Tpm::new(b"fuzz tpm");
    tpm.extend(0, b"event");
    let quote = tpm.quote(&[0], b"nonce");
    sweep(
        "tpm-quote",
        &lateral::components::ftpm::encode_quote(&quote),
        |b| decode_quote(b).map_err(Into::into),
    );

    sweep(
        "trace-context",
        &TraceContext {
            trace_id: 9,
            parent: SpanId(4),
        }
        .encode(),
        |b| TraceContext::decode(b).map_err(Into::into),
    );
}

#[test]
fn session_codecs_never_panic_on_arbitrary_bytes() {
    use lateral::net::session::{
        decode_reply_group, decode_request_group, ResumeAccept, ResumeHello, ResumptionTicket,
        SessionEpoch,
    };
    let mut rng = Drbg::from_seed(b"fuzz session codecs");
    for _ in 0..CASES {
        let junk = bytes(&mut rng, 512);
        let _ = decode_request_group(&junk);
        let _ = decode_reply_group(&junk);
        let _ = SessionEpoch::decode(&junk);
        let _ = ResumptionTicket::decode(&junk);
        let _ = ResumeHello::decode(&junk);
        let _ = ResumeAccept::decode(&junk);
    }
}

#[test]
fn subverted_component_report_roundtrips() {
    let mut rng = Drbg::from_seed(b"fuzz report");
    for _ in 0..CASES {
        use lateral::components::compromise::AttackReport;
        let oob = rng.gen_range(100) as u32;
        let granted = rng.gen_range(10) as u32;
        let forged = rng.gen_range(200) as u32;
        let r = AttackReport {
            active: true,
            oob_reads_attempted: oob + 1,
            oob_reads_succeeded: oob,
            granted_channels: granted,
            exfil_successes: granted,
            forged_attempted: forged + 1,
            forged_succeeded: forged,
        };
        assert_eq!(AttackReport::decode(&r.encode()).unwrap(), r);
    }
}
