//! Property tests: every parser that consumes adversarial bytes fails
//! *cleanly* on arbitrary input — no panics, no silent acceptance.
//!
//! This is the flip side of §III-B: hostile-input handling is isolated
//! into components, but those components must also never crash the
//! substrate dispatcher. (`forbid(unsafe_code)` rules out memory
//! corruption; these tests rule out logic panics.)

use lateral::components::ftpm::decode_quote;
use lateral::components::html::parse_html;
use lateral::components::imap::parse_fetch;
use lateral::net::channel::{decode_evidence, ChannelPolicy, ClientHandshake, ServerHandshake};
use lateral::net::wire::Reader;
use lateral::crypto::rng::Drbg;
use lateral::crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral::vpfs::{LegacyFs, MemBlockDevice, Vpfs, BLOCK_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        // Drain up to 8 fields; every outcome must be Ok or Err, never a
        // panic.
        for _ in 0..8 {
            if r.field().is_err() {
                break;
            }
        }
    }

    #[test]
    fn evidence_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_evidence(&bytes);
    }

    #[test]
    fn quote_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_quote(&bytes);
    }

    #[test]
    fn html_parser_never_panics(input in "\\PC{0,300}") {
        let _ = parse_html(&input);
    }

    #[test]
    fn imap_parser_never_panics(input in "\\PC{0,300}") {
        let _ = parse_fetch(&input);
    }

    #[test]
    fn signature_decoder_never_accepts_garbage_blindly(bytes in any::<[u8; 64]>()) {
        // Either rejected at decode, or decoded but then fails to verify
        // against a real key and message.
        if let Ok(sig) = Signature::from_bytes(&bytes) {
            let key = SigningKey::from_seed(b"fuzz");
            prop_assert!(key.verifying_key().verify(b"message", &sig).is_err());
        }
    }

    #[test]
    fn verifying_key_decoder_never_panics(bytes in any::<[u8; 32]>()) {
        let _ = VerifyingKey::from_bytes(&bytes);
    }

    #[test]
    fn client_handshake_survives_arbitrary_server_hello(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut rng = Drbg::from_seed(b"fuzz hs");
        let (state, _hello) = ClientHandshake::start(SigningKey::from_seed(b"c"), &mut rng);
        // Random bytes must never be accepted (the chance of forging a
        // valid signature is negligible) and must never panic.
        prop_assert!(state
            .finish(&bytes, &ChannelPolicy::open(), |_| None)
            .is_err());
    }

    #[test]
    fn server_handshake_survives_arbitrary_client_hello(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut rng = Drbg::from_seed(b"fuzz hs 2");
        // accept() may succeed only for well-formed hellos (two 32-byte
        // fields); anything else errors cleanly.
        let _ = ServerHandshake::accept(&SigningKey::from_seed(b"s"), &mut rng, &bytes);
    }

    #[test]
    fn legacy_fs_mount_survives_random_disks(
        blocks in proptest::collection::vec(any::<u8>(), 0..BLOCK_SIZE),
        total in 32usize..64,
    ) {
        let mut device = MemBlockDevice::new(total);
        // Write attacker-chosen bytes over the superblock region.
        let mut sb = [0u8; BLOCK_SIZE];
        sb[..blocks.len()].copy_from_slice(&blocks);
        use lateral::vpfs::BlockDevice;
        device.write_block(0, &sb).unwrap();
        // Mount may or may not accept the garbage magic; every
        // subsequent operation must be panic-free either way.
        if let Ok(mut fs) = LegacyFs::mount(device) {
            let _ = fs.list();
            let _ = fs.read("anything");
        }
    }

    #[test]
    fn vpfs_mount_never_accepts_garbage_roots(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut legacy = LegacyFs::format(MemBlockDevice::new(64)).unwrap();
        legacy.write("vpfs_root", &junk).unwrap();
        prop_assert!(Vpfs::mount(legacy, &[1u8; 32], None).is_err());
    }

    #[test]
    fn subverted_component_report_roundtrips(
        oob in 0u32..100, granted in 0u32..10, forged in 0u32..200,
    ) {
        use lateral::components::compromise::AttackReport;
        let r = AttackReport {
            active: true,
            oob_reads_attempted: oob + 1,
            oob_reads_succeeded: oob,
            granted_channels: granted,
            exfil_successes: granted,
            forged_attempted: forged + 1,
            forged_succeeded: forged,
        };
        prop_assert_eq!(AttackReport::decode(&r.encode()).unwrap(), r);
    }
}
