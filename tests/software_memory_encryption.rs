//! Integration: SGX-style memory encryption built in *software* on
//! TrustZone-class hardware (§II-D "Physical Exposure of Data").
//!
//! "A software implementation of such memory encryption is conceivable
//! using on-chip scratchpad memory. Scratchpad content would be spilled
//! to DRAM explicitly by software … with on-chip scratchpad memory and
//! crypto hardware, SGX-style memory encryption could be implemented
//! using for example ARM TrustZone or Apple's SEP."
//!
//! The test builds exactly that: a secure-world component keeps its
//! working set in the scratchpad (which the bus probe cannot reach),
//! spills encrypted pages to ordinary DRAM, and reloads them with
//! integrity checking — achieving against the bus probe what TrustZone
//! alone cannot (cf. E9, where plain secure-world DRAM leaks).

use lateral::hw::machine::MachineBuilder;
use lateral::hw::mem::FrameOwner;
use lateral::hw::{HwError, Initiator, World};

const SECRET: &[u8] = b"master key material #42!";

#[test]
fn scratchpad_spill_gives_trustzone_sgx_class_bus_protection() {
    let mut machine = MachineBuilder::new()
        .name("tz-soft-mee")
        .frames(32)
        .scratchpad_bytes(4096)
        .build();
    let secure = Initiator::cpu(World::Secure);

    // The secure world works on the secret in on-chip scratchpad.
    machine.scratchpad.write(secure, 0, SECRET).unwrap();
    // The probe has no port to the scratchpad at all.
    assert!(machine.scratchpad.read(Initiator::Probe, 0, 8).is_err());

    // Memory pressure: spill to ordinary (secure-world) DRAM, encrypted
    // under a key that never leaves the chip (burn it as a fuse, the way
    // the TrustZone substrate provisions its device key).
    machine
        .fuses
        .burn(
            "spill-key",
            [0x77; 32],
            lateral::hw::fuse::FuseAccess::SecureWorldOnly,
        )
        .unwrap();
    machine.fuses.lock();
    let spill_key = machine.fuses.read(secure, "spill-key").unwrap();
    let sealed = machine
        .scratchpad
        .spill(secure, 0, SECRET.len(), &spill_key, 1)
        .unwrap();
    let frame = machine.mem.alloc(FrameOwner::Secure).unwrap();
    machine.bus_write(secure, frame.base(), &sealed).unwrap();

    // The physical probe reads the DRAM copy — ciphertext only.
    let probed = machine
        .bus_read(Initiator::Probe, frame.base(), sealed.len())
        .unwrap();
    assert_eq!(probed, sealed, "TrustZone DRAM is probe-readable…");
    assert!(
        !probed.windows(SECRET.len()).any(|w| w == SECRET),
        "…but carries no plaintext"
    );

    // Reload: decrypt and verify back into the scratchpad.
    machine.scratchpad.write(secure, 0, &[0u8; 24]).unwrap();
    let from_dram = machine
        .bus_read(secure, frame.base(), sealed.len())
        .unwrap();
    machine
        .scratchpad
        .fill(secure, 0, &from_dram, &spill_key, 1)
        .unwrap();
    assert_eq!(
        machine.scratchpad.read(secure, 0, SECRET.len()).unwrap(),
        SECRET
    );
}

#[test]
fn probe_tampering_with_the_spill_is_detected() {
    // Unlike raw TrustZone DRAM (silent corruption, E9), the software
    // MEE detects probe writes on reload.
    let mut machine = MachineBuilder::new()
        .name("tz-soft-mee-2")
        .frames(32)
        .scratchpad_bytes(4096)
        .build();
    let secure = Initiator::cpu(World::Secure);
    machine.scratchpad.write(secure, 0, SECRET).unwrap();
    let key = [0x55u8; 32];
    let sealed = machine
        .scratchpad
        .spill(secure, 0, SECRET.len(), &key, 9)
        .unwrap();
    let frame = machine.mem.alloc(FrameOwner::Secure).unwrap();
    machine.bus_write(secure, frame.base(), &sealed).unwrap();

    // Physical attacker flips bits in the spilled page.
    let mut tampered = sealed.clone();
    tampered[4] ^= 0xFF;
    machine
        .bus_write(Initiator::Probe, frame.base(), &tampered)
        .unwrap();

    let from_dram = machine
        .bus_read(secure, frame.base(), sealed.len())
        .unwrap();
    let result = machine.scratchpad.fill(secure, 0, &from_dram, &key, 9);
    assert!(matches!(result, Err(HwError::IntegrityViolation(_))));
}

#[test]
fn spill_ids_prevent_replay_across_pages() {
    // Two pages spilled under different ids cannot be swapped by the
    // attacker: the id is bound into the AEAD nonce.
    let mut machine = MachineBuilder::new()
        .name("tz-soft-mee-3")
        .frames(32)
        .scratchpad_bytes(4096)
        .build();
    let secure = Initiator::cpu(World::Secure);
    let key = [0x66u8; 32];
    machine.scratchpad.write(secure, 0, b"page zero").unwrap();
    machine
        .scratchpad
        .write(secure, 1024, b"page one!")
        .unwrap();
    let s0 = machine.scratchpad.spill(secure, 0, 9, &key, 0).unwrap();
    let s1 = machine.scratchpad.spill(secure, 1024, 9, &key, 1).unwrap();
    // Attacker swaps the two spilled pages.
    assert!(machine.scratchpad.fill(secure, 0, &s1, &key, 0).is_err());
    assert!(machine.scratchpad.fill(secure, 1024, &s0, &key, 1).is_err());
    // Correct pairing restores.
    assert!(machine.scratchpad.fill(secure, 0, &s0, &key, 0).is_ok());
}
