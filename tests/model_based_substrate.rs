//! Model-based property test over the unified substrate interface:
//! random domain/capability lifecycle sequences must behave identically
//! to a trivial reference model — on every backend.
//!
//! This pins down the semantics that the paper's whole architecture
//! rests on: capabilities work exactly when (a) their owner is alive,
//! (b) their slot has not been revoked, and (c) their target is alive —
//! and never otherwise.

use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::sgx::Sgx;
use lateral::substrate::cap::{Badge, ChannelCap};
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::Echo;
use lateral::substrate::DomainId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Spawn,
    Destroy(usize),
    Grant(usize, usize),
    Revoke(usize),
    Invoke(usize),
    InvokeForged(u32, u32, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Spawn),
        1 => any::<usize>().prop_map(Op::Destroy),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Grant(a, b)),
        1 => any::<usize>().prop_map(Op::Revoke),
        4 => any::<usize>().prop_map(Op::Invoke),
        1 => (any::<u32>(), 0u32..4, 1u64..100)
            .prop_map(|(o, s, n)| Op::InvokeForged(o, s, n)),
    ]
}

#[derive(Default)]
struct Model {
    domains: Vec<DomainId>,       // live domains
    caps: Vec<(ChannelCap, DomainId)>, // (cap, target) — pruned on revoke/destroy
}

fn check_sequence(sub: &mut dyn Substrate, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model = Model::default();
    let mut spawned = 0u32;
    for op in ops {
        match op {
            Op::Spawn => {
                if spawned >= 12 {
                    continue; // bound resource usage on small machines
                }
                let id = sub
                    .spawn(DomainSpec::named(&format!("d{spawned}")), Box::new(Echo))
                    .expect("spawn within bounds");
                spawned += 1;
                model.domains.push(id);
            }
            Op::Destroy(sel) => {
                if model.domains.is_empty() {
                    continue;
                }
                let victim = model.domains.remove(sel % model.domains.len());
                sub.destroy(victim).expect("destroy live domain");
                // Every cap owned by or targeting the victim dies.
                model
                    .caps
                    .retain(|(cap, target)| cap.owner != victim && *target != victim);
            }
            Op::Grant(a, b) => {
                if model.domains.is_empty() {
                    continue;
                }
                let from = model.domains[a % model.domains.len()];
                let to = model.domains[b % model.domains.len()];
                let cap = sub.grant_channel(from, to, Badge(7)).expect("grant");
                model.caps.push((cap, to));
            }
            Op::Revoke(sel) => {
                if model.caps.is_empty() {
                    continue;
                }
                let (cap, _) = model.caps.remove(sel % model.caps.len());
                sub.revoke_channel(&cap).expect("revoke live cap");
                // Invoking the revoked cap must now fail.
                prop_assert!(sub.invoke(cap.owner, &cap, b"x").is_err());
            }
            Op::Invoke(sel) => {
                if model.caps.is_empty() {
                    continue;
                }
                let (cap, _target) = model.caps[sel % model.caps.len()];
                // Externally driven invokes succeed even on self-channels
                // (the component is not currently executing; reentrancy
                // applies only to calls made from *inside* a handler).
                let reply = sub.invoke(cap.owner, &cap, b"ping");
                prop_assert_eq!(reply.expect("live cap invokes"), b"ping".to_vec());
            }
            Op::InvokeForged(owner, slot, nonce) => {
                let presenter = model
                    .domains
                    .first()
                    .copied()
                    .unwrap_or(DomainId(*owner % 4));
                let forged = ChannelCap {
                    owner: presenter,
                    slot: *slot,
                    nonce: *nonce << 32 | 0xDEAD, // never a real nonce in these runs
                };
                if model.domains.is_empty() {
                    continue;
                }
                prop_assert!(
                    sub.invoke(presenter, &forged, b"x").is_err(),
                    "forged cap must never be honored"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn software_substrate_lifecycle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut sub = SoftwareSubstrate::new("model");
        check_sequence(&mut sub, &ops)?;
    }

    #[test]
    fn microkernel_lifecycle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let machine = MachineBuilder::new().name("model-mk").frames(256).build();
        let mut sub = Microkernel::new(machine, "model")
            .with_attestation(SigningKey::from_seed(b"model"), Digest::ZERO);
        check_sequence(&mut sub, &ops)?;
    }

    #[test]
    fn sgx_lifecycle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let machine = MachineBuilder::new().name("model-sgx").frames(256).build();
        let mut sub = Sgx::new(machine, "model");
        check_sequence(&mut sub, &ops)?;
    }
}
