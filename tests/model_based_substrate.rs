//! Model-based test over the unified substrate interface: deterministic
//! random domain/capability lifecycle sequences must behave identically
//! to a trivial reference model — on every backend.
//!
//! This pins down the semantics that the paper's whole architecture
//! rests on: capabilities work exactly when (a) their owner is alive,
//! (b) their slot has not been revoked, and (c) their target is alive —
//! and never otherwise. Since the fabric refactor these semantics are
//! implemented once in `substrate::fabric`; the per-backend sweeps below
//! plus the testkit parity suite verify that every backend actually
//! routes through it.

use lateral::crypto::rng::Drbg;
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::sgx::Sgx;
use lateral::substrate::cap::{Badge, ChannelCap};
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::{parity, Echo};
use lateral::substrate::DomainId;
use lateral_bench::e2_conformance::all_substrates;

#[derive(Clone, Debug)]
enum Op {
    Spawn,
    Destroy(usize),
    Grant(usize, usize),
    Revoke(usize),
    Invoke(usize),
    InvokeForged(u32, u32, u64),
}

fn gen_op(rng: &mut Drbg) -> Op {
    // Weighted like the original proptest strategy: 3/13 spawn, 1/13
    // destroy, 3/13 grant, 1/13 revoke, 4/13 invoke, 1/13 forged.
    match rng.gen_range(13) {
        0..=2 => Op::Spawn,
        3 => Op::Destroy(rng.next_u64() as usize),
        4..=6 => Op::Grant(rng.next_u64() as usize, rng.next_u64() as usize),
        7 => Op::Revoke(rng.next_u64() as usize),
        8..=11 => Op::Invoke(rng.next_u64() as usize),
        _ => Op::InvokeForged(
            rng.next_u32(),
            rng.gen_range(4) as u32,
            1 + rng.gen_range(99),
        ),
    }
}

fn gen_ops(rng: &mut Drbg) -> Vec<Op> {
    let n = 1 + rng.gen_range(59) as usize;
    (0..n).map(|_| gen_op(rng)).collect()
}

#[derive(Default)]
struct Model {
    domains: Vec<DomainId>,            // live domains
    caps: Vec<(ChannelCap, DomainId)>, // (cap, target) — pruned on revoke/destroy
}

fn check_sequence(sub: &mut dyn Substrate, ops: &[Op]) {
    let mut model = Model::default();
    let mut spawned = 0u32;
    for op in ops {
        match op {
            Op::Spawn => {
                if spawned >= 12 {
                    continue; // bound resource usage on small machines
                }
                let id = sub
                    .spawn(DomainSpec::named(&format!("d{spawned}")), Box::new(Echo))
                    .expect("spawn within bounds");
                spawned += 1;
                model.domains.push(id);
            }
            Op::Destroy(sel) => {
                if model.domains.is_empty() {
                    continue;
                }
                let victim = model.domains.remove(sel % model.domains.len());
                sub.destroy(victim).expect("destroy live domain");
                // Every cap owned by or targeting the victim dies.
                model
                    .caps
                    .retain(|(cap, target)| cap.owner != victim && *target != victim);
            }
            Op::Grant(a, b) => {
                if model.domains.is_empty() {
                    continue;
                }
                let from = model.domains[a % model.domains.len()];
                let to = model.domains[b % model.domains.len()];
                let cap = sub.grant_channel(from, to, Badge(7)).expect("grant");
                model.caps.push((cap, to));
            }
            Op::Revoke(sel) => {
                if model.caps.is_empty() {
                    continue;
                }
                let (cap, _) = model.caps.remove(sel % model.caps.len());
                sub.revoke_channel(&cap).expect("revoke live cap");
                // Invoking the revoked cap must now fail.
                assert!(sub.invoke(cap.owner, &cap, b"x").is_err());
            }
            Op::Invoke(sel) => {
                if model.caps.is_empty() {
                    continue;
                }
                let (cap, _target) = model.caps[sel % model.caps.len()];
                // Externally driven invokes succeed even on self-channels
                // (the component is not currently executing; reentrancy
                // applies only to calls made from *inside* a handler).
                let reply = sub.invoke(cap.owner, &cap, b"ping");
                assert_eq!(reply.expect("live cap invokes"), b"ping".to_vec());
            }
            Op::InvokeForged(owner, slot, nonce) => {
                let presenter = model
                    .domains
                    .first()
                    .copied()
                    .unwrap_or(DomainId(*owner % 4));
                let forged = ChannelCap {
                    owner: presenter,
                    slot: *slot,
                    nonce: *nonce << 32 | 0xDEAD, // never a real nonce in these runs
                };
                if model.domains.is_empty() {
                    continue;
                }
                assert!(
                    sub.invoke(presenter, &forged, b"x").is_err(),
                    "forged cap must never be honored"
                );
            }
        }
    }
}

const CASES: usize = 24;

#[test]
fn software_substrate_lifecycle() {
    let mut rng = Drbg::from_seed(b"model substrate sw");
    for _ in 0..CASES {
        let ops = gen_ops(&mut rng);
        let mut sub = SoftwareSubstrate::new("model");
        check_sequence(&mut sub, &ops);
    }
}

#[test]
fn microkernel_lifecycle() {
    let mut rng = Drbg::from_seed(b"model substrate mk");
    for _ in 0..CASES {
        let ops = gen_ops(&mut rng);
        let machine = MachineBuilder::new().name("model-mk").frames(256).build();
        let mut sub = Microkernel::new(machine, "model")
            .with_attestation(SigningKey::from_seed(b"model"), Digest::ZERO);
        check_sequence(&mut sub, &ops);
    }
}

#[test]
fn sgx_lifecycle() {
    let mut rng = Drbg::from_seed(b"model substrate sgx");
    for _ in 0..CASES {
        let ops = gen_ops(&mut rng);
        let machine = MachineBuilder::new().name("model-sgx").frames(256).build();
        let mut sub = Sgx::new(machine, "model");
        check_sequence(&mut sub, &ops);
    }
}

// ------------------------------------------------------- fabric parity
//
// The testkit parity suite runs the exact same scenario battery —
// reentrancy, revoke-then-invoke, badge demultiplexing, seal round-trip
// to identity, and stale caps into destroyed-then-respawned domains —
// against every backend. A failure names the backend and scenario.

#[test]
fn fabric_parity_holds_on_all_six_backends() {
    for mut sub in all_substrates() {
        parity::assert_parity(sub.as_mut());
    }
}

#[test]
fn stale_cap_into_respawned_domain_rejected_on_all_six() {
    for mut sub in all_substrates() {
        parity::assert_stale_cap_rejected(sub.as_mut());
    }
}

#[test]
fn invoke_batch_matches_invoke_loop_on_all_six() {
    // Two same-seed instances of each backend: the batch path on one
    // must leave byte-identical trace bytes and metrics digests to the
    // equivalent invoke loop on the other — with exactly one invoke
    // span instead of N as the only sanctioned difference.
    for (mut looped, mut batched) in all_substrates().into_iter().zip(all_substrates()) {
        parity::assert_batch_matches_loop(looped.as_mut(), batched.as_mut());
    }
}

#[test]
fn crash_respawn_under_supervision_on_all_six() {
    // The recovery cycle — injected crash, fail-stop window, respawn
    // from the same image, identical re-measurement, stale cap dead,
    // fresh grant serving — must behave identically on every backend.
    for mut sub in all_substrates() {
        parity::assert_crash_respawn_supervised(sub.as_mut());
    }
}

#[test]
fn cost_model_reprices_the_observed_trace_on_all_six() {
    // The placement optimizer scores candidates with the introspectable
    // cost model; this pins the contract that the model never drifts
    // from what the engine actually charges.
    for mut sub in all_substrates() {
        parity::assert_cost_model_prices_observed_crossings(sub.as_mut());
    }
}

#[test]
fn migration_preserves_state_on_all_six() {
    // Each backend as the migration source with a software target (the
    // direction E17's optimizer takes), and software as the source into
    // each backend (the direction a tightened threat model takes):
    // sealed state must survive byte-identically both ways.
    for mut source in all_substrates() {
        let mut target = SoftwareSubstrate::new("migration-target");
        parity::assert_migration_preserves_state(source.as_mut(), &mut target);
    }
    for mut target in all_substrates() {
        let mut source = SoftwareSubstrate::new("migration-source");
        parity::assert_migration_preserves_state(&mut source, target.as_mut());
    }
}
