//! Model-based tests: the storage stack vs. an in-memory model.
//!
//! Deterministic random sequences of create/overwrite/read/remove
//! (driven by the seeded `Drbg`) are applied both to the real
//! implementation (legacy FS, and VPFS over it) and to a plain
//! `BTreeMap` model; observable behavior must match exactly. This is
//! the strongest correctness net we have over the §III-D storage stack.

use lateral::crypto::rng::Drbg;
use lateral::vpfs::{FsError, LegacyFs, MemBlockDevice, Vpfs};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Write(String, Vec<u8>),
    Read(String),
    Remove(String),
    List,
}

fn gen_op(rng: &mut Drbg, max_data: usize) -> Op {
    let name = ["a", "b", "c", "d", "e"][rng.gen_range(5) as usize].to_string();
    match rng.gen_range(4) {
        0 => {
            let len = rng.gen_range(max_data as u64 + 1) as usize;
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            Op::Write(name, data)
        }
        1 => Op::Read(name),
        2 => Op::Remove(name),
        _ => Op::List,
    }
}

fn gen_ops(rng: &mut Drbg, max_ops: usize, max_data: usize) -> Vec<Op> {
    let n = 1 + rng.gen_range(max_ops as u64 - 1) as usize;
    (0..n).map(|_| gen_op(rng, max_data)).collect()
}

#[test]
fn legacy_fs_matches_map_model() {
    let mut rng = Drbg::from_seed(b"model legacy fs");
    for _ in 0..48 {
        let ops = gen_ops(&mut rng, 40, 2048);
        let mut fs = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Write(name, data) => {
                    fs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Read(name) => match (fs.read(&name), model.get(&name)) {
                    (Ok(real), Some(expected)) => assert_eq!(&real, expected),
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        panic!("divergence on read {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::Remove(name) => match (fs.remove(&name), model.remove(&name)) {
                    (Ok(()), Some(_)) => {}
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        panic!("divergence on remove {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::List => {
                    let mut real = fs.list().unwrap();
                    real.sort();
                    let expected: Vec<String> = model.keys().cloned().collect();
                    assert_eq!(real, expected);
                }
            }
        }
    }
}

#[test]
fn vpfs_matches_map_model() {
    let mut rng = Drbg::from_seed(b"model vpfs");
    for _ in 0..32 {
        let ops = gen_ops(&mut rng, 40, 2048);
        let legacy = LegacyFs::format(MemBlockDevice::new(1024)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[7u8; 32]).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Write(name, data) => {
                    vpfs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Read(name) => match (vpfs.read(&name), model.get(&name)) {
                    (Ok(real), Some(expected)) => assert_eq!(&real, expected),
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        panic!("divergence on read {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::Remove(name) => match (vpfs.remove(&name), model.remove(&name)) {
                    (Ok(()), Some(_)) => {}
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        panic!("divergence on remove {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::List => {
                    let real = vpfs.list();
                    let expected: Vec<String> = model.keys().cloned().collect();
                    assert_eq!(real, expected);
                }
            }
        }
        // Epilogue: a remount with the fresh root sees the same state.
        let root = vpfs.root();
        let device = vpfs.legacy().device().clone();
        let legacy = LegacyFs::mount(device).unwrap();
        let mut remounted = Vpfs::mount(legacy, &[7u8; 32], Some(root)).unwrap();
        for (name, data) in &model {
            assert_eq!(&remounted.read(name).unwrap(), data);
        }
    }
}

#[test]
fn vpfs_state_survives_arbitrary_remount_points() {
    let mut rng = Drbg::from_seed(b"model vpfs remount");
    for _ in 0..32 {
        let ops = gen_ops(&mut rng, 20, 2048);
        let remount_every = 1 + rng.gen_range(4) as usize;
        let legacy = LegacyFs::format(MemBlockDevice::new(1024)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            if i % remount_every == 0 && i > 0 {
                let root = vpfs.root();
                let device = vpfs.legacy().device().clone();
                let legacy = LegacyFs::mount(device).unwrap();
                vpfs = Vpfs::mount(legacy, &[9u8; 32], Some(root)).unwrap();
            }
            match op {
                Op::Write(name, data) => {
                    vpfs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Remove(name) => {
                    let _ = vpfs.remove(&name);
                    model.remove(&name);
                }
                Op::Read(name) => {
                    if let Some(expected) = model.get(&name) {
                        assert_eq!(&vpfs.read(&name).unwrap(), expected);
                    }
                }
                Op::List => {}
            }
        }
    }
}
