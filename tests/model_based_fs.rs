//! Model-based property tests: the storage stack vs. an in-memory model.
//!
//! Random sequences of create/overwrite/read/remove are applied both to
//! the real implementation (legacy FS, and VPFS over it) and to a plain
//! `BTreeMap` model; observable behavior must match exactly. This is the
//! strongest correctness net we have over the §III-D storage stack.

use lateral::vpfs::{FsError, LegacyFs, MemBlockDevice, Vpfs};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Write(String, Vec<u8>),
    Read(String),
    Remove(String),
    List,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = prop::sample::select(vec!["a", "b", "c", "d", "e"]);
    let data = prop::collection::vec(any::<u8>(), 0..2048);
    prop_oneof![
        (name.clone(), data).prop_map(|(n, d)| Op::Write(n.to_string(), d)),
        name.clone().prop_map(|n| Op::Read(n.to_string())),
        name.prop_map(|n| Op::Remove(n.to_string())),
        Just(Op::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn legacy_fs_matches_map_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut fs = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Write(name, data) => {
                    fs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Read(name) => match (fs.read(&name), model.get(&name)) {
                    (Ok(real), Some(expected)) => prop_assert_eq!(&real, expected),
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        prop_assert!(false, "divergence on read {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::Remove(name) => match (fs.remove(&name), model.remove(&name)) {
                    (Ok(()), Some(_)) => {}
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        prop_assert!(false, "divergence on remove {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::List => {
                    let mut real = fs.list().unwrap();
                    real.sort();
                    let expected: Vec<String> = model.keys().cloned().collect();
                    prop_assert_eq!(real, expected);
                }
            }
        }
    }

    #[test]
    fn vpfs_matches_map_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let legacy = LegacyFs::format(MemBlockDevice::new(1024)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[7u8; 32]).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Write(name, data) => {
                    vpfs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Read(name) => match (vpfs.read(&name), model.get(&name)) {
                    (Ok(real), Some(expected)) => prop_assert_eq!(&real, expected),
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        prop_assert!(false, "divergence on read {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::Remove(name) => match (vpfs.remove(&name), model.remove(&name)) {
                    (Ok(()), Some(_)) => {}
                    (Err(FsError::NotFound(_)), None) => {}
                    (real, expected) => {
                        prop_assert!(false, "divergence on remove {name}: {real:?} vs {expected:?}")
                    }
                },
                Op::List => {
                    let real = vpfs.list();
                    let expected: Vec<String> = model.keys().cloned().collect();
                    prop_assert_eq!(real, expected);
                }
            }
        }
        // Epilogue: a remount with the fresh root sees the same state.
        let root = vpfs.root();
        let device = vpfs.legacy().device().clone();
        let legacy = LegacyFs::mount(device).unwrap();
        let mut remounted = Vpfs::mount(legacy, &[7u8; 32], Some(root)).unwrap();
        for (name, data) in &model {
            prop_assert_eq!(&remounted.read(name).unwrap(), data);
        }
    }

    #[test]
    fn vpfs_state_survives_arbitrary_remount_points(
        ops in prop::collection::vec(op_strategy(), 1..20),
        remount_every in 1usize..5,
    ) {
        let legacy = LegacyFs::format(MemBlockDevice::new(1024)).unwrap();
        let mut vpfs = Vpfs::format(legacy, &[9u8; 32]).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            if i % remount_every == 0 && i > 0 {
                let root = vpfs.root();
                let device = vpfs.legacy().device().clone();
                let legacy = LegacyFs::mount(device).unwrap();
                vpfs = Vpfs::mount(legacy, &[9u8; 32], Some(root)).unwrap();
            }
            match op {
                Op::Write(name, data) => {
                    vpfs.write(&name, &data).unwrap();
                    model.insert(name, data);
                }
                Op::Remove(name) => {
                    let _ = vpfs.remove(&name);
                    model.remove(&name);
                }
                Op::Read(name) => {
                    if let Some(expected) = model.get(&name) {
                        prop_assert_eq!(&vpfs.read(&name).unwrap(), expected);
                    }
                }
                Op::List => {}
            }
        }
    }
}
