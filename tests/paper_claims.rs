//! The paper-claims checklist: every headline reproduction result, pinned
//! through structured APIs (not report-string matching). If any of these
//! fails, `EXPERIMENTS.md` is out of date.

use lateral_bench::{
    e1_containment, e2_conformance, e3_smart_meter, e4_invocation, e5_vpfs, e6_covert, e7_tcb,
    e8_deputy, e9_matrix,
};

#[test]
fn claim_containment_e1() {
    // §I: horizontal subversion is contained; §II-A: vertical is total.
    let outcomes = e1_containment::run();
    let vertical_total = outcomes
        .iter()
        .filter(|o| o.architecture == "vertical")
        .all(|o| o.static_fraction == 1.0 && o.runtime_escaped);
    let horizontal_contained = outcomes
        .iter()
        .filter(|o| o.architecture == "horizontal")
        .all(|o| !o.runtime_escaped && o.static_fraction < 0.5);
    assert!(vertical_total);
    assert!(horizontal_contained);
    // Mean exposure reduction of at least 5x.
    let mean = |arch: &str| {
        let v: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.architecture == arch)
            .map(|o| o.static_fraction)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(mean("vertical") / mean("horizontal") >= 5.0);
}

#[test]
fn claim_unified_interface_e2() {
    // §III-A: one component suite, every substrate.
    let reports = e2_conformance::run();
    assert_eq!(reports.len(), 6);
    assert!(reports.iter().all(|r| r.conforms()));
}

#[test]
fn claim_smart_meter_e3() {
    // §III-C / Figure 3.
    assert!(e3_smart_meter::run().iter().all(|s| s.as_expected));
}

#[test]
fn claim_cost_ladder_e4() {
    // §III-E: decomposition costs constant factors, not the network.
    let m = e4_invocation::run();
    let at = |needle: &str| m.iter().find(|x| x.name.contains(needle)).unwrap().cycles[0];
    assert!(at("function") < at("microkernel"));
    assert!(at("microkernel") < at("TrustZone"));
    assert!(at("TrustZone") <= at("SGX"));
    assert!(at("SGX") < at("SEP"));
    assert!(at("SEP") < at("Flicker"));
    assert!(at("Flicker") < at("cross-machine"));
    // Even the costliest local mechanism is >10x below the network.
    assert!(at("Flicker") * 10 < at("cross-machine"));
}

#[test]
fn claim_vpfs_e5() {
    // §III-D: constant-factor overhead, full tamper detection.
    for p in e5_vpfs::run_io() {
        let raw = (p.raw.0 + p.raw.1).max(1);
        let v = p.vpfs.0 + p.vpfs.1;
        assert!(
            v <= raw * 4,
            "overhead bounded at {}B: {v} vs {raw}",
            p.size
        );
    }
    let tampers = e5_vpfs::run_tamper();
    assert!(tampers.iter().all(|t| t.vpfs_detected));
    assert!(tampers.iter().any(|t| !t.raw_detected));
}

#[test]
fn claim_covert_channel_e6() {
    // §II-C: partition+flush closes the channel; SGX colocation leaks.
    let trials = e6_covert::run();
    let by = |needle: &str| trials.iter().find(|t| t.policy.contains(needle)).unwrap();
    assert!(by("round-robin").capacity > 0.9);
    assert!(by("no flush").capacity > 0.9);
    assert_eq!(by("cache flush").capacity, 0.0);
    assert!(by("SGX").capacity > 0.9);
}

#[test]
fn claim_tcb_reduction_e7() {
    // §I/§III-B: order-of-magnitude-plus TCB reduction per asset.
    for row in e7_tcb::run() {
        let h = row.h_app_loc + e7_tcb::MICROKERNEL_TCB;
        let v = row.v_app_loc + e7_tcb::MONOLITHIC_OS_TCB;
        assert!(v / h >= 100, "{}: only {}x", row.asset, v / h);
    }
}

#[test]
fn claim_confused_deputy_e8() {
    // §III-C: badges reduce deputy thefts to zero.
    let trials = e8_deputy::run();
    let badge = trials.iter().find(|t| t.mode.contains("badge")).unwrap();
    let field = trials.iter().find(|t| t.mode.contains("message")).unwrap();
    assert_eq!(badge.thefts, 0);
    assert!(
        field.thefts * 10 > field.sessions * 8,
        "attack mostly works"
    );
}

#[test]
fn claim_attack_matrix_e9() {
    // §II-D: the incremental-hardware-requirements matrix.
    use e9_matrix::Verdict::*;
    let m = e9_matrix::run();
    let row = |s: &str| m.iter().find(|r| r.substrate == s).unwrap();
    // Everyone blocks pure software attacks (rows 0–1).
    for r in &m {
        assert_eq!(r.verdicts[0], Blocked, "{}", r.substrate);
        assert_eq!(r.verdicts[1], Blocked, "{}", r.substrate);
    }
    // Memory encryption is the bus-probe divider.
    assert_eq!(row("trustzone").verdicts[3], Vulnerable);
    assert_eq!(row("sgx").verdicts[3], Blocked);
    assert_eq!(row("sep").verdicts[3], Blocked);
    // Integrity MACs detect probe tampering.
    assert_eq!(row("sgx").verdicts[4], Detected);
    assert_eq!(row("sep").verdicts[4], Detected);
    // Trust anchors gate the boot chain.
    assert_eq!(row("trustzone").boot, Blocked);
    assert_eq!(row("microkernel").boot, Vulnerable);
    assert_eq!(e9_matrix::tpm_authenticated_boot_detects(), Detected);
}
