//! Fleet-scale integration: supervisor quarantine accounting across all
//! six backends, and the `apps::fleet` world's robustness properties
//! (backpressure, churn, recall, conservation) end to end.

use lateral::apps::fleet::{FleetConfig, FleetWorld, FLEET_FW_V2_NAME};
use lateral::core::composer::ComponentFactory;
use lateral::core::manifest::{AppManifest, ComponentManifest, RestartPolicy};
use lateral::core::supervisor::Supervisor;
use lateral::core::CoreError;
use lateral::substrate::component::Component;
use lateral::substrate::fault::{ChurnEvent, ChurnPlan, FaultPlan, FaultSpec};
use lateral_bench::e2_conformance::all_substrates;

/// A small but fully loaded fleet scenario: steady WAN loss, an
/// overload burst, a crash wave, and a mid-fleet firmware recall.
fn chaos_config() -> FleetConfig {
    FleetConfig {
        meters: 120,
        inbox_capacity: 60,
        rounds: 8,
        burst_round: Some(1),
        churn: ChurnPlan::new()
            .with(ChurnEvent::crash_fraction(2, 100_000))
            .with(ChurnEvent::recall(4, FLEET_FW_V2_NAME)),
        ..FleetConfig::default()
    }
}

/// Tentpole: the fleet world's end state — meter states, robustness
/// accounting, aggregated totals, fabric trace — digests identically on
/// every backend, and the run loses nothing under combined overload,
/// churn, and recall.
#[test]
fn fleet_chaos_sweep_is_backend_invariant_and_lossless() {
    let mut digests = Vec::new();
    for (idx, probe) in all_substrates().into_iter().enumerate() {
        let name = probe.profile().name.clone();
        drop(probe);
        let pool: Vec<_> = (0..2).map(|_| all_substrates().remove(idx)).collect();
        let mut world = FleetWorld::new(pool, chaos_config());
        let stats = world.run();
        assert_eq!(
            stats.acked, stats.produced,
            "[{name}] zero lost readings under churn + overload"
        );
        assert!(stats.shed > 0, "[{name}] the burst overran the inboxes");
        assert!(stats.crashes > 0, "[{name}] the crash wave fired");
        assert!(stats.respawns > 0, "[{name}] crashed meters re-attested");
        assert!(
            stats.quarantined_by_recall > 0,
            "[{name}] the recall quarantined the v2 cohort"
        );
        digests.push((name, world.fleet_digest()));
    }
    let (ref first_name, first) = digests[0];
    for (name, d) in &digests {
        assert_eq!(
            d, &first,
            "fleet digest differs between {first_name} and {name}"
        );
    }
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| {
        Some(Box::new(lateral::substrate::testkit::Echo) as Box<dyn Component>)
    })
}

fn supervised_app() -> AppManifest {
    AppManifest::new(
        "fleet-quarantine",
        vec![
            ComponentManifest::new("worker").restart(RestartPolicy::Restart {
                max_restarts: 2,
                backoff_base: 10,
            }),
            ComponentManifest::new("sidekick"),
        ],
    )
}

/// Satellite: the `supervisor.quarantines` counter increments exactly
/// once per budget exhaustion — on every one of the six backends.
#[test]
fn quarantine_counter_is_exactly_once_on_all_backends() {
    for sub in all_substrates() {
        let name = sub.profile().name.clone();
        let mut sup = Supervisor::new(supervised_app(), vec![sub], factory())
            .unwrap_or_else(|e| panic!("[{name}] compose failed: {e}"));
        sup.assembly_mut()
            .substrate_mut(0)
            .fabric_mut_ref()
            .unwrap_or_else(|| panic!("[{name}] no fabric"))
            .install_fault_plan(FaultPlan::new().with(FaultSpec::crash("worker", 1).permanent()));
        let quarantines = |sup: &mut Supervisor| {
            sup.assembly_mut()
                .substrate_mut(0)
                .telemetry_mut_ref()
                .unwrap()
                .metrics_mut()
                .counter("supervisor.quarantines")
        };
        assert_eq!(quarantines(&mut sup), 0, "[{name}] counter starts at 0");
        // Drive the worker through its full restart budget. Sidekick
        // traffic advances the logical clock through backoff windows.
        for _ in 0..60 {
            match sup.call("worker", b"ping") {
                Ok(_) | Err(CoreError::Unavailable(_)) => {}
                Err(e) => panic!("[{name}] unexpected error: {e}"),
            }
            sup.call("sidekick", b"tick").unwrap();
            if sup.is_quarantined("worker") {
                break;
            }
        }
        assert!(sup.is_quarantined("worker"), "[{name}] budget exhausted");
        assert_eq!(
            quarantines(&mut sup),
            1,
            "[{name}] one exhaustion = one count"
        );
        // Re-hitting the quarantined component must not re-count.
        for _ in 0..5 {
            let _ = sup.call("worker", b"x");
        }
        assert_eq!(quarantines(&mut sup), 1, "[{name}] no double count");
    }
}
