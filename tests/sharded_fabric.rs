//! Integration: the sharded multi-core fabric across the whole stack.
//!
//! The shard fabric partitions domains over N per-shard engines behind
//! one `Substrate` surface (DESIGN.md §3, experiment E14). These tests
//! pin the cross-layer contracts: the explicit cross-shard crossing
//! class behaves identically on all six backends, an N=1 fabric is
//! byte-identical to a bare engine on every backend, the deterministic
//! `(epoch, shard, seq)` merge is invariant under global interleaving,
//! and the composer + supervisor treat a shard fabric like any other
//! substrate — with respawns staying shard-local.

use lateral::core::composer::{compose, ComponentFactory};
use lateral::core::manifest::{AppManifest, ComponentManifest};
use lateral::core::supervisor::Supervisor;
use lateral::core::CoreError;
use lateral::substrate::cap::{Badge, ChannelCap};
use lateral::substrate::component::Component;
use lateral::substrate::fabric::CrossingKind;
use lateral::substrate::fault::{FaultPlan, FaultSpec};
use lateral::substrate::shard::{ShardFabric, ShardId, XSHARD_SLOT_BASE};
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::{parity, Echo};
use lateral::substrate::DomainId;
use lateral_bench::e2_conformance::all_substrates;

// --------------------------------------------------- backend parity

#[test]
fn cross_shard_crossing_parity_on_all_six_backends() {
    // Two same-seed instances of each backend become the two shards of
    // one fabric; grant, invoke, seal, and revoked-cap refusal must
    // cross shards identically regardless of the backend underneath.
    for (a, b) in all_substrates().into_iter().zip(all_substrates()) {
        parity::assert_cross_shard_crossing(vec![a, b]);
    }
}

/// A deterministic workload driven through the object-safe surface —
/// runs identically on a bare backend and an N=1 shard fabric.
fn n1_workload(sub: &mut dyn Substrate) {
    let a = sub
        .spawn(DomainSpec::named("n1-a"), Box::new(Echo))
        .unwrap();
    let b = sub
        .spawn(DomainSpec::named("n1-b"), Box::new(Echo))
        .unwrap();
    let cap = sub.grant_channel(a, b, Badge(3)).unwrap();
    for i in 0..4u8 {
        assert_eq!(sub.invoke(a, &cap, &[i, i]).unwrap(), [i, i]);
    }
    sub.revoke_channel(&cap).unwrap();
    assert!(sub.invoke(a, &cap, b"late").is_err());
}

#[test]
fn n1_shard_fabric_is_byte_identical_on_all_six_backends() {
    for (mut raw, wrapped) in all_substrates().into_iter().zip(all_substrates()) {
        let name = raw.profile().name.clone();
        n1_workload(raw.as_mut());
        let mut fab = ShardFabric::new(vec![wrapped]);
        n1_workload(&mut fab);
        let engine = raw
            .fabric_ref()
            .expect("every backend routes through the fabric");
        assert_eq!(
            fab.merged_trace_bytes(),
            engine.trace_bytes(),
            "[{name}] N=1 merged trace must be byte-identical to the bare engine"
        );
        assert_eq!(
            fab.merged_tree_digest(),
            engine.telemetry().tree_digest(),
            "[{name}] N=1 span tree must digest identically"
        );
        assert_eq!(
            fab.merged_metrics().digest(),
            engine.telemetry().metrics().digest(),
            "[{name}] N=1 metrics must digest identically"
        );
    }
}

// ------------------------------------------- merge determinism (E14)

/// Three shards, clients and services pinned one per shard, plus one
/// cross-shard capability. Spawn and grant order is fixed; only the
/// invoke interleaving varies between callers.
struct Sharded3 {
    fab: ShardFabric,
    clients: Vec<DomainId>,
    caps: Vec<ChannelCap>,
    xcap: ChannelCap,
}

fn sharded3() -> Sharded3 {
    let mut fab = ShardFabric::new(vec![
        Box::new(SoftwareSubstrate::new("il-0")) as Box<dyn Substrate>,
        Box::new(SoftwareSubstrate::new("il-1")),
        Box::new(SoftwareSubstrate::new("il-2")),
    ]);
    let mut clients = Vec::new();
    let mut services = Vec::new();
    for s in 0..3u32 {
        let c = format!("client{s}");
        let v = format!("svc{s}");
        fab.pin(&c, ShardId(s));
        fab.pin(&v, ShardId(s));
        clients.push(fab.spawn(DomainSpec::named(&c), Box::new(Echo)).unwrap());
        services.push(fab.spawn(DomainSpec::named(&v), Box::new(Echo)).unwrap());
    }
    let caps = (0..3)
        .map(|s| {
            fab.grant_channel(clients[s], services[s], Badge(s as u64))
                .unwrap()
        })
        .collect();
    let xcap = fab
        .grant_channel(clients[0], services[1], Badge(9))
        .unwrap();
    Sharded3 {
        fab,
        clients,
        caps,
        xcap,
    }
}

#[test]
fn shard_merge_is_invariant_under_global_interleaving() {
    // Variant A interleaves shards round-robin; variant B runs each
    // shard's calls back to back in a different shard order. Per-shard
    // order is identical, so the merged artifacts must be too.
    let mut a = sharded3();
    for i in 0..4u8 {
        for s in 0..3 {
            a.fab.invoke(a.clients[s], &a.caps[s], &[i]).unwrap();
        }
    }
    a.fab.advance_epoch();
    a.fab.invoke(a.clients[0], &a.xcap, b"cross").unwrap();

    let mut b = sharded3();
    for s in [1, 2, 0] {
        for i in 0..4u8 {
            b.fab.invoke(b.clients[s], &b.caps[s], &[i]).unwrap();
        }
    }
    b.fab.advance_epoch();
    b.fab.invoke(b.clients[0], &b.xcap, b"cross").unwrap();

    assert_eq!(
        a.fab.merged_trace_bytes(),
        b.fab.merged_trace_bytes(),
        "merged trace bytes must not depend on global interleaving"
    );
    assert_eq!(
        a.fab.merged_invariant_digest(),
        b.fab.merged_invariant_digest()
    );
    assert_eq!(a.fab.merged_tree_digest(), b.fab.merged_tree_digest());
    assert_eq!(
        a.fab.merged_metrics().digest(),
        b.fab.merged_metrics().digest()
    );
}

// ------------------------------------------------- core-layer stack

struct EchoFactory;

impl ComponentFactory for EchoFactory {
    fn build(&mut self, _cm: &ComponentManifest) -> Option<Box<dyn Component>> {
        Some(Box::new(Echo))
    }
}

#[test]
fn composer_bridges_channels_across_shards() {
    // A shard fabric drops into the composer's pool like any other
    // substrate. With the endpoints round-robined onto different
    // shards, the declared channel becomes a cross-shard capability and
    // the bridged call raises the explicit Shard crossing.
    let fab = ShardFabric::new(vec![
        Box::new(SoftwareSubstrate::new("pool-sh0")) as Box<dyn Substrate>,
        Box::new(SoftwareSubstrate::new("pool-sh1")),
    ]);
    let app = AppManifest::new(
        "sharded-pool",
        vec![
            ComponentManifest::new("front").channel("ask", "back", 0xB1),
            ComponentManifest::new("back"),
        ],
    );
    let mut asm = compose(&app, vec![Box::new(fab)], &mut EchoFactory).unwrap();
    assert_eq!(asm.call_channel("front", "ask", b"ping").unwrap(), b"ping");
    // The caller's shard (shard 0 anchors the fabric surface) recorded
    // the crossing as the explicit cross-shard class.
    let engine = asm.substrate_mut(0).fabric_ref().unwrap();
    let shard_crossings = engine
        .stats()
        .crossing(CrossingKind::Shard)
        .map_or(0, |c| c.count);
    assert!(
        shard_crossings >= 1,
        "front → back must cross shards, saw {shard_crossings} Shard crossings"
    );
}

#[test]
fn supervised_respawn_stays_shard_local() {
    // Placement pins keep the supervised worker on shard 0; after a
    // crash + respawn the sticky-name rule must land the replacement on
    // the same shard — proven by a second shard-0 fault plan firing
    // against the respawned instance.
    let mut fab = ShardFabric::new(vec![
        Box::new(SoftwareSubstrate::new("sup-sh0")) as Box<dyn Substrate>,
        Box::new(SoftwareSubstrate::new("sup-sh1")),
    ]);
    fab.pin("worker", ShardId(0));
    fab.pin("sidekick", ShardId(0));
    fab.pin("remote", ShardId(1));
    let app = AppManifest::new(
        "sharded-sup",
        vec![
            ComponentManifest::new("worker").restartable(3, 20),
            ComponentManifest::new("sidekick"),
            ComponentManifest::new("remote"),
        ],
    );
    let mut sup = Supervisor::new(app, vec![Box::new(fab)], Box::new(EchoFactory)).unwrap();
    let crash_worker_on_shard0 = |sup: &mut Supervisor, nth: u64| {
        sup.assembly_mut()
            .substrate_mut(0)
            .fabric_mut_ref()
            .expect("the fabric surface anchors shard 0")
            .install_fault_plan(FaultPlan::new().with(FaultSpec::crash("worker", nth)));
    };
    let drive = |sup: &mut Supervisor| {
        let (mut lost, mut served) = (0u32, 0u32);
        for _ in 0..60 {
            match sup.call("worker", b"ping") {
                Ok(r) => {
                    assert_eq!(r, b"ping");
                    served += 1;
                }
                Err(CoreError::Unavailable(_)) => lost += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            // Sidekick shares shard 0, so its traffic moves the clock
            // the worker's backoff deadline is measured on.
            sup.call("sidekick", b"tick").unwrap();
        }
        (lost, served)
    };

    crash_worker_on_shard0(&mut sup, 2);
    let (lost, served) = drive(&mut sup);
    assert!(lost >= 1, "the injected crash loses at least one call");
    assert!(served >= 40, "service resumed after the bounded window");
    assert_eq!(sup.restarts("worker"), 1);
    // The shard-1 component never noticed.
    assert_eq!(sup.call("remote", b"over there").unwrap(), b"over there");

    // If the respawn had migrated off shard 0, this shard-0 plan could
    // never fire against it.
    crash_worker_on_shard0(&mut sup, 1);
    assert!(
        matches!(sup.call("worker", b"again"), Err(CoreError::Unavailable(_))),
        "the respawned worker must still reside on its pinned shard"
    );
    let (_, served) = drive(&mut sup);
    assert!(served > 0, "second recovery succeeds on the same shard");
    assert_eq!(sup.restarts("worker"), 2);
}

// ------------------------------------------------- slot-space sanity

#[test]
fn intra_and_cross_shard_slots_do_not_collide() {
    let mut fab = ShardFabric::new(vec![
        Box::new(SoftwareSubstrate::new("slots-0")) as Box<dyn Substrate>,
        Box::new(SoftwareSubstrate::new("slots-1")),
    ]);
    fab.pin("near", ShardId(0));
    fab.pin("peer", ShardId(0));
    fab.pin("far", ShardId(1));
    let near = fab
        .spawn(DomainSpec::named("near"), Box::new(Echo))
        .unwrap();
    let peer = fab
        .spawn(DomainSpec::named("peer"), Box::new(Echo))
        .unwrap();
    let far = fab.spawn(DomainSpec::named("far"), Box::new(Echo)).unwrap();
    let local = fab.grant_channel(near, peer, Badge(1)).unwrap();
    let cross = fab.grant_channel(near, far, Badge(2)).unwrap();
    assert!(local.slot < XSHARD_SLOT_BASE);
    assert!(cross.slot >= XSHARD_SLOT_BASE);
    // Both capability classes are live from the same owner and both
    // show up in the owner's capability listing.
    assert_eq!(fab.invoke(near, &local, b"in").unwrap(), b"in");
    assert_eq!(fab.invoke(near, &cross, b"out").unwrap(), b"out");
    let listed = fab.list_caps(near).unwrap();
    assert!(listed.iter().any(|c| c.slot == local.slot));
    assert!(listed.iter().any(|c| c.slot == cross.slot));
}
