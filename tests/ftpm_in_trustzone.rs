//! Integration: the fTPM hosted in a TrustZone secure world — the
//! Microsoft-Surface construction of §II-C, showing that "isolation
//! technologies are partially interchangeable".

use lateral::components::ftpm::{decode_quote, FTpm};
use lateral::crypto::sign::VerifyingKey;
use lateral::hw::machine::MachineBuilder;
use lateral::substrate::cap::Badge;
use lateral::substrate::substrate::{DomainSpec, Substrate};
use lateral::substrate::testkit::Echo;
use lateral::trustzone::TrustZone;

fn surface() -> (TrustZone, lateral::substrate::cap::ChannelCap) {
    let machine = MachineBuilder::new().name("surface").frames(128).build();
    let mut tz = TrustZone::new(machine, "surface-tablet");
    // The fTPM is a trusted component in the secure world…
    let ftpm = tz
        .spawn(
            DomainSpec::named("ftpm").with_image(b"ftpm v1"),
            Box::new(FTpm::new(b"surface-tablet")),
        )
        .unwrap();
    // …serving the (single) normal-world Windows.
    let windows = tz
        .spawn_normal(DomainSpec::named("windows"), Box::new(Echo))
        .unwrap();
    let cap = tz.grant_channel(windows, ftpm, Badge(1)).unwrap();
    (tz, cap)
}

#[test]
fn windows_measures_boot_into_the_ftpm_and_quotes() {
    let (mut tz, cap) = surface();
    let windows = cap.owner;
    // The boot chain extends PCR 0 through ordinary TPM commands — every
    // call here is an SMC into the secure world.
    tz.invoke(windows, &cap, b"extend:0,bootmgr").unwrap();
    tz.invoke(windows, &cap, b"extend:0,winload").unwrap();
    tz.invoke(windows, &cap, b"extend:0,ntoskrnl").unwrap();
    let quote_bytes = tz.invoke(windows, &cap, b"quote:0,verifier-nonce").unwrap();
    let quote = decode_quote(&quote_bytes).unwrap();
    let aik_bytes = tz.invoke(windows, &cap, b"aik:").unwrap();
    let aik = VerifyingKey::from_bytes(&aik_bytes.try_into().unwrap()).unwrap();
    assert!(quote.verify(&aik, b"verifier-nonce").is_ok());
}

#[test]
fn bitlocker_style_key_release() {
    let (mut tz, cap) = surface();
    let windows = cap.owner;
    tz.invoke(windows, &cap, b"extend:7,correct windows")
        .unwrap();
    let blob = tz
        .invoke(windows, &cap, b"seal:7;volume master key")
        .unwrap();
    let mut req = b"unseal:7;".to_vec();
    req.extend_from_slice(&blob);
    assert_eq!(
        tz.invoke(windows, &cap, &req).unwrap(),
        b"volume master key"
    );
    // A tampered boot cannot release the key.
    tz.invoke(windows, &cap, b"extend:7,evil maid").unwrap();
    assert!(tz.invoke(windows, &cap, &req).is_err());
}

#[test]
fn ftpm_state_is_out_of_normal_world_reach() {
    // The compromised Windows cannot bypass the component interface: the
    // fTPM's memory lives in secure frames.
    let (mut tz, cap) = surface();
    let windows = cap.owner;
    tz.invoke(windows, &cap, b"extend:0,boot").unwrap();
    // Find the fTPM's frames (domain 0 = first spawn) and probe them
    // from the normal world.
    let ftpm_domain = lateral::substrate::DomainId(0);
    let frames = tz.domain_frames(ftpm_domain).unwrap();
    let err = tz
        .machine()
        .bus_read(
            lateral::hw::Initiator::cpu(lateral::hw::World::Normal),
            frames[0].base(),
            16,
        )
        .unwrap_err();
    assert!(err.to_string().contains("normal world"));
}

#[test]
fn discrete_and_firmware_tpm_verifiers_are_identical() {
    // Verify a quote from a *discrete* TPM and from the fTPM with the
    // same code path — interchangeability in practice.
    let mut discrete = lateral::tpm::Tpm::new(b"discrete chip");
    discrete.extend(0, b"stage");
    let q1 = discrete.quote(&[0], b"n");
    assert!(q1.verify(&discrete.attestation_key(), b"n").is_ok());

    let (mut tz, cap) = surface();
    let windows = cap.owner;
    tz.invoke(windows, &cap, b"extend:0,stage").unwrap();
    let q2 = decode_quote(&tz.invoke(windows, &cap, b"quote:0,n").unwrap()).unwrap();
    let aik_bytes = tz.invoke(windows, &cap, b"aik:").unwrap();
    let aik = VerifyingKey::from_bytes(&aik_bytes.try_into().unwrap()).unwrap();
    assert!(q2.verify(&aik, b"n").is_ok());
    // Same measurement semantics: both PCRs committed to the same digest
    // chain (values differ only through the device identity, not the
    // algorithm).
    assert_eq!(q1.selection, q2.selection);
}
