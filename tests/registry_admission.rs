//! Integration: registry admission control across backends and across
//! the network.
//!
//! The component registry certifies images and the composer refuses
//! anything uncertified or revoked (PR 3 tentpole). Two properties are
//! checked end to end here:
//!
//! * the admission gate behaves identically over all six substrate
//!   backends (the testkit parity case), and
//! * a revocation propagates into network channel policies, so a
//!   revoked component's attestation evidence is rejected during the
//!   secure-channel handshake even though its platform signature and
//!   measurement are otherwise valid.

use lateral::core::composer::compose_admitted;
use lateral::core::manifest::{AppManifest, ComponentManifest};
use lateral::core::remote::{call, establish, RemoteClient, RemoteServer, ServiceExport};
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::net::channel::ChannelPolicy;
use lateral::net::sim::Network;
use lateral::net::Addr;
use lateral::registry::{ManifestDraft, Registry};
use lateral::substrate::attest::TrustPolicy;
use lateral::substrate::cap::Badge;
use lateral::substrate::component::Component;
use lateral::substrate::substrate::Substrate;
use lateral::substrate::testkit::{parity, Counter, Echo};
use lateral_bench::e2_conformance::all_substrates;

#[test]
fn revoked_image_refused_on_all_six_backends() {
    let subs = all_substrates();
    assert_eq!(subs.len(), 6, "the sweep must cover every backend");
    for mut sub in subs {
        let backend = sub.profile().name.clone();
        let mut registry = Registry::new(&format!("parity-{backend}"));
        parity::assert_revoked_image_rejected(sub.as_mut(), &mut registry);
        assert!(
            registry.stats().refusals >= 2,
            "[{backend}] both post-revocation resolutions must be refused"
        );
    }
}

const COUNTER_IMAGE: &[u8] = b"remote counter v1";

fn factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
    Some(match cm.name.as_str() {
        "counter" => Box::new(Counter::default()),
        _ => Box::new(Echo),
    })
}

/// A pool of one attesting microkernel — the exported component's
/// evidence is signed by `platform`.
fn attesting_pool(platform: &SigningKey) -> Vec<Box<dyn Substrate>> {
    let mk = Microkernel::new(
        MachineBuilder::new().name("reg-net-mk").frames(256).build(),
        "reg-net",
    )
    .with_attestation(platform.clone(), Digest::ZERO);
    vec![Box::new(mk)]
}

fn attested_policy(platform: &SigningKey, expected: Digest) -> ChannelPolicy {
    let mut trust = TrustPolicy::new();
    trust.trust_platform(platform.verifying_key());
    trust.expect_measurement(expected);
    ChannelPolicy::open().with_attestation(trust)
}

#[test]
fn revoked_component_evidence_rejected_across_the_network() {
    let platform = SigningKey::from_seed(b"reg-net mk platform");
    let publisher = SigningKey::from_seed(b"reg-net publisher");
    let mut registry = Registry::new("reg-net");
    registry.trust_root(&publisher.verifying_key());
    let manifest = ManifestDraft::new("counter", COUNTER_IMAGE).sign(&publisher, None);
    let digest = registry.publish(COUNTER_IMAGE, manifest).unwrap();

    // The server's assembly is itself admitted through the registry.
    let app = AppManifest::new(
        "reg-net",
        vec![ComponentManifest::new("counter").image(COUNTER_IMAGE)],
    );
    let mut asm =
        compose_admitted(&app, attesting_pool(&platform), &mut factory, &mut registry).unwrap();

    let mut net = Network::new("reg-net");
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("svc"),
        ServiceExport {
            component: "counter".to_string(),
            badge: Badge(0x7E57),
            identity: SigningKey::from_seed(b"reg-net server identity"),
            client_policy: ChannelPolicy::open(),
            attest: true,
        },
    );

    // While certified, a client that checks the registry's (empty)
    // denylist establishes an attested session and invokes the service.
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("client"),
        Addr::new("svc"),
        SigningKey::from_seed(b"reg-net client"),
        attested_policy(&platform, digest).with_revocations(registry.revoked_digests()),
        None,
    );
    establish(&mut net, &mut client, None, &mut server, &mut asm).unwrap();
    let reply = call(&mut net, &mut client, &mut server, &mut asm, b"").unwrap();
    assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 1);

    // Revoke the image. A client refreshing its denylist from the
    // registry now refuses the very same server: the evidence still
    // verifies, but the measurement is on the revocation list.
    registry.revoke(digest, "firmware vulnerability").unwrap();
    let mut stale_aware = RemoteClient::new(
        &mut net,
        Addr::new("client2"),
        Addr::new("svc"),
        SigningKey::from_seed(b"reg-net client2"),
        attested_policy(&platform, digest),
        None,
    );
    stale_aware.set_revocations(registry.revoked_digests());
    let err = establish(&mut net, &mut stale_aware, None, &mut server, &mut asm).unwrap_err();
    assert!(err.to_string().contains("revoked"), "{err}");
    assert!(!stale_aware.connected());
}
