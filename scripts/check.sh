#!/usr/bin/env sh
# Full local gate: everything CI would run, in the order that fails
# fastest. Run from the repository root:
#
#   sh scripts/check.sh
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> determinism gate: E10 fault-injection sweep twice"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p lateral-bench --bin repro -- e10 > "$tmpdir/e10-a.txt"
cargo run --release -q -p lateral-bench --bin repro -- e10 > "$tmpdir/e10-b.txt"
if ! cmp -s "$tmpdir/e10-a.txt" "$tmpdir/e10-b.txt"; then
    echo "DETERMINISM VIOLATION: two identical E10 runs diverged:" >&2
    diff "$tmpdir/e10-a.txt" "$tmpdir/e10-b.txt" >&2 || true
    exit 1
fi

echo "==> determinism gate: E11 registry admission sweep twice"
cargo run --release -q -p lateral-bench --bin repro -- e11 > "$tmpdir/e11-a.txt"
cargo run --release -q -p lateral-bench --bin repro -- e11 > "$tmpdir/e11-b.txt"
if ! cmp -s "$tmpdir/e11-a.txt" "$tmpdir/e11-b.txt"; then
    echo "DETERMINISM VIOLATION: two identical E11 runs diverged:" >&2
    diff "$tmpdir/e11-a.txt" "$tmpdir/e11-b.txt" >&2 || true
    exit 1
fi
if ! grep -q "registry-trace digest" "$tmpdir/e11-a.txt"; then
    echo "E11 output is missing its registry-trace digest table" >&2
    exit 1
fi

echo "==> determinism gate: E12 causal-telemetry round twice"
cargo run --release -q -p lateral-bench --bin repro -- e12 > "$tmpdir/e12-a.txt"
cargo run --release -q -p lateral-bench --bin repro -- e12 > "$tmpdir/e12-b.txt"
if ! cmp -s "$tmpdir/e12-a.txt" "$tmpdir/e12-b.txt"; then
    echo "DETERMINISM VIOLATION: two identical E12 runs diverged:" >&2
    diff "$tmpdir/e12-a.txt" "$tmpdir/e12-b.txt" >&2 || true
    exit 1
fi
if ! grep -q "telemetry digest" "$tmpdir/e12-a.txt"; then
    echo "E12 output is missing its telemetry digests" >&2
    exit 1
fi
if grep -q "backend-invariant: NO" "$tmpdir/e12-a.txt"; then
    echo "E12 telemetry digests diverged across backends" >&2
    exit 1
fi

echo "==> all checks passed"
