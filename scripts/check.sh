#!/usr/bin/env sh
# Full local gate: everything CI would run, in the order that fails
# fastest. Run from the repository root:
#
#   sh scripts/check.sh
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Run-twice determinism gate over the deterministic experiment suite.
# Each experiment runs twice and the outputs must be byte-identical —
# except lines tagged "wall-clock" (E13/E14 throughput measurements)
# and "host-cores" (E14's shard-count sweep tops out at the host core
# count), which are inherently machine-dependent and stripped before
# comparing. Per-experiment marker greps keep the reports honest about
# what they claim to have measured.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for exp in e10 e11 e12 e13 e14 e15 e16 e17 e18; do
    echo "==> determinism gate: $exp twice"
    cargo run --release -q -p lateral-bench --bin repro -- "$exp" > "$tmpdir/$exp-raw.txt"
    grep -vE "wall-clock|host-cores" "$tmpdir/$exp-raw.txt" > "$tmpdir/$exp-a.txt"
    cargo run --release -q -p lateral-bench --bin repro -- "$exp" \
        | grep -vE "wall-clock|host-cores" > "$tmpdir/$exp-b.txt"
    if ! cmp -s "$tmpdir/$exp-a.txt" "$tmpdir/$exp-b.txt"; then
        echo "DETERMINISM VIOLATION: two identical $exp runs diverged:" >&2
        diff "$tmpdir/$exp-a.txt" "$tmpdir/$exp-b.txt" >&2 || true
        exit 1
    fi
    case "$exp" in
    e11)
        if ! grep -q "registry-trace digest" "$tmpdir/$exp-a.txt"; then
            echo "E11 output is missing its registry-trace digest table" >&2
            exit 1
        fi
        ;;
    e12)
        if ! grep -q "telemetry digest" "$tmpdir/$exp-a.txt"; then
            echo "E12 output is missing its telemetry digests" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E12 telemetry digests diverged across backends" >&2
            exit 1
        fi
        ;;
    e13)
        if ! grep -q "invocations/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E13 output is missing its throughput measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E13 digests diverged across backends" >&2
            exit 1
        fi
        ;;
    e14)
        if ! grep -q "invocations/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E14 output is missing its shard-scaling measurement" >&2
            exit 1
        fi
        if ! grep -q "round trips/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E14 output is missing its cross-shard measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E14 merged-trace digests diverged across backends" >&2
            exit 1
        fi
        ;;
    e15)
        if ! grep -q "readings/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E15 output is missing its fleet throughput measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E15 fleet-state digests diverged across backends" >&2
            exit 1
        fi
        if ! test -f BENCH_E15.json; then
            echo "E15 did not write BENCH_E15.json" >&2
            exit 1
        fi
        ;;
    e16)
        if ! grep -q "proofs ingested/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E16 output is missing its proof-ingest measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E16 score digests diverged across backends" >&2
            exit 1
        fi
        if grep -q "identical: NO" "$tmpdir/$exp-a.txt"; then
            echo "E16 incremental recompute diverged from full" >&2
            exit 1
        fi
        if ! test -f BENCH_E16.json; then
            echo "E16 did not write BENCH_E16.json" >&2
            exit 1
        fi
        ;;
    e17)
        if ! grep -q "rounds/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E17 output is missing its wall-clock measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E17 placement decisions diverged across backends" >&2
            exit 1
        fi
        if grep -qE "VIOLATION|DIVERGED" "$tmpdir/$exp-a.txt"; then
            echo "E17 live migration violated POLA or lost state" >&2
            exit 1
        fi
        if ! test -f BENCH_E17.json; then
            echo "E17 did not write BENCH_E17.json" >&2
            exit 1
        fi
        ;;
    e18)
        if ! grep -q "requests/sec" "$tmpdir/$exp-raw.txt"; then
            echo "E18 output is missing its throughput measurement" >&2
            exit 1
        fi
        if grep -q "backend-invariant: NO" "$tmpdir/$exp-a.txt"; then
            echo "E18 session digests diverged across backends" >&2
            exit 1
        fi
        if grep -q "conserved: NO" "$tmpdir/$exp-a.txt"; then
            echo "E18 mirror failover lost a fetch" >&2
            exit 1
        fi
        if grep -q "rotated: NO" "$tmpdir/$exp-a.txt"; then
            echo "E18 resumption failed to rotate the ticket" >&2
            exit 1
        fi
        if ! test -f BENCH_E18.json; then
            echo "E18 did not write BENCH_E18.json" >&2
            exit 1
        fi
        ;;
    esac
done

echo "==> all checks passed"
