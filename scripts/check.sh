#!/usr/bin/env sh
# Full local gate: everything CI would run, in the order that fails
# fastest. Run from the repository root:
#
#   sh scripts/check.sh
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
